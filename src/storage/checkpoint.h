#ifndef LEDGERDB_STORAGE_CHECKPOINT_H_
#define LEDGERDB_STORAGE_CHECKPOINT_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/clock.h"
#include "common/retry.h"
#include "common/status.h"
#include "crypto/ecdsa.h"
#include "crypto/hash.h"
#include "storage/env.h"

namespace ledgerdb {

/// Snapshot format version understood by this build. Bumped whenever any
/// section's byte layout changes; a manifest carrying a different version
/// is rejected (the loader falls back to older checkpoints / full replay).
constexpr uint32_t kCheckpointFormatVersion = 1;

/// Section tags inside a checkpoint snapshot file. Each section is framed
/// `[u32 tag][length-prefixed payload][u32 payload crc]` after the file
/// header, so torn or bit-flipped sections are detected before any payload
/// is parsed (the manifest's whole-file SHA-256 catches them too; the CRC
/// localizes the damage for fsck).
enum CheckpointSection : uint32_t {
  kCkptSectionMeta = 1,        ///< uri, watermark, height, options fingerprint
  kCkptSectionJournals = 2,    ///< raw stream records [0, watermark)
  kCkptSectionTxHashes = 3,    ///< 32-byte tx hash per covered journal
  kCkptSectionFam = 4,         ///< FamAccumulator::SerializeTo
  kCkptSectionCmTree = 5,      ///< CmTree::SerializeTo
  kCkptSectionWorldState = 6,  ///< WorldState::SerializeTo
};

/// The `.ckpt` manifest published next to a snapshot: records what the
/// snapshot covers (journal watermark, block height, the boundary block
/// hash) and what it must hash to (snapshot size + SHA-256, plus the three
/// commitment roots the restored state must reproduce). The whole manifest
/// is LSP-signed — same trust model as SignedCommitment — so a tampered
/// snapshot or manifest cannot steer recovery: any byte change breaks the
/// SHA binding or the signature, and the loader falls back.
struct CheckpointManifest {
  uint32_t format_version = kCheckpointFormatVersion;
  std::string ledger_uri;
  uint64_t watermark = 0;     ///< journals covered: [0, watermark)
  uint64_t block_height = 0;  ///< sealed blocks covered
  Digest boundary_block_hash;  ///< hash of block header `block_height - 1`
  Digest fam_root;             ///< fam root at the watermark
  Digest clue_root;            ///< CM-Tree1 root at the watermark
  Digest state_root;           ///< state transition accumulator root
  Digest state_current_root;   ///< state MPT (latest values) root
  uint32_t fractal_height = 0;  ///< options fingerprint: fam epoch shape
  uint64_t block_capacity = 0;  ///< options fingerprint: journals per block
  Timestamp timestamp = 0;
  uint64_t snapshot_size = 0;  ///< exact snapshot file size in bytes
  Digest snapshot_sha;         ///< SHA-256 over the snapshot file bytes
  Signature lsp_sig;

  /// The signed message digest over every field above the signature.
  Digest MessageHash() const;

  /// Checks the LSP signature.
  bool Verify(const PublicKey& lsp_key) const;

  /// Framed bytes: magic + fields + signature + trailing CRC32.
  Bytes Serialize() const;

  /// Parses Serialize() output; false on bad magic, CRC, or layout.
  static bool Deserialize(const Bytes& raw, CheckpointManifest* out);
};

/// Appends the snapshot file header (magic + format version).
void CheckpointSnapshotInit(Bytes* out);

/// Appends one CRC-framed section.
void CheckpointAppendSection(Bytes* out, uint32_t tag, const Bytes& payload);

/// Splits a snapshot into its sections, validating the header, that no
/// tag repeats and no trailing bytes remain — and, unless `verify_crc`
/// is false, every section CRC. Callers that have already pinned the
/// whole file against the manifest's signed SHA-256 may skip the CRCs;
/// offline tooling without the manifest should keep them on.
Status CheckpointParseSections(const Bytes& raw,
                               std::map<uint32_t, Bytes>* sections,
                               bool verify_crc = true);

/// One slot's manifest as found on disk: `manifest` is meaningful only
/// when `status.ok()`. `status` reflects frame validity (CRC + layout) —
/// signature and snapshot checks are the caller's (they need the LSP key
/// and the snapshot bytes).
struct CheckpointEntry {
  uint32_t slot = 0;
  CheckpointManifest manifest;
  Status status = Status::OK();
};

/// Two-slot checkpoint store under a base path. Slots alternate, so the
/// previous checkpoint is never overwritten while the next one is being
/// published: a crash mid-write can only cost the checkpoint being
/// written, never the one recovery would otherwise use.
///
/// Publication is persist-before-publish throughout: snapshot bytes go to
/// `<base>.snap.tmp` (write + Sync + Rename into the slot), then the
/// manifest to `<base>.ckpt.tmp` the same way. The manifest rename is the
/// publish point — until it lands, the slot's old manifest (if any) simply
/// fails its SHA binding against the new snapshot and the loader skips the
/// slot. All file operations are wrapped in RetryTransient, matching the
/// stream store's transient-error contract.
class CheckpointStore {
 public:
  static constexpr uint32_t kSlots = 2;

  CheckpointStore(Env* env, std::string base_path, RetryPolicy retry = {});

  /// Publishes `manifest` + `snapshot` into the slot not holding the
  /// newest valid checkpoint. The manifest must already bind the snapshot
  /// (snapshot_size / snapshot_sha) and carry its signature.
  /// `slot_out` (optional) receives the slot written.
  Status Write(const CheckpointManifest& manifest, const Bytes& snapshot,
               uint32_t* slot_out = nullptr);

  /// One entry per slot whose manifest file exists, in slot order.
  /// Entries that fail frame validation carry a non-OK status.
  Status List(std::vector<CheckpointEntry>* out) const;

  /// Reads the snapshot for `slot` and checks it against the manifest's
  /// size and SHA-256 binding; Corruption on any mismatch.
  Status ReadSnapshot(const CheckpointManifest& manifest, uint32_t slot,
                      Bytes* out) const;

  std::string ManifestPath(uint32_t slot) const;
  std::string SnapshotPath(uint32_t slot) const;

 private:
  /// write + Sync to `tmp`, then Rename onto `final_path`; retried.
  Status WriteFileAtomic(const std::string& tmp, const std::string& final_path,
                         const Bytes& data);

  Env* env_;
  std::string base_;
  RetryPolicy retry_;
};

}  // namespace ledgerdb

#endif  // LEDGERDB_STORAGE_CHECKPOINT_H_
