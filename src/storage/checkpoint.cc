#include "storage/checkpoint.h"

#include <algorithm>

#include "storage/stream_store.h"

namespace ledgerdb {

namespace {

constexpr uint32_t kManifestMagic = 0x74706b63;  // "ckpt"
constexpr uint32_t kSnapshotMagic = 0x70616e73;  // "snap"

bool GetDigest(const Bytes& raw, size_t* pos, Digest* out) {
  if (*pos + 32 > raw.size()) return false;
  std::copy(raw.begin() + static_cast<long>(*pos),
            raw.begin() + static_cast<long>(*pos) + 32, out->bytes.begin());
  *pos += 32;
  return true;
}

/// Every manifest field above the signature, in declaration order — the
/// byte string both the CRC frame and the LSP signature commit to.
void EncodeManifestCore(const CheckpointManifest& m, Bytes* out) {
  PutU32(out, kManifestMagic);
  PutU32(out, m.format_version);
  PutLengthPrefixed(out, StringToBytes(m.ledger_uri));
  PutU64(out, m.watermark);
  PutU64(out, m.block_height);
  for (const Digest* d : {&m.boundary_block_hash, &m.fam_root, &m.clue_root,
                          &m.state_root, &m.state_current_root}) {
    out->insert(out->end(), d->bytes.begin(), d->bytes.end());
  }
  PutU32(out, m.fractal_height);
  PutU64(out, m.block_capacity);
  PutU64(out, static_cast<uint64_t>(m.timestamp));
  PutU64(out, m.snapshot_size);
  out->insert(out->end(), m.snapshot_sha.bytes.begin(),
              m.snapshot_sha.bytes.end());
}

}  // namespace

Digest CheckpointManifest::MessageHash() const {
  Bytes buf = StringToBytes("checkpoint");
  EncodeManifestCore(*this, &buf);
  return Sha256::Hash(buf);
}

bool CheckpointManifest::Verify(const PublicKey& lsp_key) const {
  return VerifySignature(lsp_key, MessageHash(), lsp_sig);
}

Bytes CheckpointManifest::Serialize() const {
  Bytes out;
  EncodeManifestCore(*this, &out);
  Bytes sig = lsp_sig.Serialize();
  out.insert(out.end(), sig.begin(), sig.end());
  PutU32(&out, Crc32(out.data(), out.size()));
  return out;
}

bool CheckpointManifest::Deserialize(const Bytes& raw,
                                     CheckpointManifest* out) {
  if (raw.size() < 4) return false;
  size_t body = raw.size() - 4;
  size_t pos = body;
  uint32_t crc = 0;
  if (!GetU32(raw, &pos, &crc)) return false;
  if (crc != Crc32(raw.data(), body)) return false;
  pos = 0;
  uint32_t magic = 0;
  if (!GetU32(raw, &pos, &magic) || magic != kManifestMagic) return false;
  if (!GetU32(raw, &pos, &out->format_version)) return false;
  Bytes uri;
  if (!GetLengthPrefixed(raw, &pos, &uri)) return false;
  out->ledger_uri.assign(uri.begin(), uri.end());
  if (!GetU64(raw, &pos, &out->watermark) ||
      !GetU64(raw, &pos, &out->block_height)) {
    return false;
  }
  for (Digest* d : {&out->boundary_block_hash, &out->fam_root, &out->clue_root,
                    &out->state_root, &out->state_current_root}) {
    if (!GetDigest(raw, &pos, d)) return false;
  }
  if (!GetU32(raw, &pos, &out->fractal_height) ||
      !GetU64(raw, &pos, &out->block_capacity)) {
    return false;
  }
  uint64_t ts = 0;
  if (!GetU64(raw, &pos, &ts)) return false;
  out->timestamp = static_cast<Timestamp>(ts);
  if (!GetU64(raw, &pos, &out->snapshot_size)) return false;
  if (!GetDigest(raw, &pos, &out->snapshot_sha)) return false;
  if (pos + 64 != body) return false;
  Bytes sig(raw.begin() + static_cast<long>(pos),
            raw.begin() + static_cast<long>(body));
  return Signature::Deserialize(sig, &out->lsp_sig);
}

void CheckpointSnapshotInit(Bytes* out) {
  PutU32(out, kSnapshotMagic);
  PutU32(out, kCheckpointFormatVersion);
}

void CheckpointAppendSection(Bytes* out, uint32_t tag, const Bytes& payload) {
  PutU32(out, tag);
  PutLengthPrefixed(out, payload);
  PutU32(out, Crc32(payload.data(), payload.size()));
}

Status CheckpointParseSections(const Bytes& raw,
                               std::map<uint32_t, Bytes>* sections,
                               bool verify_crc) {
  sections->clear();
  size_t pos = 0;
  uint32_t magic = 0;
  uint32_t version = 0;
  if (!GetU32(raw, &pos, &magic) || magic != kSnapshotMagic) {
    return Status::Corruption("snapshot: bad magic");
  }
  if (!GetU32(raw, &pos, &version) || version != kCheckpointFormatVersion) {
    return Status::Corruption("snapshot: unsupported format version");
  }
  while (pos < raw.size()) {
    uint32_t tag = 0;
    Bytes payload;
    uint32_t crc = 0;
    if (!GetU32(raw, &pos, &tag) || !GetLengthPrefixed(raw, &pos, &payload) ||
        !GetU32(raw, &pos, &crc)) {
      return Status::Corruption("snapshot: torn section frame");
    }
    if (verify_crc && crc != Crc32(payload.data(), payload.size())) {
      return Status::Corruption("snapshot: section " + std::to_string(tag) +
                                " crc mismatch");
    }
    if (!sections->emplace(tag, std::move(payload)).second) {
      return Status::Corruption("snapshot: duplicate section " +
                                std::to_string(tag));
    }
  }
  return Status::OK();
}

CheckpointStore::CheckpointStore(Env* env, std::string base_path,
                                 RetryPolicy retry)
    : env_(env), base_(std::move(base_path)), retry_(retry) {}

std::string CheckpointStore::ManifestPath(uint32_t slot) const {
  return base_ + ".ckpt." + std::to_string(slot);
}

std::string CheckpointStore::SnapshotPath(uint32_t slot) const {
  return base_ + ".snap." + std::to_string(slot);
}

Status CheckpointStore::WriteFileAtomic(const std::string& tmp,
                                        const std::string& final_path,
                                        const Bytes& data) {
  Status s = RetryTransient(retry_, [&] {
    std::unique_ptr<File> file;
    LEDGERDB_RETURN_IF_ERROR(env_->OpenFile(tmp, &file));
    // A stale tmp from a crashed earlier attempt may be longer than the
    // bytes written below; truncate so the rename publishes exactly `data`.
    LEDGERDB_RETURN_IF_ERROR(file->Truncate(0));
    LEDGERDB_RETURN_IF_ERROR(file->Write(0, Slice(data)));
    return file->Sync();
  });
  if (!s.ok()) return s;
  return RetryTransient(retry_, [&] { return env_->Rename(tmp, final_path); });
}

Status CheckpointStore::Write(const CheckpointManifest& manifest,
                              const Bytes& snapshot, uint32_t* slot_out) {
  // Pick the slot that does NOT hold the newest valid manifest, so the
  // checkpoint a fallback would use survives this write in every crash.
  std::vector<CheckpointEntry> entries;
  LEDGERDB_RETURN_IF_ERROR(List(&entries));
  uint32_t slot = 0;
  uint64_t newest = 0;
  bool have_valid = false;
  for (const CheckpointEntry& entry : entries) {
    if (!entry.status.ok()) continue;
    if (!have_valid || entry.manifest.watermark >= newest) {
      newest = entry.manifest.watermark;
      slot = (entry.slot + 1) % kSlots;
      have_valid = true;
    }
  }
  LEDGERDB_RETURN_IF_ERROR(
      WriteFileAtomic(base_ + ".snap.tmp", SnapshotPath(slot), snapshot));
  LEDGERDB_RETURN_IF_ERROR(WriteFileAtomic(base_ + ".ckpt.tmp",
                                           ManifestPath(slot),
                                           manifest.Serialize()));
  if (slot_out != nullptr) *slot_out = slot;
  return Status::OK();
}

Status CheckpointStore::List(std::vector<CheckpointEntry>* out) const {
  out->clear();
  for (uint32_t slot = 0; slot < kSlots; ++slot) {
    const std::string path = ManifestPath(slot);
    if (!env_->FileExists(path)) continue;
    CheckpointEntry entry;
    entry.slot = slot;
    Bytes raw;
    Status s = RetryTransient(retry_, [&] {
      std::unique_ptr<File> file;
      LEDGERDB_RETURN_IF_ERROR(env_->OpenFile(path, &file));
      uint64_t size = 0;
      LEDGERDB_RETURN_IF_ERROR(file->Size(&size));
      return file->Read(0, size, &raw);
    });
    if (s.ok() && !CheckpointManifest::Deserialize(raw, &entry.manifest)) {
      s = Status::Corruption("checkpoint manifest " + path +
                             ": bad frame (magic/crc/layout)");
    }
    entry.status = s;
    out->push_back(std::move(entry));
  }
  return Status::OK();
}

Status CheckpointStore::ReadSnapshot(const CheckpointManifest& manifest,
                                     uint32_t slot, Bytes* out) const {
  const std::string path = SnapshotPath(slot);
  if (!env_->FileExists(path)) {
    return Status::Corruption("checkpoint snapshot " + path + ": missing");
  }
  uint64_t size = 0;
  Status s = RetryTransient(retry_, [&] {
    std::unique_ptr<File> file;
    LEDGERDB_RETURN_IF_ERROR(env_->OpenFile(path, &file));
    LEDGERDB_RETURN_IF_ERROR(file->Size(&size));
    if (size != manifest.snapshot_size) {
      // Not transient — surface as Corruption below, outside the retry.
      return Status::OK();
    }
    return file->Read(0, size, out);
  });
  LEDGERDB_RETURN_IF_ERROR(s);
  if (size != manifest.snapshot_size) {
    return Status::Corruption("checkpoint snapshot " + path + ": size " +
                              std::to_string(size) + " != manifest " +
                              std::to_string(manifest.snapshot_size));
  }
  if (Sha256::Hash(*out) != manifest.snapshot_sha) {
    return Status::Corruption("checkpoint snapshot " + path +
                              ": SHA-256 mismatch against manifest");
  }
  return Status::OK();
}

}  // namespace ledgerdb
