#ifndef LEDGERDB_STORAGE_BITMAP_INDEX_H_
#define LEDGERDB_STORAGE_BITMAP_INDEX_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ledgerdb {

/// Word-packed bitmap index — the "occult bitmap index" of §III-A3: one
/// bit per jsn marking occulted journals, cheap to set on the occult
/// path and cheap to scan during the idle data-reorganization pass.
class BitmapIndex {
 public:
  BitmapIndex() = default;

  /// Grows the bitmap to cover at least `bits` positions (new bits are 0).
  void Resize(uint64_t bits);

  uint64_t size() const { return bits_; }

  /// Sets/clears bit `pos` (grows if needed on Set).
  void Set(uint64_t pos);
  void Clear(uint64_t pos);

  bool Get(uint64_t pos) const;

  /// Number of set bits in [0, size()).
  uint64_t Count() const;

  /// Number of set bits in [begin, end).
  uint64_t CountRange(uint64_t begin, uint64_t end) const;

  /// Positions of all set bits in [begin, end), ascending — the
  /// reorganization utility's scan.
  std::vector<uint64_t> SetBits(uint64_t begin, uint64_t end) const;

  /// First set bit at or after `pos`, or size() if none.
  uint64_t NextSetBit(uint64_t pos) const;

  /// Approximate memory footprint in bytes.
  size_t MemoryBytes() const { return words_.size() * sizeof(uint64_t); }

 private:
  uint64_t bits_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace ledgerdb

#endif  // LEDGERDB_STORAGE_BITMAP_INDEX_H_
