#ifndef LEDGERDB_STORAGE_STREAM_STORE_H_
#define LEDGERDB_STORAGE_STREAM_STORE_H_

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"

namespace ledgerdb {

/// Append-only record stream — the analog of LedgerDB's "stream file
/// system" (§II-C). Journals, time journals and the purge survival stream
/// are each backed by one stream. Records are addressed by their dense
/// append index.
class StreamStore {
 public:
  virtual ~StreamStore() = default;

  /// Appends a record and returns its index via `index`.
  virtual Status Append(Slice record, uint64_t* index) = 0;

  /// Reads record `index` into `out`. NotFound if the index was never
  /// written; Corruption if the underlying bytes fail validation.
  virtual Status Read(uint64_t index, Bytes* out) const = 0;

  /// Overwrites record `index` in place. Only the occult erasure path may
  /// use this (replacing a payload with its retained digest); streams are
  /// append-only for every other caller.
  virtual Status Overwrite(uint64_t index, Slice record) = 0;

  /// Number of records appended so far.
  virtual uint64_t Count() const = 0;
};

/// Heap-backed stream store used by tests and benchmarks.
class MemoryStreamStore : public StreamStore {
 public:
  Status Append(Slice record, uint64_t* index) override;
  Status Read(uint64_t index, Bytes* out) const override;
  Status Overwrite(uint64_t index, Slice record) override;
  uint64_t Count() const override { return records_.size(); }

 private:
  std::vector<Bytes> records_;
};

/// File-backed stream store: records are appended to a single log file as
/// [u32 length][u32 crc][payload] frames; an in-memory offset index makes
/// reads O(1). Demonstrates the durable deployment path.
class FileStreamStore : public StreamStore {
 public:
  /// Opens the log at `path`, creating it if absent. An existing log is
  /// scanned frame by frame to rebuild the offset index (cross-process
  /// recovery); a torn final frame (partial write at crash) is truncated
  /// away, earlier corruption is surfaced lazily by Read's CRC check.
  static Status Open(const std::string& path, std::unique_ptr<FileStreamStore>* out);

  ~FileStreamStore() override;

  FileStreamStore(const FileStreamStore&) = delete;
  FileStreamStore& operator=(const FileStreamStore&) = delete;

  Status Append(Slice record, uint64_t* index) override;
  Status Read(uint64_t index, Bytes* out) const override;
  Status Overwrite(uint64_t index, Slice record) override;
  uint64_t Count() const override { return offsets_.size(); }

 private:
  explicit FileStreamStore(std::FILE* file) : file_(file) {}

  std::FILE* file_;
  std::vector<long> offsets_;      // byte offset of each frame
  std::vector<uint32_t> lengths_;  // payload length of each frame
};

/// CRC32 (IEEE) over a byte range; frame checksum for FileStreamStore.
uint32_t Crc32(const uint8_t* data, size_t size);

}  // namespace ledgerdb

#endif  // LEDGERDB_STORAGE_STREAM_STORE_H_
