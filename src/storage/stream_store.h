#ifndef LEDGERDB_STORAGE_STREAM_STORE_H_
#define LEDGERDB_STORAGE_STREAM_STORE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/retry.h"
#include "common/status.h"
#include "storage/env.h"

namespace ledgerdb {

/// Append-only record stream — the analog of LedgerDB's "stream file
/// system" (§II-C). Journals, time journals and the purge survival stream
/// are each backed by one stream. Records are addressed by their dense
/// append index.
class StreamStore {
 public:
  virtual ~StreamStore() = default;

  /// Appends a record and returns its index via `index`.
  virtual Status Append(Slice record, uint64_t* index) = 0;

  /// Appends every record in `records` as one durability group; record i
  /// lands at `*first_index + i` (indexes stay dense). The base
  /// implementation loops over Append; stores that support group commit
  /// override it to make the whole group durable with one flush, in which
  /// case a failure leaves nothing appended — callers must treat any
  /// error as fatal for the entire group.
  virtual Status AppendBatch(const std::vector<Slice>& records,
                             uint64_t* first_index);

  /// Reads record `index` into `out`. NotFound if the index was never
  /// written; Corruption if the underlying bytes fail validation.
  virtual Status Read(uint64_t index, Bytes* out) const = 0;

  /// Overwrites record `index` in place. Only the occult erasure path may
  /// use this (replacing a payload with its retained digest); streams are
  /// append-only for every other caller.
  virtual Status Overwrite(uint64_t index, Slice record) = 0;

  /// Number of records appended so far.
  virtual uint64_t Count() const = 0;

  /// CRC32 of record `index`'s current bytes. The base implementation
  /// reads the record and hashes it; stores that already keep per-record
  /// checksums (FileStreamStore frames) answer from memory without I/O —
  /// checkpoint recovery leans on that to detect in-place rewrites below
  /// the watermark in O(1) per record.
  virtual Status RecordCrc(uint64_t index, uint32_t* crc) const;

  /// Eager full-scan integrity check: validates every frame's checksums
  /// and sequencing so corruption surfaces now instead of at some future
  /// Read. Stores with no durable framing have nothing to verify.
  virtual Status Fsck() const { return Status::OK(); }
};

/// Heap-backed stream store used by tests and benchmarks.
class MemoryStreamStore : public StreamStore {
 public:
  Status Append(Slice record, uint64_t* index) override;
  Status Read(uint64_t index, Bytes* out) const override;
  Status Overwrite(uint64_t index, Slice record) override;
  uint64_t Count() const override { return records_.size(); }

 private:
  std::vector<Bytes> records_;
};

/// File-backed stream store. Records are appended to a single log file as
/// fixed-header frames
///
///   [u32 capacity][u32 length][u32 seq][u32 payload_crc][u32 header_crc]
///   [payload, `capacity` bytes]
///
/// (20-byte header, all fields little-endian). `capacity` is fixed at
/// append time; `length` (<= capacity) may shrink on in-place rewrites
/// (occult erasure, purge tombstones), so the reopen scan can always
/// advance by capacity. `seq` is the frame's index in the stream, making
/// holes and reordering detectable. `payload_crc` covers the live
/// `length` bytes; `header_crc` covers the first 16 header bytes, so a
/// torn or flipped header never parses as valid.
///
/// Durability bookkeeping lives in a sidecar (`path` + ".wm") holding the
/// byte offset up to which the log was known synced. On reopen, anything
/// at or beyond the watermark — damaged bytes from a torn write, or even
/// frames that parse cleanly (a group write can tear exactly on a frame
/// boundary, and none of those frames were ever acknowledged) — is
/// quarantined to `path` + ".quarantine" and truncated away
/// (recoverable). Damage below the watermark means bytes the store had
/// acknowledged as durable changed — a hard Status::Corruption. When the
/// sidecar is absent (legacy image) the scan is lenient: valid frames are
/// kept and quarantine starts at the first damaged byte.
class FileStreamStore : public StreamStore {
 public:
  static constexpr size_t kFrameHeaderSize = 20;

  /// What the reopen scan found and did. Inspected by fsck tooling and
  /// crash tests; a clean open reports zero frames quarantined.
  struct RecoveryReport {
    uint64_t frames = 0;             // valid frames indexed
    uint64_t quarantined_bytes = 0;  // torn-tail bytes moved aside
    bool tail_quarantined = false;
    bool watermark_missing = false;  // sidecar absent/unreadable (treated as 0)
    uint64_t watermark = 0;          // durable size loaded from the sidecar
  };

  /// Opens the log at `path` under `env`, creating it if absent. An
  /// existing log is scanned frame by frame to rebuild the offset index;
  /// see the class comment for the torn-tail vs corruption policy.
  static Status Open(Env* env, const std::string& path,
                     std::unique_ptr<FileStreamStore>* out);

  /// Convenience overload on the default (stdio) environment.
  static Status Open(const std::string& path,
                     std::unique_ptr<FileStreamStore>* out);

  ~FileStreamStore() override;

  FileStreamStore(const FileStreamStore&) = delete;
  FileStreamStore& operator=(const FileStreamStore&) = delete;

  Status Append(Slice record, uint64_t* index) override;

  /// Group commit: encodes all frames into one buffer, writes it with a
  /// single Write + Sync and advances the durable watermark with one more
  /// sync — two fsyncs per group instead of two per record. Either the
  /// whole group is acknowledged or (on any error) none of it is indexed.
  Status AppendBatch(const std::vector<Slice>& records,
                     uint64_t* first_index) override;

  Status Read(uint64_t index, Bytes* out) const override;
  Status Overwrite(uint64_t index, Slice record) override;
  uint64_t Count() const override { return offsets_.size(); }
  Status RecordCrc(uint64_t index, uint32_t* crc) const override;

  /// Re-validates every frame on disk (header crc, sequence number,
  /// payload crc) without touching the in-memory index.
  Status Fsck() const override;

  const RecoveryReport& recovery_report() const { return report_; }

  /// Durable watermark currently recorded in the sidecar.
  uint64_t DurableWatermark() const { return watermark_; }

 private:
  FileStreamStore(Env* env, std::string path);

  /// Rewrites the watermark sidecar to cover `end_offset_` and syncs it.
  Status PersistWatermark();

  Env* env_;
  std::string path_;
  std::unique_ptr<File> file_;
  std::unique_ptr<File> wm_file_;
  RetryPolicy retry_;
  uint64_t end_offset_ = 0;  // byte offset one past the last valid frame
  uint64_t watermark_ = 0;
  RecoveryReport report_;
  std::vector<uint64_t> offsets_;    // byte offset of each frame
  std::vector<uint32_t> lengths_;    // live payload length of each frame
  std::vector<uint32_t> capacities_; // fixed payload capacity of each frame
  std::vector<uint32_t> crcs_;       // payload crc of each frame
};

/// CRC32 (IEEE) over a byte range; frame checksum for FileStreamStore.
uint32_t Crc32(const uint8_t* data, size_t size);

}  // namespace ledgerdb

#endif  // LEDGERDB_STORAGE_STREAM_STORE_H_
