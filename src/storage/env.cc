#include "storage/env.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <sys/stat.h>

#ifdef _WIN32
#include <io.h>
#else
#include <unistd.h>
#endif

namespace ledgerdb {

Status StatusFromErrno(int err, const std::string& what) {
  std::string detail = what;
  if (err != 0) {
    detail += ": ";
    detail += std::strerror(err);
  }
  switch (err) {
    case EINTR:   // interrupted call — retry is exactly right
    case EAGAIN:  // momentarily unavailable resource
#if defined(EWOULDBLOCK) && EWOULDBLOCK != EAGAIN
    case EWOULDBLOCK:
#endif
    case EBUSY:    // file/device momentarily busy (e.g. concurrent rename)
    case ENOMEM:   // kernel allocation pressure, often transient
    case ENOBUFS:  // buffer-space exhaustion
      return Status::TransientIO(detail);
    default:
      return Status::IOError(detail);
  }
}

namespace {

// ---------------------------------------------------------------------------
// StdioFile / StdioEnv — the production backend. fsync() after fflush() so
// Sync() means what it says at the device level, not just libc's buffer.
// ---------------------------------------------------------------------------

class StdioFile : public File {
 public:
  explicit StdioFile(std::FILE* f) : file_(f) {}

  ~StdioFile() override {
    if (file_ != nullptr) std::fclose(file_);
  }

  Status Read(uint64_t offset, size_t n, Bytes* out) const override {
    out->resize(n);
    if (n == 0) return Status::OK();
    if (std::fseek(file_, static_cast<long>(offset), SEEK_SET) != 0) {
      return Status::IOError("seek failed");
    }
    size_t got = std::fread(out->data(), 1, n, file_);
    if (got != n) return Status::IOError("short read");
    return Status::OK();
  }

  Status Write(uint64_t offset, Slice data) override {
    if (std::fseek(file_, static_cast<long>(offset), SEEK_SET) != 0) {
      return StatusFromErrno(errno, "seek failed");
    }
    errno = 0;
    if (std::fwrite(data.data(), 1, data.size(), file_) != data.size()) {
      return StatusFromErrno(errno, "short write");
    }
    return Status::OK();
  }

  Status Sync() override {
    errno = 0;
    if (std::fflush(file_) != 0) {
      return StatusFromErrno(errno, "fflush failed");
    }
#ifndef _WIN32
    if (::fsync(::fileno(file_)) != 0) {
      return StatusFromErrno(errno, "fsync failed");
    }
#endif
    return Status::OK();
  }

  Status Truncate(uint64_t size) override {
    errno = 0;
    if (std::fflush(file_) != 0) {
      return StatusFromErrno(errno, "fflush failed");
    }
#ifdef _WIN32
    if (::_chsize_s(::_fileno(file_), static_cast<long long>(size)) != 0) {
      return Status::IOError("truncate failed");
    }
#else
    if (::ftruncate(::fileno(file_), static_cast<off_t>(size)) != 0) {
      return StatusFromErrno(errno, "ftruncate failed");
    }
#endif
    return Status::OK();
  }

  Status Size(uint64_t* out) const override {
    if (std::fflush(file_) != 0) return Status::IOError("fflush failed");
    struct stat st;
    if (::fstat(::fileno(file_), &st) != 0) {
      return Status::IOError("fstat failed");
    }
    *out = static_cast<uint64_t>(st.st_size);
    return Status::OK();
  }

 private:
  mutable std::FILE* file_;
};

class StdioEnv : public Env {
 public:
  Status OpenFile(const std::string& path,
                  std::unique_ptr<File>* out) override {
    // "r+b" preserves existing content; fall back to "w+b" to create.
    std::FILE* f = std::fopen(path.c_str(), "r+b");
    if (f == nullptr) f = std::fopen(path.c_str(), "w+b");
    if (f == nullptr) return Status::IOError("cannot open " + path);
    *out = std::make_unique<StdioFile>(f);
    return Status::OK();
  }

  bool FileExists(const std::string& path) const override {
    struct stat st;
    return ::stat(path.c_str(), &st) == 0;
  }

  Status DeleteFile(const std::string& path) override {
    if (std::remove(path.c_str()) != 0) {
      return Status::IOError("cannot delete " + path);
    }
    return Status::OK();
  }

  Status Rename(const std::string& from, const std::string& to) override {
    errno = 0;
    if (std::rename(from.c_str(), to.c_str()) != 0) {
      return StatusFromErrno(errno, "cannot rename " + from + " -> " + to);
    }
    return Status::OK();
  }
};

// ---------------------------------------------------------------------------
// MemFile — view onto MemEnv-owned bytes; survives handle close/reopen.
// ---------------------------------------------------------------------------

class MemFile : public File {
 public:
  explicit MemFile(std::shared_ptr<MemFileData> data)
      : data_(std::move(data)) {}

  Status Read(uint64_t offset, size_t n, Bytes* out) const override {
    std::lock_guard<std::mutex> lock(data_->mu);
    if (offset + n > data_->bytes.size()) {
      return Status::IOError("short read");
    }
    out->assign(data_->bytes.begin() + static_cast<long>(offset),
                data_->bytes.begin() + static_cast<long>(offset + n));
    return Status::OK();
  }

  Status Write(uint64_t offset, Slice data) override {
    std::lock_guard<std::mutex> lock(data_->mu);
    if (offset + data.size() > data_->bytes.size()) {
      data_->bytes.resize(offset + data.size(), 0);
    }
    std::memcpy(data_->bytes.data() + offset, data.data(), data.size());
    return Status::OK();
  }

  Status Sync() override { return Status::OK(); }

  Status Truncate(uint64_t size) override {
    std::lock_guard<std::mutex> lock(data_->mu);
    data_->bytes.resize(size, 0);
    return Status::OK();
  }

  Status Size(uint64_t* out) const override {
    std::lock_guard<std::mutex> lock(data_->mu);
    *out = data_->bytes.size();
    return Status::OK();
  }

 private:
  std::shared_ptr<MemFileData> data_;
};

}  // namespace

Env* Env::Default() {
  static StdioEnv* env = new StdioEnv();
  return env;
}

Status MemEnv::OpenFile(const std::string& path, std::unique_ptr<File>* out) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(path);
  if (it == files_.end()) {
    it = files_.emplace(path, std::make_shared<MemFileData>()).first;
  }
  *out = std::make_unique<MemFile>(it->second);
  return Status::OK();
}

bool MemEnv::FileExists(const std::string& path) const {
  std::lock_guard<std::mutex> lock(mu_);
  return files_.count(path) > 0;
}

Status MemEnv::DeleteFile(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  if (files_.erase(path) == 0) {
    return Status::IOError("cannot delete " + path);
  }
  return Status::OK();
}

Status MemEnv::Rename(const std::string& from, const std::string& to) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(from);
  if (it == files_.end()) {
    return Status::IOError("cannot rename " + from + ": no such file");
  }
  // POSIX replace semantics: an existing destination is displaced; handles
  // already open on it keep their (now unlinked) backing data.
  files_[to] = std::move(it->second);
  files_.erase(it);
  return Status::OK();
}

}  // namespace ledgerdb
