#ifndef LEDGERDB_STORAGE_FAULT_ENV_H_
#define LEDGERDB_STORAGE_FAULT_ENV_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/random.h"
#include "storage/env.h"

namespace ledgerdb {

/// What to inject at a scheduled fault point. Every kind except
/// kTransientError ends in a simulated power cut: unsynced writes are
/// rolled back and all further operations fail.
enum class FaultKind : uint8_t {
  /// Plain power cut: buffered (unsynced) writes are lost.
  kCrash = 0,
  /// The write at this point persists only a random prefix, then power cut.
  /// Models a torn sector/page write.
  kTornWrite,
  /// The sync at this point is acknowledged as OK but persists nothing;
  /// the power cut follows immediately. Models a lying disk cache.
  kDroppedSync,
  /// One random already-durable bit of the target file flips, then power
  /// cut. Models latent media corruption discovered after restart.
  kBitFlip,
  /// The target file is truncated to a random shorter length, then power
  /// cut. Models a lost file extent.
  kTruncate,
  /// The operation fails once with Status::TransientIO and no crash; the
  /// retry layer is expected to absorb it.
  kTransientError,
};

inline constexpr int kFaultKindCount = 6;

/// Deterministic fault-injection environment. Wraps a base Env and counts
/// every mutating file operation (Write / Sync / Truncate) as a numbered
/// fault point. A fault scheduled at point N fires when the N-th mutating
/// op is issued. The crash model is write-through with an undo log: writes
/// land in the base env immediately but record undo information; Sync()
/// discards the undo records (the bytes are now durable); a simulated
/// crash rolls back every unsynced write, leaving exactly the bytes a real
/// power cut would leave. After a crash every operation fails with
/// IOError until the env is discarded; reopen the surviving image through
/// the base env to run recovery.
///
/// All randomness (torn-prefix length, flipped bit, truncation point)
/// comes from the seeded Random, so a given (seed, schedule) pair replays
/// bit-identically.
class FaultEnv : public Env {
 public:
  FaultEnv(Env* base, uint64_t seed);
  ~FaultEnv() override;

  /// Schedules `kind` to fire at mutating-op number `op` (0-based).
  void ScheduleFault(uint64_t op, FaultKind kind);

  /// Number of mutating ops issued so far. Run a workload once with no
  /// schedule to learn how many fault points it exposes.
  uint64_t ops() const;

  bool crashed() const;

  /// Number of faults that have actually fired.
  int faults_injected() const;

  Status OpenFile(const std::string& path,
                  std::unique_ptr<File>* out) override;
  bool FileExists(const std::string& path) const override;
  Status DeleteFile(const std::string& path) override;

  /// Rename is a counted fault point like Write/Sync/Truncate. A crash
  /// scheduled here strikes *before* the rename takes effect (rename(2) is
  /// atomic, so the only crash outcomes are old-name or new-name — the
  /// undo model keeps the old name and rolls back the source's unsynced
  /// writes). A successful rename is treated as immediately durable, the
  /// common journaling-filesystem behaviour checkpoint publication
  /// assumes.
  Status Rename(const std::string& from, const std::string& to) override;

 private:
  friend class FaultFile;

  /// One unsynced write's undo record: the bytes (and file length) to
  /// restore if a crash strikes before the next Sync.
  struct PendingWrite {
    uint64_t offset;
    Bytes overwritten;  // previous contents of [offset, offset+overlap)
    uint64_t old_size;  // file size before the write
  };

  struct FileState {
    std::unique_ptr<File> base;
    std::vector<PendingWrite> unsynced;
  };

  // Op-counted entry points called by FaultFile. `mu_` is held throughout,
  // making fault-point numbering deterministic even under concurrency.
  Status DoRead(FileState* st, uint64_t offset, size_t n, Bytes* out);
  Status DoWrite(FileState* st, uint64_t offset, Slice data);
  Status DoSync(FileState* st);
  Status DoTruncate(FileState* st, uint64_t size);
  Status DoSize(FileState* st, uint64_t* out);

  /// Looks up (and consumes) a fault scheduled for the current op, then
  /// advances the counter. Caller holds mu_.
  bool NextFault(FaultKind* kind);

  /// Rolls back all unsynced writes across every file and marks the env
  /// crashed. Caller holds mu_.
  void CrashLocked();

  mutable std::mutex mu_;
  Env* base_;
  Random rng_;
  std::map<uint64_t, FaultKind> plan_;
  uint64_t op_counter_ = 0;
  bool crashed_ = false;
  int injected_ = 0;
  // Keyed by path so undo state survives handle close/reopen and crash
  // rollback can reach every file ever opened through this env.
  std::unordered_map<std::string, std::shared_ptr<FileState>> files_;
};

}  // namespace ledgerdb

#endif  // LEDGERDB_STORAGE_FAULT_ENV_H_
