#ifndef LEDGERDB_STORAGE_CLUE_SKIPLIST_H_
#define LEDGERDB_STORAGE_CLUE_SKIPLIST_H_

#include <memory>
#include <string>
#include <vector>

#include "common/random.h"

namespace ledgerdb {

/// Write-optimized clue SkipList index (cSL, §IV-A): maps each clue label
/// to its ordered jsn posting list. Appending to an existing clue is O(1)
/// (tail push); inserting a new clue and point lookups are O(log c) in the
/// number of clues; clues are kept in lexicographic order, enabling range
/// scans (e.g. all `shipment-*` clues).
///
/// The index is deliberately non-authenticated — clue authenticity always
/// comes from CM-Tree proofs; cSL only locates journals quickly.
class ClueSkipList {
 public:
  static constexpr int kMaxHeight = 16;

  explicit ClueSkipList(uint64_t seed = 0x5eed);

  ClueSkipList(const ClueSkipList&) = delete;
  ClueSkipList& operator=(const ClueSkipList&) = delete;

  /// Appends `jsn` to `clue`'s posting list, creating the clue on first
  /// use. jsns must arrive in increasing order per clue (they do: journal
  /// commit order).
  void Append(const std::string& clue, uint64_t jsn);

  /// Posting list for `clue`, or nullptr if absent. The pointer stays
  /// valid until the skiplist is destroyed.
  const std::vector<uint64_t>* Find(const std::string& clue) const;

  bool Contains(const std::string& clue) const {
    return Find(clue) != nullptr;
  }

  /// Clues in [from, to) in lexicographic order, with their posting lists.
  std::vector<std::pair<std::string, const std::vector<uint64_t>*>> Scan(
      const std::string& from, const std::string& to) const;

  /// All clues, in order.
  std::vector<std::string> Keys() const;

  size_t ClueCount() const { return size_; }

 private:
  struct Node {
    std::string key;
    std::vector<uint64_t> jsns;
    std::vector<Node*> next;  // forward pointers, one per level

    Node(std::string k, int height)
        : key(std::move(k)), next(height, nullptr) {}
  };

  int RandomHeight();

  /// Greatest node with key < `key` at every level; fills `prev`.
  Node* FindGreaterOrEqual(const std::string& key,
                           Node* prev[kMaxHeight]) const;

  std::unique_ptr<Node> head_;
  std::vector<std::unique_ptr<Node>> nodes_;  // ownership pool
  Random rng_;
  int height_ = 1;
  size_t size_ = 0;
};

}  // namespace ledgerdb

#endif  // LEDGERDB_STORAGE_CLUE_SKIPLIST_H_
