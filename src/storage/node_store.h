#ifndef LEDGERDB_STORAGE_NODE_STORE_H_
#define LEDGERDB_STORAGE_NODE_STORE_H_

#include <memory>
#include <unordered_map>
#include <unordered_set>

#include "common/bytes.h"
#include "common/status.h"
#include "crypto/hash.h"

namespace ledgerdb {

/// Content-addressed store for serialized Merkle/MPT nodes, keyed by their
/// digest. MPT versioned roots rely on nodes being immutable once written,
/// so the store never mutates an entry.
class NodeStore {
 public:
  virtual ~NodeStore() = default;

  /// Stores `node` under `key`. Idempotent: re-putting the same key is a
  /// no-op (contents are content-addressed, so they cannot differ).
  virtual Status Put(const Digest& key, Slice node) = 0;

  /// Fetches the node stored under `key`.
  virtual Status Get(const Digest& key, Bytes* out) const = 0;

  virtual bool Contains(const Digest& key) const = 0;

  /// Number of distinct nodes stored.
  virtual size_t Size() const = 0;

  /// Garbage collection: deletes every node NOT in `live` (the retention
  /// set built with Mpt::CollectReachable over the roots to keep).
  /// Returns the number of nodes removed.
  virtual size_t Sweep(
      const std::unordered_set<Digest, DigestHasher>& live) = 0;
};

/// Hash-map-backed node store.
class MemoryNodeStore : public NodeStore {
 public:
  Status Put(const Digest& key, Slice node) override;
  Status Get(const Digest& key, Bytes* out) const override;
  bool Contains(const Digest& key) const override;
  size_t Size() const override { return map_.size(); }
  size_t Sweep(const std::unordered_set<Digest, DigestHasher>& live) override;

 private:
  std::unordered_map<Digest, Bytes, DigestHasher> map_;
};

/// Two-tier store modeling the paper's "top layers cached in memory, bottom
/// layers on disk" MPT deployment (§IV-B2): entries written with
/// `hot == true` stay in the memory tier; everything else goes to the
/// backing tier. Reads check memory first.
class TieredNodeStore : public NodeStore {
 public:
  explicit TieredNodeStore(std::unique_ptr<NodeStore> cold)
      : cold_(std::move(cold)) {}

  Status Put(const Digest& key, Slice node) override {
    return PutTiered(key, node, /*hot=*/false);
  }

  /// Tier-aware put.
  Status PutTiered(const Digest& key, Slice node, bool hot);

  Status Get(const Digest& key, Bytes* out) const override;
  bool Contains(const Digest& key) const override;
  size_t Size() const override { return hot_.Size() + cold_->Size(); }
  size_t Sweep(const std::unordered_set<Digest, DigestHasher>& live) override {
    return hot_.Sweep(live) + cold_->Sweep(live);
  }

  size_t HotSize() const { return hot_.Size(); }

 private:
  MemoryNodeStore hot_;
  std::unique_ptr<NodeStore> cold_;
};

}  // namespace ledgerdb

#endif  // LEDGERDB_STORAGE_NODE_STORE_H_
