#include "storage/stream_store.h"

#include <array>
#include <cstring>

namespace ledgerdb {

namespace {

std::array<uint32_t, 256> BuildCrcTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

}  // namespace

uint32_t Crc32(const uint8_t* data, size_t size) {
  static const std::array<uint32_t, 256> kTable = BuildCrcTable();
  uint32_t crc = 0xffffffffu;
  for (size_t i = 0; i < size; ++i) {
    crc = kTable[(crc ^ data[i]) & 0xff] ^ (crc >> 8);
  }
  return crc ^ 0xffffffffu;
}

// ---------------------------------------------------------------------------
// MemoryStreamStore
// ---------------------------------------------------------------------------

Status MemoryStreamStore::Append(Slice record, uint64_t* index) {
  *index = records_.size();
  records_.push_back(record.ToBytes());
  return Status::OK();
}

Status MemoryStreamStore::Read(uint64_t index, Bytes* out) const {
  if (index >= records_.size()) {
    return Status::NotFound("stream index out of range");
  }
  *out = records_[index];
  return Status::OK();
}

Status MemoryStreamStore::Overwrite(uint64_t index, Slice record) {
  if (index >= records_.size()) {
    return Status::NotFound("stream index out of range");
  }
  records_[index] = record.ToBytes();
  return Status::OK();
}

// ---------------------------------------------------------------------------
// FileStreamStore
// ---------------------------------------------------------------------------

Status FileStreamStore::Open(const std::string& path,
                             std::unique_ptr<FileStreamStore>* out) {
  // Reopen without truncation when the log already exists.
  std::FILE* f = std::fopen(path.c_str(), "r+b");
  if (f == nullptr) f = std::fopen(path.c_str(), "w+b");
  if (f == nullptr) {
    return Status::IOError("cannot open stream file: " + path);
  }
  std::unique_ptr<FileStreamStore> store(new FileStreamStore(f));

  // Rebuild the frame index from disk.
  if (std::fseek(f, 0, SEEK_END) != 0) return Status::IOError("seek");
  long file_size = std::ftell(f);
  long offset = 0;
  while (offset + 12 <= file_size) {
    if (std::fseek(f, offset, SEEK_SET) != 0) return Status::IOError("seek");
    uint8_t header[12];
    if (std::fread(header, 1, 12, f) != 12) break;
    uint32_t capacity, len;
    std::memcpy(&capacity, header, 4);
    std::memcpy(&len, header + 4, 4);
    if (len > capacity ||
        offset + 12 + static_cast<long>(capacity) > file_size) {
      // Torn or nonsensical final frame from a crash mid-append: drop it.
      break;
    }
    store->offsets_.push_back(offset);
    store->lengths_.push_back(len);
    offset += 12 + static_cast<long>(capacity);
  }
  *out = std::move(store);
  return Status::OK();
}

FileStreamStore::~FileStreamStore() {
  if (file_ != nullptr) std::fclose(file_);
}

Status FileStreamStore::Append(Slice record, uint64_t* index) {
  if (std::fseek(file_, 0, SEEK_END) != 0) return Status::IOError("seek");
  long offset = std::ftell(file_);
  uint32_t len = static_cast<uint32_t>(record.size());
  uint32_t crc = Crc32(record.data(), record.size());
  // Frame: [u32 capacity][u32 length][u32 crc][payload, capacity bytes].
  // Capacity never changes; length may shrink on in-place rewrites
  // (occult erasure, purge tombstones), so the reopen scan can always
  // advance by capacity.
  uint8_t header[12];
  std::memcpy(header, &len, 4);      // capacity
  std::memcpy(header + 4, &len, 4);  // live length
  std::memcpy(header + 8, &crc, 4);
  if (std::fwrite(header, 1, 12, file_) != 12 ||
      (record.size() > 0 &&
       std::fwrite(record.data(), 1, record.size(), file_) != record.size())) {
    return Status::IOError("short write");
  }
  std::fflush(file_);
  *index = offsets_.size();
  offsets_.push_back(offset);
  lengths_.push_back(len);
  return Status::OK();
}

Status FileStreamStore::Read(uint64_t index, Bytes* out) const {
  if (index >= offsets_.size()) {
    return Status::NotFound("stream index out of range");
  }
  if (std::fseek(file_, offsets_[index], SEEK_SET) != 0) {
    return Status::IOError("seek");
  }
  uint8_t header[12];
  if (std::fread(header, 1, 12, file_) != 12) {
    return Status::IOError("short read");
  }
  uint32_t len, crc;
  std::memcpy(&len, header + 4, 4);
  std::memcpy(&crc, header + 8, 4);
  out->resize(len);
  if (len > 0 && std::fread(out->data(), 1, len, file_) != len) {
    return Status::IOError("short read");
  }
  if (Crc32(out->data(), out->size()) != crc) {
    return Status::Corruption("stream frame crc mismatch");
  }
  return Status::OK();
}

Status FileStreamStore::Overwrite(uint64_t index, Slice record) {
  if (index >= offsets_.size()) {
    return Status::NotFound("stream index out of range");
  }
  // Capacity = the frame's original payload size, fixed at append time.
  if (std::fseek(file_, offsets_[index], SEEK_SET) != 0) {
    return Status::IOError("seek");
  }
  uint8_t cap_bytes[4];
  if (std::fread(cap_bytes, 1, 4, file_) != 4) {
    return Status::IOError("short read");
  }
  uint32_t capacity;
  std::memcpy(&capacity, cap_bytes, 4);
  if (record.size() > capacity) {
    return Status::NotSupported("overwrite larger than original frame");
  }
  uint32_t len = static_cast<uint32_t>(record.size());
  uint32_t crc = Crc32(record.data(), record.size());
  uint8_t header[8];
  std::memcpy(header, &len, 4);
  std::memcpy(header + 4, &crc, 4);
  // A read followed by a write on the same stream requires repositioning.
  if (std::fseek(file_, offsets_[index] + 4, SEEK_SET) != 0) {
    return Status::IOError("seek");
  }
  if (std::fwrite(header, 1, 8, file_) != 8 ||
      (record.size() > 0 &&
       std::fwrite(record.data(), 1, record.size(), file_) != record.size())) {
    return Status::IOError("short write");
  }
  std::fflush(file_);
  lengths_[index] = len;
  return Status::OK();
}

}  // namespace ledgerdb
