#include "storage/stream_store.h"

#include <array>
#include <cstring>

#include "obs/metric_names.h"
#include "obs/metrics.h"

namespace ledgerdb {

namespace {

std::array<uint32_t, 256> BuildCrcTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

uint32_t DecodeU32(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}

void EncodeFrameHeader(uint8_t* h, uint32_t capacity, uint32_t length,
                       uint32_t seq, uint32_t payload_crc) {
  std::memcpy(h, &capacity, 4);
  std::memcpy(h + 4, &length, 4);
  std::memcpy(h + 8, &seq, 4);
  std::memcpy(h + 12, &payload_crc, 4);
  uint32_t header_crc = Crc32(h, 16);
  std::memcpy(h + 16, &header_crc, 4);
}

constexpr size_t kWatermarkRecordSize = 12;  // [u64 size][u32 crc]

std::string WatermarkPath(const std::string& path) { return path + ".wm"; }
std::string QuarantinePath(const std::string& path) {
  return path + ".quarantine";
}

}  // namespace

uint32_t Crc32(const uint8_t* data, size_t size) {
  static const std::array<uint32_t, 256> kTable = BuildCrcTable();
  uint32_t crc = 0xffffffffu;
  for (size_t i = 0; i < size; ++i) {
    crc = kTable[(crc ^ data[i]) & 0xff] ^ (crc >> 8);
  }
  return crc ^ 0xffffffffu;
}

Status StreamStore::RecordCrc(uint64_t index, uint32_t* crc) const {
  Bytes record;
  LEDGERDB_RETURN_IF_ERROR(Read(index, &record));
  *crc = Crc32(record.data(), record.size());
  return Status::OK();
}

Status StreamStore::AppendBatch(const std::vector<Slice>& records,
                                uint64_t* first_index) {
  *first_index = Count();
  for (const Slice& record : records) {
    uint64_t index = 0;
    LEDGERDB_RETURN_IF_ERROR(Append(record, &index));
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// MemoryStreamStore
// ---------------------------------------------------------------------------

Status MemoryStreamStore::Append(Slice record, uint64_t* index) {
  *index = records_.size();
  records_.push_back(record.ToBytes());
  return Status::OK();
}

Status MemoryStreamStore::Read(uint64_t index, Bytes* out) const {
  if (index >= records_.size()) {
    return Status::NotFound("stream index out of range");
  }
  *out = records_[index];
  return Status::OK();
}

Status MemoryStreamStore::Overwrite(uint64_t index, Slice record) {
  if (index >= records_.size()) {
    return Status::NotFound("stream index out of range");
  }
  records_[index] = record.ToBytes();
  return Status::OK();
}

// ---------------------------------------------------------------------------
// FileStreamStore
// ---------------------------------------------------------------------------

FileStreamStore::FileStreamStore(Env* env, std::string path)
    : env_(env), path_(std::move(path)) {}

FileStreamStore::~FileStreamStore() = default;

Status FileStreamStore::Open(const std::string& path,
                             std::unique_ptr<FileStreamStore>* out) {
  return Open(Env::Default(), path, out);
}

Status FileStreamStore::Open(Env* env, const std::string& path,
                             std::unique_ptr<FileStreamStore>* out) {
  std::unique_ptr<FileStreamStore> store(new FileStreamStore(env, path));
  LEDGERDB_RETURN_IF_ERROR(env->OpenFile(path, &store->file_));
  bool wm_present = env->FileExists(WatermarkPath(path));
  LEDGERDB_RETURN_IF_ERROR(env->OpenFile(WatermarkPath(path), &store->wm_file_));
  uint64_t file_size = 0;
  LEDGERDB_RETURN_IF_ERROR(store->file_->Size(&file_size));

  // Load the durable watermark. An absent or unreadable sidecar degrades
  // to 0 (every frame is treated as potentially torn — lenient), but a
  // valid watermark pointing past the end of the log means acknowledged
  // bytes vanished: hard corruption.
  uint64_t wm = 0;
  bool wm_valid = false;
  if (wm_present) {
    uint64_t wm_size = 0;
    Bytes rec;
    if (store->wm_file_->Size(&wm_size).ok() &&
        wm_size >= kWatermarkRecordSize &&
        store->wm_file_->Read(0, kWatermarkRecordSize, &rec).ok() &&
        Crc32(rec.data(), 8) == DecodeU32(rec.data() + 8)) {
      std::memcpy(&wm, rec.data(), 8);
      wm_valid = true;
    }
  }
  store->report_.watermark_missing = !wm_valid;
  store->report_.watermark = wm;
  if (wm > file_size) {
    return Status::Corruption(
        "stream file shorter than durable watermark (" +
        std::to_string(file_size) + " < " + std::to_string(wm) + "): " + path);
  }

  // Scan frames from the head. Any validation failure stops the scan at
  // `offset`; whether that is recoverable depends on the watermark.
  uint64_t offset = 0;
  std::string damage;
  while (offset < file_size && damage.empty()) {
    if (wm_valid && offset >= wm) {
      // Bytes past the durable watermark were never acknowledged (the
      // crash hit after the data write but before the watermark
      // advanced). They may even parse as valid frames — a torn group
      // write can tear exactly on a frame boundary — so everything past
      // the watermark is dropped, never silently adopted.
      damage = "unacknowledged bytes past durable watermark";
      break;
    }
    if (offset + kFrameHeaderSize > file_size) {
      damage = "partial frame header";
      break;
    }
    Bytes h;
    LEDGERDB_RETURN_IF_ERROR(store->file_->Read(offset, kFrameHeaderSize, &h));
    uint32_t capacity = DecodeU32(h.data());
    uint32_t length = DecodeU32(h.data() + 4);
    uint32_t seq = DecodeU32(h.data() + 8);
    uint32_t payload_crc = DecodeU32(h.data() + 12);
    if (Crc32(h.data(), 16) != DecodeU32(h.data() + 16)) {
      damage = "frame header crc mismatch";
      break;
    }
    if (length > capacity) {
      damage = "frame length exceeds capacity";
      break;
    }
    if (offset + kFrameHeaderSize + capacity > file_size) {
      damage = "frame payload extends past end of file";
      break;
    }
    if (seq != static_cast<uint32_t>(store->offsets_.size())) {
      damage = "frame sequence number mismatch";
      break;
    }
    Bytes payload;
    LEDGERDB_RETURN_IF_ERROR(
        store->file_->Read(offset + kFrameHeaderSize, length, &payload));
    if (Crc32(payload.data(), payload.size()) != payload_crc) {
      damage = "frame payload crc mismatch";
      break;
    }
    store->offsets_.push_back(offset);
    store->lengths_.push_back(length);
    store->capacities_.push_back(capacity);
    store->crcs_.push_back(payload_crc);
    offset += kFrameHeaderSize + capacity;
  }

  if (!damage.empty()) {
    if (offset < wm) {
      return Status::Corruption(
          "mid-stream corruption at offset " + std::to_string(offset) +
          " (below durable watermark " + std::to_string(wm) + "): " + damage +
          ": " + path);
    }
    // Torn tail from a crash mid-append: move the damaged bytes aside for
    // post-mortem inspection, then truncate the log back to the last valid
    // frame boundary.
    Bytes tail;
    LEDGERDB_RETURN_IF_ERROR(store->file_->Read(offset, file_size - offset,
                                                &tail));
    std::unique_ptr<File> quarantine;
    LEDGERDB_RETURN_IF_ERROR(env->OpenFile(QuarantinePath(path), &quarantine));
    LEDGERDB_RETURN_IF_ERROR(quarantine->Truncate(0));
    LEDGERDB_RETURN_IF_ERROR(quarantine->Write(0, Slice(tail)));
    LEDGERDB_RETURN_IF_ERROR(quarantine->Sync());
    LEDGERDB_RETURN_IF_ERROR(store->file_->Truncate(offset));
    LEDGERDB_RETURN_IF_ERROR(store->file_->Sync());
    store->report_.tail_quarantined = true;
    store->report_.quarantined_bytes = tail.size();
    LEDGERDB_OBS_COUNT(obs::names::kStorageTornTailsTotal);
    LEDGERDB_OBS_COUNT_N(obs::names::kStorageQuarantinedBytesTotal,
                         tail.size());
  }

  store->end_offset_ = offset;
  store->watermark_ = offset;
  store->report_.frames = store->offsets_.size();
  LEDGERDB_OBS_COUNT_N(obs::names::kStorageRecoveredFramesTotal,
                       store->offsets_.size());
  LEDGERDB_RETURN_IF_ERROR(store->PersistWatermark());
  *out = std::move(store);
  return Status::OK();
}

Status FileStreamStore::PersistWatermark() {
  uint8_t rec[kWatermarkRecordSize];
  std::memcpy(rec, &watermark_, 8);
  uint32_t crc = Crc32(rec, 8);
  std::memcpy(rec + 8, &crc, 4);
  LEDGERDB_RETURN_IF_ERROR(RetryTransient(retry_, [&] {
    return wm_file_->Write(0, Slice(rec, kWatermarkRecordSize));
  }));
  return RetryTransient(retry_, [&] {
    LEDGERDB_OBS_COUNT(obs::names::kStorageFsyncsTotal);
    return wm_file_->Sync();
  });
}

Status FileStreamStore::Append(Slice record, uint64_t* index) {
  LEDGERDB_OBS_TIMER(append_timer, obs::names::kStorageAppendUs);
  LEDGERDB_OBS_COUNT(obs::names::kStorageAppendsTotal);
  LEDGERDB_OBS_COUNT_N(obs::names::kStorageAppendBytesTotal, record.size());
  uint32_t length = static_cast<uint32_t>(record.size());
  uint32_t seq = static_cast<uint32_t>(offsets_.size());
  uint32_t payload_crc = Crc32(record.data(), record.size());
  Bytes frame(kFrameHeaderSize + record.size());
  EncodeFrameHeader(frame.data(), /*capacity=*/length, length, seq,
                    payload_crc);
  if (length > 0) {
    std::memcpy(frame.data() + kFrameHeaderSize, record.data(), record.size());
  }
  uint64_t offset = end_offset_;
  LEDGERDB_RETURN_IF_ERROR(RetryTransient(
      retry_, [&] { return file_->Write(offset, Slice(frame)); }));
  LEDGERDB_RETURN_IF_ERROR(RetryTransient(retry_, [&] {
    LEDGERDB_OBS_COUNT(obs::names::kStorageFsyncsTotal);
    return file_->Sync();
  }));
  offsets_.push_back(offset);
  lengths_.push_back(length);
  capacities_.push_back(length);
  crcs_.push_back(payload_crc);
  end_offset_ = offset + frame.size();
  watermark_ = end_offset_;
  LEDGERDB_RETURN_IF_ERROR(PersistWatermark());
  *index = seq;
  return Status::OK();
}

Status FileStreamStore::AppendBatch(const std::vector<Slice>& records,
                                    uint64_t* first_index) {
  if (records.empty()) {
    *first_index = offsets_.size();
    return Status::OK();
  }
  LEDGERDB_OBS_TIMER(flush_timer, obs::names::kStorageGroupCommitFlushUs);
  LEDGERDB_OBS_OBSERVE(obs::names::kStorageGroupCommitSizeCount,
                       records.size());
  LEDGERDB_OBS_COUNT_N(obs::names::kStorageAppendsTotal, records.size());

  // Encode every frame into one contiguous buffer at its final offset.
  size_t total = 0;
  for (const Slice& record : records) {
    total += kFrameHeaderSize + record.size();
    LEDGERDB_OBS_COUNT_N(obs::names::kStorageAppendBytesTotal, record.size());
  }
  Bytes group(total);
  uint32_t seq = static_cast<uint32_t>(offsets_.size());
  size_t pos = 0;
  std::vector<uint32_t> group_crcs;
  group_crcs.reserve(records.size());
  for (const Slice& record : records) {
    uint32_t length = static_cast<uint32_t>(record.size());
    group_crcs.push_back(Crc32(record.data(), record.size()));
    EncodeFrameHeader(group.data() + pos, /*capacity=*/length, length,
                      seq++, group_crcs.back());
    if (length > 0) {
      std::memcpy(group.data() + pos + kFrameHeaderSize, record.data(),
                  record.size());
    }
    pos += kFrameHeaderSize + length;
  }

  // One write, one data sync for the whole group. Nothing is indexed (and
  // nothing acknowledged) until both land, so a crash anywhere in here
  // leaves the durable watermark at the pre-group offset and reopen
  // quarantines whatever prefix of the group made it to disk.
  uint64_t offset = end_offset_;
  LEDGERDB_RETURN_IF_ERROR(RetryTransient(
      retry_, [&] { return file_->Write(offset, Slice(group)); }));
  LEDGERDB_RETURN_IF_ERROR(RetryTransient(retry_, [&] {
    LEDGERDB_OBS_COUNT(obs::names::kStorageFsyncsTotal);
    return file_->Sync();
  }));
  *first_index = offsets_.size();
  for (size_t i = 0; i < records.size(); ++i) {
    uint32_t length = static_cast<uint32_t>(records[i].size());
    offsets_.push_back(offset);
    lengths_.push_back(length);
    capacities_.push_back(length);
    crcs_.push_back(group_crcs[i]);
    offset += kFrameHeaderSize + length;
  }
  end_offset_ = offset;
  watermark_ = end_offset_;
  return PersistWatermark();
}

Status FileStreamStore::Read(uint64_t index, Bytes* out) const {
  if (index >= offsets_.size()) {
    return Status::NotFound("stream index out of range");
  }
  Bytes h;
  LEDGERDB_RETURN_IF_ERROR(file_->Read(offsets_[index], kFrameHeaderSize, &h));
  if (Crc32(h.data(), 16) != DecodeU32(h.data() + 16)) {
    return Status::Corruption("stream frame header crc mismatch");
  }
  uint32_t capacity = DecodeU32(h.data());
  uint32_t length = DecodeU32(h.data() + 4);
  uint32_t seq = DecodeU32(h.data() + 8);
  uint32_t payload_crc = DecodeU32(h.data() + 12);
  if (seq != static_cast<uint32_t>(index)) {
    return Status::Corruption("stream frame sequence mismatch");
  }
  if (length > capacity) {
    return Status::Corruption("stream frame length exceeds capacity");
  }
  LEDGERDB_RETURN_IF_ERROR(
      file_->Read(offsets_[index] + kFrameHeaderSize, length, out));
  if (Crc32(out->data(), out->size()) != payload_crc) {
    return Status::Corruption("stream frame crc mismatch");
  }
  return Status::OK();
}

Status FileStreamStore::Overwrite(uint64_t index, Slice record) {
  if (index >= offsets_.size()) {
    return Status::NotFound("stream index out of range");
  }
  // Capacity = the frame's original payload size, fixed at append time.
  uint32_t capacity = capacities_[index];
  if (record.size() > capacity) {
    return Status::NotSupported("overwrite larger than original frame");
  }
  uint32_t length = static_cast<uint32_t>(record.size());
  uint32_t payload_crc = Crc32(record.data(), record.size());
  Bytes frame(kFrameHeaderSize + record.size());
  EncodeFrameHeader(frame.data(), capacity, length,
                    static_cast<uint32_t>(index), payload_crc);
  if (length > 0) {
    std::memcpy(frame.data() + kFrameHeaderSize, record.data(), record.size());
  }
  LEDGERDB_OBS_COUNT(obs::names::kStorageOverwritesTotal);
  LEDGERDB_RETURN_IF_ERROR(RetryTransient(
      retry_, [&] { return file_->Write(offsets_[index], Slice(frame)); }));
  LEDGERDB_RETURN_IF_ERROR(RetryTransient(retry_, [&] {
    LEDGERDB_OBS_COUNT(obs::names::kStorageFsyncsTotal);
    return file_->Sync();
  }));
  lengths_[index] = length;
  crcs_[index] = payload_crc;
  return Status::OK();
}

Status FileStreamStore::RecordCrc(uint64_t index, uint32_t* crc) const {
  if (index >= crcs_.size()) {
    return Status::NotFound("stream index out of range");
  }
  *crc = crcs_[index];
  return Status::OK();
}

Status FileStreamStore::Fsck() const {
  uint64_t file_size = 0;
  LEDGERDB_RETURN_IF_ERROR(file_->Size(&file_size));
  if (watermark_ > file_size) {
    return Status::Corruption("stream file shorter than durable watermark");
  }
  if (end_offset_ != file_size) {
    return Status::Corruption("trailing bytes past the last indexed frame");
  }
  for (uint64_t i = 0; i < offsets_.size(); ++i) {
    Bytes h;
    LEDGERDB_RETURN_IF_ERROR(file_->Read(offsets_[i], kFrameHeaderSize, &h));
    if (Crc32(h.data(), 16) != DecodeU32(h.data() + 16)) {
      return Status::Corruption("frame " + std::to_string(i) +
                                ": header crc mismatch");
    }
    uint32_t capacity = DecodeU32(h.data());
    uint32_t length = DecodeU32(h.data() + 4);
    uint32_t seq = DecodeU32(h.data() + 8);
    uint32_t payload_crc = DecodeU32(h.data() + 12);
    if (seq != static_cast<uint32_t>(i)) {
      return Status::Corruption("frame " + std::to_string(i) +
                                ": sequence number mismatch");
    }
    if (capacity != capacities_[i] || length > capacity) {
      return Status::Corruption("frame " + std::to_string(i) +
                                ": geometry mismatch");
    }
    Bytes payload;
    LEDGERDB_RETURN_IF_ERROR(
        file_->Read(offsets_[i] + kFrameHeaderSize, length, &payload));
    if (Crc32(payload.data(), payload.size()) != payload_crc) {
      return Status::Corruption("frame " + std::to_string(i) +
                                ": payload crc mismatch");
    }
  }
  return Status::OK();
}

}  // namespace ledgerdb
