#include "storage/fault_env.h"

#include <algorithm>

#include "obs/metric_names.h"
#include "obs/metrics.h"

namespace ledgerdb {

namespace {
const char* kCrashMsg = "simulated crash";
}  // namespace

/// Handle returned by FaultEnv::OpenFile. All operations route through the
/// env so fault points are numbered globally across files.
class FaultFile : public File {
 public:
  FaultFile(FaultEnv* env, std::shared_ptr<FaultEnv::FileState> state)
      : env_(env), state_(std::move(state)) {}

  Status Read(uint64_t offset, size_t n, Bytes* out) const override {
    return env_->DoRead(state_.get(), offset, n, out);
  }
  Status Write(uint64_t offset, Slice data) override {
    return env_->DoWrite(state_.get(), offset, data);
  }
  Status Sync() override { return env_->DoSync(state_.get()); }
  Status Truncate(uint64_t size) override {
    return env_->DoTruncate(state_.get(), size);
  }
  Status Size(uint64_t* out) const override {
    return env_->DoSize(state_.get(), out);
  }

 private:
  FaultEnv* env_;
  std::shared_ptr<FaultEnv::FileState> state_;
};

FaultEnv::FaultEnv(Env* base, uint64_t seed) : base_(base), rng_(seed) {}

FaultEnv::~FaultEnv() = default;

void FaultEnv::ScheduleFault(uint64_t op, FaultKind kind) {
  std::lock_guard<std::mutex> lock(mu_);
  plan_[op] = kind;
}

uint64_t FaultEnv::ops() const {
  std::lock_guard<std::mutex> lock(mu_);
  return op_counter_;
}

bool FaultEnv::crashed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return crashed_;
}

int FaultEnv::faults_injected() const {
  std::lock_guard<std::mutex> lock(mu_);
  return injected_;
}

Status FaultEnv::OpenFile(const std::string& path,
                          std::unique_ptr<File>* out) {
  std::lock_guard<std::mutex> lock(mu_);
  if (crashed_) return Status::IOError(kCrashMsg);
  auto it = files_.find(path);
  if (it == files_.end()) {
    auto state = std::make_shared<FileState>();
    Status s = base_->OpenFile(path, &state->base);
    if (!s.ok()) return s;
    it = files_.emplace(path, std::move(state)).first;
  }
  *out = std::make_unique<FaultFile>(this, it->second);
  return Status::OK();
}

bool FaultEnv::FileExists(const std::string& path) const {
  return base_->FileExists(path);
}

Status FaultEnv::DeleteFile(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  if (crashed_) return Status::IOError(kCrashMsg);
  files_.erase(path);
  return base_->DeleteFile(path);
}

Status FaultEnv::Rename(const std::string& from, const std::string& to) {
  std::lock_guard<std::mutex> lock(mu_);
  if (crashed_) return Status::IOError(kCrashMsg);
  FaultKind kind;
  if (NextFault(&kind)) {
    switch (kind) {
      case FaultKind::kTransientError:
        return Status::TransientIO("injected transient rename error");
      default:
        // Power cut before the metadata op lands: the old name survives
        // untouched and the source's unsynced bytes roll back as usual.
        CrashLocked();
        return Status::IOError(kCrashMsg);
    }
  }
  Status s = base_->Rename(from, to);
  if (s.ok()) {
    // Re-key undo state so crash rollback still reaches the (still open)
    // base handle under its new name. A displaced destination's old state
    // becomes unreachable, matching POSIX unlink-while-open semantics.
    auto it = files_.find(from);
    if (it != files_.end()) {
      auto state = std::move(it->second);
      files_.erase(it);
      files_[to] = std::move(state);
    } else {
      files_.erase(to);
    }
  }
  return s;
}

namespace {

const char* StorageFaultName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kCrash: return "crash";
    case FaultKind::kTornWrite: return "torn_write";
    case FaultKind::kDroppedSync: return "dropped_sync";
    case FaultKind::kBitFlip: return "bit_flip";
    case FaultKind::kTruncate: return "truncate";
    case FaultKind::kTransientError: return "transient_error";
  }
  return "unknown";
}

}  // namespace

bool FaultEnv::NextFault(FaultKind* kind) {
  auto it = plan_.find(op_counter_);
  ++op_counter_;
  if (it == plan_.end()) return false;
  *kind = it->second;
  plan_.erase(it);
  ++injected_;
  LEDGERDB_OBS_COUNT_LABEL(obs::names::kStorageFaultsInjectedTotal, "kind",
                           StorageFaultName(*kind));
  return true;
}

void FaultEnv::CrashLocked() {
  crashed_ = true;
  for (auto& entry : files_) {
    FileState* st = entry.second.get();
    // Undo in reverse: each record restores the file to its exact state
    // before that write (size first, then the overwritten bytes).
    for (auto rec = st->unsynced.rbegin(); rec != st->unsynced.rend(); ++rec) {
      (void)st->base->Truncate(rec->old_size);
      if (!rec->overwritten.empty()) {
        (void)st->base->Write(rec->offset, Slice(rec->overwritten));
      }
    }
    st->unsynced.clear();
  }
}

Status FaultEnv::DoRead(FileState* st, uint64_t offset, size_t n, Bytes* out) {
  std::lock_guard<std::mutex> lock(mu_);
  if (crashed_) return Status::IOError(kCrashMsg);
  return st->base->Read(offset, n, out);
}

Status FaultEnv::DoSize(FileState* st, uint64_t* out) {
  std::lock_guard<std::mutex> lock(mu_);
  if (crashed_) return Status::IOError(kCrashMsg);
  return st->base->Size(out);
}

Status FaultEnv::DoWrite(FileState* st, uint64_t offset, Slice data) {
  std::lock_guard<std::mutex> lock(mu_);
  if (crashed_) return Status::IOError(kCrashMsg);
  FaultKind kind;
  if (NextFault(&kind)) {
    switch (kind) {
      case FaultKind::kTransientError:
        return Status::TransientIO("injected transient write error");
      case FaultKind::kTornWrite: {
        // Persist a strict prefix with no undo record — those bytes are
        // "on the platter" — then cut power.
        size_t keep = data.empty() ? 0 : rng_.Uniform(data.size());
        if (keep > 0) (void)st->base->Write(offset, Slice(data.data(), keep));
        CrashLocked();
        return Status::IOError("simulated crash (torn write)");
      }
      case FaultKind::kBitFlip: {
        CrashLocked();  // roll back first so the flip hits durable bytes
        uint64_t size = 0;
        if (st->base->Size(&size).ok() && size > 0) {
          uint64_t pos = rng_.Uniform(size);
          Bytes byte;
          if (st->base->Read(pos, 1, &byte).ok()) {
            byte[0] ^= static_cast<uint8_t>(1u << rng_.Uniform(8));
            (void)st->base->Write(pos, Slice(byte));
          }
        }
        return Status::IOError("simulated crash (bit flip)");
      }
      case FaultKind::kTruncate: {
        CrashLocked();
        uint64_t size = 0;
        if (st->base->Size(&size).ok() && size > 0) {
          (void)st->base->Truncate(rng_.Uniform(size));
        }
        return Status::IOError("simulated crash (truncate)");
      }
      case FaultKind::kDroppedSync:
      case FaultKind::kCrash:
        CrashLocked();
        return Status::IOError(kCrashMsg);
    }
  }
  PendingWrite rec;
  rec.offset = offset;
  LEDGERDB_RETURN_IF_ERROR(st->base->Size(&rec.old_size));
  if (offset < rec.old_size) {
    uint64_t overlap = std::min<uint64_t>(data.size(), rec.old_size - offset);
    LEDGERDB_RETURN_IF_ERROR(st->base->Read(offset, overlap, &rec.overwritten));
  }
  Status s = st->base->Write(offset, data);
  if (s.ok()) st->unsynced.push_back(std::move(rec));
  return s;
}

Status FaultEnv::DoSync(FileState* st) {
  std::lock_guard<std::mutex> lock(mu_);
  if (crashed_) return Status::IOError(kCrashMsg);
  FaultKind kind;
  if (NextFault(&kind)) {
    switch (kind) {
      case FaultKind::kTransientError:
        return Status::TransientIO("injected transient sync error");
      case FaultKind::kDroppedSync:
        // Acknowledge the sync, persist nothing: the unsynced writes are
        // rolled back and the power cut lands right after the (lying) ack.
        CrashLocked();
        return Status::OK();
      case FaultKind::kBitFlip: {
        CrashLocked();
        uint64_t size = 0;
        if (st->base->Size(&size).ok() && size > 0) {
          uint64_t pos = rng_.Uniform(size);
          Bytes byte;
          if (st->base->Read(pos, 1, &byte).ok()) {
            byte[0] ^= static_cast<uint8_t>(1u << rng_.Uniform(8));
            (void)st->base->Write(pos, Slice(byte));
          }
        }
        return Status::IOError("simulated crash (bit flip)");
      }
      case FaultKind::kTruncate: {
        CrashLocked();
        uint64_t size = 0;
        if (st->base->Size(&size).ok() && size > 0) {
          (void)st->base->Truncate(rng_.Uniform(size));
        }
        return Status::IOError("simulated crash (truncate)");
      }
      case FaultKind::kTornWrite:  // no write to tear at a sync point
      case FaultKind::kCrash:
        CrashLocked();
        return Status::IOError(kCrashMsg);
    }
  }
  Status s = st->base->Sync();
  if (s.ok()) st->unsynced.clear();
  return s;
}

Status FaultEnv::DoTruncate(FileState* st, uint64_t size) {
  std::lock_guard<std::mutex> lock(mu_);
  if (crashed_) return Status::IOError(kCrashMsg);
  FaultKind kind;
  if (NextFault(&kind)) {
    switch (kind) {
      case FaultKind::kTransientError:
        return Status::TransientIO("injected transient truncate error");
      default:
        CrashLocked();
        return Status::IOError(kCrashMsg);
    }
  }
  // Undo for a shrink is the chopped tail; for an extension it is the old
  // size (rollback truncates the zero-fill away again).
  PendingWrite rec;
  LEDGERDB_RETURN_IF_ERROR(st->base->Size(&rec.old_size));
  rec.offset = size;
  if (size < rec.old_size) {
    LEDGERDB_RETURN_IF_ERROR(
        st->base->Read(size, rec.old_size - size, &rec.overwritten));
  }
  Status s = st->base->Truncate(size);
  if (s.ok()) st->unsynced.push_back(std::move(rec));
  return s;
}

}  // namespace ledgerdb
