#include "storage/bitmap_index.h"

namespace ledgerdb {

void BitmapIndex::Resize(uint64_t bits) {
  if (bits <= bits_) return;
  bits_ = bits;
  words_.resize((bits + 63) / 64, 0);
}

void BitmapIndex::Set(uint64_t pos) {
  if (pos >= bits_) Resize(pos + 1);
  words_[pos / 64] |= 1ULL << (pos % 64);
}

void BitmapIndex::Clear(uint64_t pos) {
  if (pos >= bits_) return;
  words_[pos / 64] &= ~(1ULL << (pos % 64));
}

bool BitmapIndex::Get(uint64_t pos) const {
  if (pos >= bits_) return false;
  return (words_[pos / 64] >> (pos % 64)) & 1;
}

uint64_t BitmapIndex::Count() const {
  uint64_t total = 0;
  for (uint64_t word : words_) total += __builtin_popcountll(word);
  return total;
}

uint64_t BitmapIndex::CountRange(uint64_t begin, uint64_t end) const {
  if (end > bits_) end = bits_;
  uint64_t total = 0;
  for (uint64_t pos = begin; pos < end;) {
    if (pos % 64 == 0 && pos + 64 <= end) {
      total += __builtin_popcountll(words_[pos / 64]);
      pos += 64;
    } else {
      total += Get(pos) ? 1 : 0;
      ++pos;
    }
  }
  return total;
}

std::vector<uint64_t> BitmapIndex::SetBits(uint64_t begin, uint64_t end) const {
  if (end > bits_) end = bits_;
  std::vector<uint64_t> out;
  for (uint64_t pos = NextSetBit(begin); pos < end; pos = NextSetBit(pos + 1)) {
    out.push_back(pos);
  }
  return out;
}

uint64_t BitmapIndex::NextSetBit(uint64_t pos) const {
  if (pos >= bits_) return bits_;
  uint64_t word_index = pos / 64;
  uint64_t word = words_[word_index] >> (pos % 64);
  if (word != 0) {
    return pos + __builtin_ctzll(word);
  }
  for (++word_index; word_index < words_.size(); ++word_index) {
    if (words_[word_index] != 0) {
      return word_index * 64 + __builtin_ctzll(words_[word_index]);
    }
  }
  return bits_;
}

}  // namespace ledgerdb
