#include "storage/clue_skiplist.h"

namespace ledgerdb {

ClueSkipList::ClueSkipList(uint64_t seed)
    : head_(std::make_unique<Node>("", kMaxHeight)), rng_(seed) {}

int ClueSkipList::RandomHeight() {
  // Geometric distribution with p = 1/4 (LevelDB's branching choice).
  int height = 1;
  while (height < kMaxHeight && rng_.Uniform(4) == 0) ++height;
  return height;
}

ClueSkipList::Node* ClueSkipList::FindGreaterOrEqual(
    const std::string& key, Node* prev[kMaxHeight]) const {
  Node* node = head_.get();
  for (int level = height_ - 1; level >= 0; --level) {
    while (node->next[level] != nullptr && node->next[level]->key < key) {
      node = node->next[level];
    }
    if (prev != nullptr) prev[level] = node;
  }
  return node->next[0];
}

void ClueSkipList::Append(const std::string& clue, uint64_t jsn) {
  Node* prev[kMaxHeight];
  for (int i = 0; i < kMaxHeight; ++i) prev[i] = head_.get();
  Node* found = FindGreaterOrEqual(clue, prev);
  if (found != nullptr && found->key == clue) {
    found->jsns.push_back(jsn);  // O(1) tail append — the write-optimized path
    return;
  }
  int height = RandomHeight();
  if (height > height_) height_ = height;
  auto node = std::make_unique<Node>(clue, height);
  node->jsns.push_back(jsn);
  for (int level = 0; level < height; ++level) {
    node->next[level] = prev[level]->next[level];
    prev[level]->next[level] = node.get();
  }
  nodes_.push_back(std::move(node));
  ++size_;
}

const std::vector<uint64_t>* ClueSkipList::Find(const std::string& clue) const {
  Node* node = FindGreaterOrEqual(clue, nullptr);
  if (node != nullptr && node->key == clue) return &node->jsns;
  return nullptr;
}

std::vector<std::pair<std::string, const std::vector<uint64_t>*>>
ClueSkipList::Scan(const std::string& from, const std::string& to) const {
  std::vector<std::pair<std::string, const std::vector<uint64_t>*>> out;
  Node* node = FindGreaterOrEqual(from, nullptr);
  while (node != nullptr && node->key < to) {
    out.emplace_back(node->key, &node->jsns);
    node = node->next[0];
  }
  return out;
}

std::vector<std::string> ClueSkipList::Keys() const {
  std::vector<std::string> out;
  out.reserve(size_);
  for (Node* node = head_->next[0]; node != nullptr; node = node->next[0]) {
    out.push_back(node->key);
  }
  return out;
}

}  // namespace ledgerdb
