#ifndef LEDGERDB_STORAGE_ENV_H_
#define LEDGERDB_STORAGE_ENV_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "common/bytes.h"
#include "common/status.h"

namespace ledgerdb {

/// Random-access file handle. All offsets are absolute; writes past the
/// current end extend the file. Durability is explicit: bytes written are
/// only guaranteed to survive a crash after a successful Sync().
class File {
 public:
  virtual ~File() = default;

  /// Reads exactly `n` bytes at `offset` into `out` (resized to `n`).
  /// Short reads are IOError, not a partial result.
  virtual Status Read(uint64_t offset, size_t n, Bytes* out) const = 0;

  /// Writes `data` at `offset`, extending the file if needed.
  virtual Status Write(uint64_t offset, Slice data) = 0;

  /// Flushes all buffered writes to durable storage.
  virtual Status Sync() = 0;

  /// Shrinks (or zero-extends) the file to exactly `size` bytes.
  virtual Status Truncate(uint64_t size) = 0;

  /// Current file size in bytes.
  virtual Status Size(uint64_t* out) const = 0;
};

/// Filesystem abstraction: the seam through which every durable byte in
/// the system flows. Production code uses Env::Default() (stdio + fsync);
/// tests substitute MemEnv or FaultEnv to run the identical storage code
/// against an in-memory image or a deterministic fault schedule.
class Env {
 public:
  virtual ~Env() = default;

  /// Opens `path` for read/write, creating it (empty) if absent.
  virtual Status OpenFile(const std::string& path,
                          std::unique_ptr<File>* out) = 0;

  virtual bool FileExists(const std::string& path) const = 0;

  virtual Status DeleteFile(const std::string& path) = 0;

  /// Atomically replaces `to` with `from` (rename(2) semantics): after a
  /// successful return, `to` has `from`'s contents and `from` is gone; a
  /// crash leaves either the old or the new `to`, never a mix. The
  /// persist-before-publish primitive checkpoint publication builds on.
  virtual Status Rename(const std::string& from, const std::string& to) = 0;

  /// Process-wide stdio-backed environment.
  static Env* Default();
};

/// Maps an errno from a failed filesystem call to the retry taxonomy:
/// interruptions and momentary resource exhaustion (EINTR, EAGAIN, EBUSY,
/// ENOMEM, ENOSPC-free transients) come back as TransientIO so
/// RetryTransient absorbs them — the same contract stream appends already
/// get — while everything else stays a terminal IOError.
Status StatusFromErrno(int err, const std::string& what);

/// Backing storage for one MemEnv file, shared by every open handle on the
/// same path so close/reopen observes previously written bytes.
struct MemFileData {
  std::mutex mu;
  Bytes bytes;
};

/// In-memory environment. File contents live in a map owned by the Env, so
/// closing and reopening a path observes previously written bytes — the
/// property crash-recovery tests depend on. Not durable across processes.
class MemEnv : public Env {
 public:
  Status OpenFile(const std::string& path,
                  std::unique_ptr<File>* out) override;
  bool FileExists(const std::string& path) const override;
  Status DeleteFile(const std::string& path) override;
  Status Rename(const std::string& from, const std::string& to) override;

 private:
  mutable std::mutex mu_;
  std::unordered_map<std::string, std::shared_ptr<MemFileData>> files_;
};

}  // namespace ledgerdb

#endif  // LEDGERDB_STORAGE_ENV_H_
