file(REMOVE_RECURSE
  "CMakeFiles/copyright_lineage.dir/copyright_lineage.cpp.o"
  "CMakeFiles/copyright_lineage.dir/copyright_lineage.cpp.o.d"
  "copyright_lineage"
  "copyright_lineage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/copyright_lineage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
