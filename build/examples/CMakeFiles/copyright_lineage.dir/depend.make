# Empty dependencies file for copyright_lineage.
# This may be replaced when dependencies are built.
