# Empty dependencies file for notarization_service.
# This may be replaced when dependencies are built.
