file(REMOVE_RECURSE
  "CMakeFiles/notarization_service.dir/notarization_service.cpp.o"
  "CMakeFiles/notarization_service.dir/notarization_service.cpp.o.d"
  "notarization_service"
  "notarization_service.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/notarization_service.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
