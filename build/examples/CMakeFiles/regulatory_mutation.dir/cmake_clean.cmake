file(REMOVE_RECURSE
  "CMakeFiles/regulatory_mutation.dir/regulatory_mutation.cpp.o"
  "CMakeFiles/regulatory_mutation.dir/regulatory_mutation.cpp.o.d"
  "regulatory_mutation"
  "regulatory_mutation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/regulatory_mutation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
