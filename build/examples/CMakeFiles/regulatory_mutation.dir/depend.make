# Empty dependencies file for regulatory_mutation.
# This may be replaced when dependencies are built.
