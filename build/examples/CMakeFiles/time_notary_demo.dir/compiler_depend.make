# Empty compiler generated dependencies file for time_notary_demo.
# This may be replaced when dependencies are built.
