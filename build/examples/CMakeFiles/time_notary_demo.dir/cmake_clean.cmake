file(REMOVE_RECURSE
  "CMakeFiles/time_notary_demo.dir/time_notary_demo.cpp.o"
  "CMakeFiles/time_notary_demo.dir/time_notary_demo.cpp.o.d"
  "time_notary_demo"
  "time_notary_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/time_notary_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
