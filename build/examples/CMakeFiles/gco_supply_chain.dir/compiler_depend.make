# Empty compiler generated dependencies file for gco_supply_chain.
# This may be replaced when dependencies are built.
