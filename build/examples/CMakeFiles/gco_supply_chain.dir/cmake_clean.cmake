file(REMOVE_RECURSE
  "CMakeFiles/gco_supply_chain.dir/gco_supply_chain.cpp.o"
  "CMakeFiles/gco_supply_chain.dir/gco_supply_chain.cpp.o.d"
  "gco_supply_chain"
  "gco_supply_chain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gco_supply_chain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
