file(REMOVE_RECURSE
  "CMakeFiles/bench_capabilities.dir/bench_capabilities.cpp.o"
  "CMakeFiles/bench_capabilities.dir/bench_capabilities.cpp.o.d"
  "bench_capabilities"
  "bench_capabilities.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_capabilities.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
