# Empty compiler generated dependencies file for bench_capabilities.
# This may be replaced when dependencies are built.
