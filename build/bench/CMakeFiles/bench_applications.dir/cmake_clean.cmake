file(REMOVE_RECURSE
  "CMakeFiles/bench_applications.dir/bench_applications.cpp.o"
  "CMakeFiles/bench_applications.dir/bench_applications.cpp.o.d"
  "bench_applications"
  "bench_applications.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_applications.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
