# Empty compiler generated dependencies file for bench_applications.
# This may be replaced when dependencies are built.
