
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_cmtree.cpp" "bench/CMakeFiles/bench_cmtree.dir/bench_cmtree.cpp.o" "gcc" "bench/CMakeFiles/bench_cmtree.dir/bench_cmtree.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ledger/CMakeFiles/ledgerdb_ledger.dir/DependInfo.cmake"
  "/root/repo/build/src/audit/CMakeFiles/ledgerdb_audit.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/ledgerdb_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/cmtree/CMakeFiles/ledgerdb_cmtree.dir/DependInfo.cmake"
  "/root/repo/build/src/mpt/CMakeFiles/ledgerdb_mpt.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/ledgerdb_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/timestamp/CMakeFiles/ledgerdb_timestamp.dir/DependInfo.cmake"
  "/root/repo/build/src/accum/CMakeFiles/ledgerdb_accum.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/ledgerdb_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ledgerdb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
