file(REMOVE_RECURSE
  "CMakeFiles/bench_cmtree.dir/bench_cmtree.cpp.o"
  "CMakeFiles/bench_cmtree.dir/bench_cmtree.cpp.o.d"
  "bench_cmtree"
  "bench_cmtree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cmtree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
