# Empty compiler generated dependencies file for bench_cmtree.
# This may be replaced when dependencies are built.
