# Empty compiler generated dependencies file for bench_time_attacks.
# This may be replaced when dependencies are built.
