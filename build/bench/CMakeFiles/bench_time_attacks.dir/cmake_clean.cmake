file(REMOVE_RECURSE
  "CMakeFiles/bench_time_attacks.dir/bench_time_attacks.cpp.o"
  "CMakeFiles/bench_time_attacks.dir/bench_time_attacks.cpp.o.d"
  "bench_time_attacks"
  "bench_time_attacks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_time_attacks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
