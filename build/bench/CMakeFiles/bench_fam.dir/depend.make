# Empty dependencies file for bench_fam.
# This may be replaced when dependencies are built.
