file(REMOVE_RECURSE
  "CMakeFiles/bench_fam.dir/bench_fam.cpp.o"
  "CMakeFiles/bench_fam.dir/bench_fam.cpp.o.d"
  "bench_fam"
  "bench_fam.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fam.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
