file(REMOVE_RECURSE
  "CMakeFiles/bench_dasein.dir/bench_dasein.cpp.o"
  "CMakeFiles/bench_dasein.dir/bench_dasein.cpp.o.d"
  "bench_dasein"
  "bench_dasein.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dasein.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
