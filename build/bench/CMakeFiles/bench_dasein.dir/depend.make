# Empty dependencies file for bench_dasein.
# This may be replaced when dependencies are built.
