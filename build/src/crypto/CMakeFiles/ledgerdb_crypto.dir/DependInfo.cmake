
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/crypto/ecdsa.cc" "src/crypto/CMakeFiles/ledgerdb_crypto.dir/ecdsa.cc.o" "gcc" "src/crypto/CMakeFiles/ledgerdb_crypto.dir/ecdsa.cc.o.d"
  "/root/repo/src/crypto/hash.cc" "src/crypto/CMakeFiles/ledgerdb_crypto.dir/hash.cc.o" "gcc" "src/crypto/CMakeFiles/ledgerdb_crypto.dir/hash.cc.o.d"
  "/root/repo/src/crypto/secp256k1.cc" "src/crypto/CMakeFiles/ledgerdb_crypto.dir/secp256k1.cc.o" "gcc" "src/crypto/CMakeFiles/ledgerdb_crypto.dir/secp256k1.cc.o.d"
  "/root/repo/src/crypto/u256.cc" "src/crypto/CMakeFiles/ledgerdb_crypto.dir/u256.cc.o" "gcc" "src/crypto/CMakeFiles/ledgerdb_crypto.dir/u256.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ledgerdb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
