file(REMOVE_RECURSE
  "CMakeFiles/ledgerdb_crypto.dir/ecdsa.cc.o"
  "CMakeFiles/ledgerdb_crypto.dir/ecdsa.cc.o.d"
  "CMakeFiles/ledgerdb_crypto.dir/hash.cc.o"
  "CMakeFiles/ledgerdb_crypto.dir/hash.cc.o.d"
  "CMakeFiles/ledgerdb_crypto.dir/secp256k1.cc.o"
  "CMakeFiles/ledgerdb_crypto.dir/secp256k1.cc.o.d"
  "CMakeFiles/ledgerdb_crypto.dir/u256.cc.o"
  "CMakeFiles/ledgerdb_crypto.dir/u256.cc.o.d"
  "libledgerdb_crypto.a"
  "libledgerdb_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ledgerdb_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
