# Empty compiler generated dependencies file for ledgerdb_crypto.
# This may be replaced when dependencies are built.
