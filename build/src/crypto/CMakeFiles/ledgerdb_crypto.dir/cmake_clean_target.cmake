file(REMOVE_RECURSE
  "libledgerdb_crypto.a"
)
