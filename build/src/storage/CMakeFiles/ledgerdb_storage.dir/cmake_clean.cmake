file(REMOVE_RECURSE
  "CMakeFiles/ledgerdb_storage.dir/bitmap_index.cc.o"
  "CMakeFiles/ledgerdb_storage.dir/bitmap_index.cc.o.d"
  "CMakeFiles/ledgerdb_storage.dir/clue_skiplist.cc.o"
  "CMakeFiles/ledgerdb_storage.dir/clue_skiplist.cc.o.d"
  "CMakeFiles/ledgerdb_storage.dir/node_store.cc.o"
  "CMakeFiles/ledgerdb_storage.dir/node_store.cc.o.d"
  "CMakeFiles/ledgerdb_storage.dir/stream_store.cc.o"
  "CMakeFiles/ledgerdb_storage.dir/stream_store.cc.o.d"
  "libledgerdb_storage.a"
  "libledgerdb_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ledgerdb_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
