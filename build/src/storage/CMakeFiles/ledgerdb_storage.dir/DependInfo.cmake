
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/bitmap_index.cc" "src/storage/CMakeFiles/ledgerdb_storage.dir/bitmap_index.cc.o" "gcc" "src/storage/CMakeFiles/ledgerdb_storage.dir/bitmap_index.cc.o.d"
  "/root/repo/src/storage/clue_skiplist.cc" "src/storage/CMakeFiles/ledgerdb_storage.dir/clue_skiplist.cc.o" "gcc" "src/storage/CMakeFiles/ledgerdb_storage.dir/clue_skiplist.cc.o.d"
  "/root/repo/src/storage/node_store.cc" "src/storage/CMakeFiles/ledgerdb_storage.dir/node_store.cc.o" "gcc" "src/storage/CMakeFiles/ledgerdb_storage.dir/node_store.cc.o.d"
  "/root/repo/src/storage/stream_store.cc" "src/storage/CMakeFiles/ledgerdb_storage.dir/stream_store.cc.o" "gcc" "src/storage/CMakeFiles/ledgerdb_storage.dir/stream_store.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ledgerdb_common.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/ledgerdb_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
