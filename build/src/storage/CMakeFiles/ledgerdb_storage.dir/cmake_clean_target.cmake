file(REMOVE_RECURSE
  "libledgerdb_storage.a"
)
