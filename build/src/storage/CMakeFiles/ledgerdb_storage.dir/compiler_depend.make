# Empty compiler generated dependencies file for ledgerdb_storage.
# This may be replaced when dependencies are built.
