
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/accum/bamt.cc" "src/accum/CMakeFiles/ledgerdb_accum.dir/bamt.cc.o" "gcc" "src/accum/CMakeFiles/ledgerdb_accum.dir/bamt.cc.o.d"
  "/root/repo/src/accum/bim.cc" "src/accum/CMakeFiles/ledgerdb_accum.dir/bim.cc.o" "gcc" "src/accum/CMakeFiles/ledgerdb_accum.dir/bim.cc.o.d"
  "/root/repo/src/accum/fam.cc" "src/accum/CMakeFiles/ledgerdb_accum.dir/fam.cc.o" "gcc" "src/accum/CMakeFiles/ledgerdb_accum.dir/fam.cc.o.d"
  "/root/repo/src/accum/naive_merkle.cc" "src/accum/CMakeFiles/ledgerdb_accum.dir/naive_merkle.cc.o" "gcc" "src/accum/CMakeFiles/ledgerdb_accum.dir/naive_merkle.cc.o.d"
  "/root/repo/src/accum/shrubs.cc" "src/accum/CMakeFiles/ledgerdb_accum.dir/shrubs.cc.o" "gcc" "src/accum/CMakeFiles/ledgerdb_accum.dir/shrubs.cc.o.d"
  "/root/repo/src/accum/tim.cc" "src/accum/CMakeFiles/ledgerdb_accum.dir/tim.cc.o" "gcc" "src/accum/CMakeFiles/ledgerdb_accum.dir/tim.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ledgerdb_common.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/ledgerdb_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
