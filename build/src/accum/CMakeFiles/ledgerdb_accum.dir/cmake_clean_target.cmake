file(REMOVE_RECURSE
  "libledgerdb_accum.a"
)
