file(REMOVE_RECURSE
  "CMakeFiles/ledgerdb_accum.dir/bamt.cc.o"
  "CMakeFiles/ledgerdb_accum.dir/bamt.cc.o.d"
  "CMakeFiles/ledgerdb_accum.dir/bim.cc.o"
  "CMakeFiles/ledgerdb_accum.dir/bim.cc.o.d"
  "CMakeFiles/ledgerdb_accum.dir/fam.cc.o"
  "CMakeFiles/ledgerdb_accum.dir/fam.cc.o.d"
  "CMakeFiles/ledgerdb_accum.dir/naive_merkle.cc.o"
  "CMakeFiles/ledgerdb_accum.dir/naive_merkle.cc.o.d"
  "CMakeFiles/ledgerdb_accum.dir/shrubs.cc.o"
  "CMakeFiles/ledgerdb_accum.dir/shrubs.cc.o.d"
  "CMakeFiles/ledgerdb_accum.dir/tim.cc.o"
  "CMakeFiles/ledgerdb_accum.dir/tim.cc.o.d"
  "libledgerdb_accum.a"
  "libledgerdb_accum.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ledgerdb_accum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
