# Empty compiler generated dependencies file for ledgerdb_accum.
# This may be replaced when dependencies are built.
