file(REMOVE_RECURSE
  "libledgerdb_timestamp.a"
)
