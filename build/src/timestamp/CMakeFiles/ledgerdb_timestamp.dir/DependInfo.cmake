
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/timestamp/attacks.cc" "src/timestamp/CMakeFiles/ledgerdb_timestamp.dir/attacks.cc.o" "gcc" "src/timestamp/CMakeFiles/ledgerdb_timestamp.dir/attacks.cc.o.d"
  "/root/repo/src/timestamp/pegging.cc" "src/timestamp/CMakeFiles/ledgerdb_timestamp.dir/pegging.cc.o" "gcc" "src/timestamp/CMakeFiles/ledgerdb_timestamp.dir/pegging.cc.o.d"
  "/root/repo/src/timestamp/t_ledger.cc" "src/timestamp/CMakeFiles/ledgerdb_timestamp.dir/t_ledger.cc.o" "gcc" "src/timestamp/CMakeFiles/ledgerdb_timestamp.dir/t_ledger.cc.o.d"
  "/root/repo/src/timestamp/tsa.cc" "src/timestamp/CMakeFiles/ledgerdb_timestamp.dir/tsa.cc.o" "gcc" "src/timestamp/CMakeFiles/ledgerdb_timestamp.dir/tsa.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ledgerdb_common.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/ledgerdb_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/accum/CMakeFiles/ledgerdb_accum.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
