# Empty dependencies file for ledgerdb_timestamp.
# This may be replaced when dependencies are built.
