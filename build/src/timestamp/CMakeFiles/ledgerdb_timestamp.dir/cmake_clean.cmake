file(REMOVE_RECURSE
  "CMakeFiles/ledgerdb_timestamp.dir/attacks.cc.o"
  "CMakeFiles/ledgerdb_timestamp.dir/attacks.cc.o.d"
  "CMakeFiles/ledgerdb_timestamp.dir/pegging.cc.o"
  "CMakeFiles/ledgerdb_timestamp.dir/pegging.cc.o.d"
  "CMakeFiles/ledgerdb_timestamp.dir/t_ledger.cc.o"
  "CMakeFiles/ledgerdb_timestamp.dir/t_ledger.cc.o.d"
  "CMakeFiles/ledgerdb_timestamp.dir/tsa.cc.o"
  "CMakeFiles/ledgerdb_timestamp.dir/tsa.cc.o.d"
  "libledgerdb_timestamp.a"
  "libledgerdb_timestamp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ledgerdb_timestamp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
