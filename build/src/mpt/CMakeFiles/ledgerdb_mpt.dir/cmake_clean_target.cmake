file(REMOVE_RECURSE
  "libledgerdb_mpt.a"
)
