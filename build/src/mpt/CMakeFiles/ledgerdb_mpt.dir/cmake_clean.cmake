file(REMOVE_RECURSE
  "CMakeFiles/ledgerdb_mpt.dir/mpt.cc.o"
  "CMakeFiles/ledgerdb_mpt.dir/mpt.cc.o.d"
  "libledgerdb_mpt.a"
  "libledgerdb_mpt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ledgerdb_mpt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
