# Empty dependencies file for ledgerdb_mpt.
# This may be replaced when dependencies are built.
