# Empty dependencies file for ledgerdb_baselines.
# This may be replaced when dependencies are built.
