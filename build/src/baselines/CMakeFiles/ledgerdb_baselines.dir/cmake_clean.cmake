file(REMOVE_RECURSE
  "CMakeFiles/ledgerdb_baselines.dir/fabric_sim.cc.o"
  "CMakeFiles/ledgerdb_baselines.dir/fabric_sim.cc.o.d"
  "CMakeFiles/ledgerdb_baselines.dir/qldb_sim.cc.o"
  "CMakeFiles/ledgerdb_baselines.dir/qldb_sim.cc.o.d"
  "libledgerdb_baselines.a"
  "libledgerdb_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ledgerdb_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
