file(REMOVE_RECURSE
  "libledgerdb_baselines.a"
)
