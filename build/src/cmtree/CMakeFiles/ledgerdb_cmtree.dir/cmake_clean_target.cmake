file(REMOVE_RECURSE
  "libledgerdb_cmtree.a"
)
