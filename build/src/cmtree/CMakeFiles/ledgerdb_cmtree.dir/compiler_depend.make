# Empty compiler generated dependencies file for ledgerdb_cmtree.
# This may be replaced when dependencies are built.
