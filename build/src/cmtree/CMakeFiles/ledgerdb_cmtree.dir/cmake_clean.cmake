file(REMOVE_RECURSE
  "CMakeFiles/ledgerdb_cmtree.dir/cc_mpt.cc.o"
  "CMakeFiles/ledgerdb_cmtree.dir/cc_mpt.cc.o.d"
  "CMakeFiles/ledgerdb_cmtree.dir/cm_tree.cc.o"
  "CMakeFiles/ledgerdb_cmtree.dir/cm_tree.cc.o.d"
  "libledgerdb_cmtree.a"
  "libledgerdb_cmtree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ledgerdb_cmtree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
