# Empty dependencies file for ledgerdb_client.
# This may be replaced when dependencies are built.
