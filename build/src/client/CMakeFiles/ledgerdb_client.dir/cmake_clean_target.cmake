file(REMOVE_RECURSE
  "libledgerdb_client.a"
)
