file(REMOVE_RECURSE
  "CMakeFiles/ledgerdb_client.dir/ledger_client.cc.o"
  "CMakeFiles/ledgerdb_client.dir/ledger_client.cc.o.d"
  "libledgerdb_client.a"
  "libledgerdb_client.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ledgerdb_client.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
