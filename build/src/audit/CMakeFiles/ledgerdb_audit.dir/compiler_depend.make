# Empty compiler generated dependencies file for ledgerdb_audit.
# This may be replaced when dependencies are built.
