file(REMOVE_RECURSE
  "libledgerdb_audit.a"
)
