file(REMOVE_RECURSE
  "CMakeFiles/ledgerdb_audit.dir/dasein_auditor.cc.o"
  "CMakeFiles/ledgerdb_audit.dir/dasein_auditor.cc.o.d"
  "libledgerdb_audit.a"
  "libledgerdb_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ledgerdb_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
