file(REMOVE_RECURSE
  "CMakeFiles/ledgerdb_common.dir/bytes.cc.o"
  "CMakeFiles/ledgerdb_common.dir/bytes.cc.o.d"
  "CMakeFiles/ledgerdb_common.dir/clock.cc.o"
  "CMakeFiles/ledgerdb_common.dir/clock.cc.o.d"
  "CMakeFiles/ledgerdb_common.dir/random.cc.o"
  "CMakeFiles/ledgerdb_common.dir/random.cc.o.d"
  "CMakeFiles/ledgerdb_common.dir/status.cc.o"
  "CMakeFiles/ledgerdb_common.dir/status.cc.o.d"
  "libledgerdb_common.a"
  "libledgerdb_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ledgerdb_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
