file(REMOVE_RECURSE
  "libledgerdb_common.a"
)
