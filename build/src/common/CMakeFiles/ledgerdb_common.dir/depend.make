# Empty dependencies file for ledgerdb_common.
# This may be replaced when dependencies are built.
