file(REMOVE_RECURSE
  "CMakeFiles/ledgerdb_ledger.dir/block.cc.o"
  "CMakeFiles/ledgerdb_ledger.dir/block.cc.o.d"
  "CMakeFiles/ledgerdb_ledger.dir/journal.cc.o"
  "CMakeFiles/ledgerdb_ledger.dir/journal.cc.o.d"
  "CMakeFiles/ledgerdb_ledger.dir/ledger.cc.o"
  "CMakeFiles/ledgerdb_ledger.dir/ledger.cc.o.d"
  "CMakeFiles/ledgerdb_ledger.dir/members.cc.o"
  "CMakeFiles/ledgerdb_ledger.dir/members.cc.o.d"
  "CMakeFiles/ledgerdb_ledger.dir/receipt.cc.o"
  "CMakeFiles/ledgerdb_ledger.dir/receipt.cc.o.d"
  "CMakeFiles/ledgerdb_ledger.dir/service.cc.o"
  "CMakeFiles/ledgerdb_ledger.dir/service.cc.o.d"
  "CMakeFiles/ledgerdb_ledger.dir/sharded.cc.o"
  "CMakeFiles/ledgerdb_ledger.dir/sharded.cc.o.d"
  "CMakeFiles/ledgerdb_ledger.dir/world_state.cc.o"
  "CMakeFiles/ledgerdb_ledger.dir/world_state.cc.o.d"
  "libledgerdb_ledger.a"
  "libledgerdb_ledger.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ledgerdb_ledger.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
