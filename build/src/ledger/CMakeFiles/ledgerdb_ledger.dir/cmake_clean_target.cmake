file(REMOVE_RECURSE
  "libledgerdb_ledger.a"
)
