
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ledger/block.cc" "src/ledger/CMakeFiles/ledgerdb_ledger.dir/block.cc.o" "gcc" "src/ledger/CMakeFiles/ledgerdb_ledger.dir/block.cc.o.d"
  "/root/repo/src/ledger/journal.cc" "src/ledger/CMakeFiles/ledgerdb_ledger.dir/journal.cc.o" "gcc" "src/ledger/CMakeFiles/ledgerdb_ledger.dir/journal.cc.o.d"
  "/root/repo/src/ledger/ledger.cc" "src/ledger/CMakeFiles/ledgerdb_ledger.dir/ledger.cc.o" "gcc" "src/ledger/CMakeFiles/ledgerdb_ledger.dir/ledger.cc.o.d"
  "/root/repo/src/ledger/members.cc" "src/ledger/CMakeFiles/ledgerdb_ledger.dir/members.cc.o" "gcc" "src/ledger/CMakeFiles/ledgerdb_ledger.dir/members.cc.o.d"
  "/root/repo/src/ledger/receipt.cc" "src/ledger/CMakeFiles/ledgerdb_ledger.dir/receipt.cc.o" "gcc" "src/ledger/CMakeFiles/ledgerdb_ledger.dir/receipt.cc.o.d"
  "/root/repo/src/ledger/service.cc" "src/ledger/CMakeFiles/ledgerdb_ledger.dir/service.cc.o" "gcc" "src/ledger/CMakeFiles/ledgerdb_ledger.dir/service.cc.o.d"
  "/root/repo/src/ledger/sharded.cc" "src/ledger/CMakeFiles/ledgerdb_ledger.dir/sharded.cc.o" "gcc" "src/ledger/CMakeFiles/ledgerdb_ledger.dir/sharded.cc.o.d"
  "/root/repo/src/ledger/world_state.cc" "src/ledger/CMakeFiles/ledgerdb_ledger.dir/world_state.cc.o" "gcc" "src/ledger/CMakeFiles/ledgerdb_ledger.dir/world_state.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ledgerdb_common.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/ledgerdb_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/ledgerdb_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/accum/CMakeFiles/ledgerdb_accum.dir/DependInfo.cmake"
  "/root/repo/build/src/mpt/CMakeFiles/ledgerdb_mpt.dir/DependInfo.cmake"
  "/root/repo/build/src/cmtree/CMakeFiles/ledgerdb_cmtree.dir/DependInfo.cmake"
  "/root/repo/build/src/timestamp/CMakeFiles/ledgerdb_timestamp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
