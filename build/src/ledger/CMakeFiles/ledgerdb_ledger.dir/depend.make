# Empty dependencies file for ledgerdb_ledger.
# This may be replaced when dependencies are built.
