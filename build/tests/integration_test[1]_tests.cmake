add_test([=[IntegrationTest.FullLifecycleSurvivesEverything]=]  /root/repo/build/tests/integration_test [==[--gtest_filter=IntegrationTest.FullLifecycleSurvivesEverything]==] --gtest_also_run_disabled_tests)
set_tests_properties([=[IntegrationTest.FullLifecycleSurvivesEverything]=]  PROPERTIES WORKING_DIRECTORY /root/repo/build/tests SKIP_REGULAR_EXPRESSION [==[\[  SKIPPED \]]==])
set(  integration_test_TESTS IntegrationTest.FullLifecycleSurvivesEverything)
