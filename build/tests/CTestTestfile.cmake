# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/crypto_test[1]_include.cmake")
include("/root/repo/build/tests/storage_test[1]_include.cmake")
include("/root/repo/build/tests/accum_test[1]_include.cmake")
include("/root/repo/build/tests/mpt_test[1]_include.cmake")
include("/root/repo/build/tests/cmtree_test[1]_include.cmake")
include("/root/repo/build/tests/timestamp_test[1]_include.cmake")
include("/root/repo/build/tests/ledger_test[1]_include.cmake")
include("/root/repo/build/tests/audit_test[1]_include.cmake")
include("/root/repo/build/tests/baselines_test[1]_include.cmake")
include("/root/repo/build/tests/recovery_test[1]_include.cmake")
include("/root/repo/build/tests/ledger_features_test[1]_include.cmake")
include("/root/repo/build/tests/service_test[1]_include.cmake")
include("/root/repo/build/tests/adversarial_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/skiplist_test[1]_include.cmake")
include("/root/repo/build/tests/serialization_test[1]_include.cmake")
include("/root/repo/build/tests/client_test[1]_include.cmake")
include("/root/repo/build/tests/bamt_mpt_edge_test[1]_include.cmake")
include("/root/repo/build/tests/sharded_test[1]_include.cmake")
include("/root/repo/build/tests/state_and_gc_test[1]_include.cmake")
include("/root/repo/build/tests/statemachine_test[1]_include.cmake")
include("/root/repo/build/tests/crypto_vectors_test[1]_include.cmake")
