# Empty compiler generated dependencies file for timestamp_test.
# This may be replaced when dependencies are built.
