file(REMOVE_RECURSE
  "CMakeFiles/timestamp_test.dir/timestamp_test.cc.o"
  "CMakeFiles/timestamp_test.dir/timestamp_test.cc.o.d"
  "timestamp_test"
  "timestamp_test.pdb"
  "timestamp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/timestamp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
