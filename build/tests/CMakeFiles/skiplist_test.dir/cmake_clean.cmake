file(REMOVE_RECURSE
  "CMakeFiles/skiplist_test.dir/skiplist_test.cc.o"
  "CMakeFiles/skiplist_test.dir/skiplist_test.cc.o.d"
  "skiplist_test"
  "skiplist_test.pdb"
  "skiplist_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skiplist_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
