# Empty compiler generated dependencies file for recovery_test.
# This may be replaced when dependencies are built.
