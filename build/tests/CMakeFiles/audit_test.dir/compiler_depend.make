# Empty compiler generated dependencies file for audit_test.
# This may be replaced when dependencies are built.
