# Empty compiler generated dependencies file for bamt_mpt_edge_test.
# This may be replaced when dependencies are built.
