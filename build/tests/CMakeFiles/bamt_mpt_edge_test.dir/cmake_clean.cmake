file(REMOVE_RECURSE
  "CMakeFiles/bamt_mpt_edge_test.dir/bamt_mpt_edge_test.cc.o"
  "CMakeFiles/bamt_mpt_edge_test.dir/bamt_mpt_edge_test.cc.o.d"
  "bamt_mpt_edge_test"
  "bamt_mpt_edge_test.pdb"
  "bamt_mpt_edge_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bamt_mpt_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
