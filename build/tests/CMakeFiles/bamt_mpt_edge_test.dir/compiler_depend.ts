# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for bamt_mpt_edge_test.
