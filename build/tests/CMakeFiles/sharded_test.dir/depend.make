# Empty dependencies file for sharded_test.
# This may be replaced when dependencies are built.
