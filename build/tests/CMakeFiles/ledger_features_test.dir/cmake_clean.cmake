file(REMOVE_RECURSE
  "CMakeFiles/ledger_features_test.dir/ledger_features_test.cc.o"
  "CMakeFiles/ledger_features_test.dir/ledger_features_test.cc.o.d"
  "ledger_features_test"
  "ledger_features_test.pdb"
  "ledger_features_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ledger_features_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
