# Empty compiler generated dependencies file for ledger_features_test.
# This may be replaced when dependencies are built.
