# Empty dependencies file for adversarial_test.
# This may be replaced when dependencies are built.
