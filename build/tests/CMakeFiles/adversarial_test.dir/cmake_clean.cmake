file(REMOVE_RECURSE
  "CMakeFiles/adversarial_test.dir/adversarial_test.cc.o"
  "CMakeFiles/adversarial_test.dir/adversarial_test.cc.o.d"
  "adversarial_test"
  "adversarial_test.pdb"
  "adversarial_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adversarial_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
