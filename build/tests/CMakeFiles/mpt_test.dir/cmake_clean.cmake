file(REMOVE_RECURSE
  "CMakeFiles/mpt_test.dir/mpt_test.cc.o"
  "CMakeFiles/mpt_test.dir/mpt_test.cc.o.d"
  "mpt_test"
  "mpt_test.pdb"
  "mpt_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpt_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
