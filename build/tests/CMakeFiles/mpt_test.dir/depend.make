# Empty dependencies file for mpt_test.
# This may be replaced when dependencies are built.
