# Empty dependencies file for statemachine_test.
# This may be replaced when dependencies are built.
