file(REMOVE_RECURSE
  "CMakeFiles/statemachine_test.dir/statemachine_test.cc.o"
  "CMakeFiles/statemachine_test.dir/statemachine_test.cc.o.d"
  "statemachine_test"
  "statemachine_test.pdb"
  "statemachine_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/statemachine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
