# Empty dependencies file for crypto_vectors_test.
# This may be replaced when dependencies are built.
