file(REMOVE_RECURSE
  "CMakeFiles/crypto_vectors_test.dir/crypto_vectors_test.cc.o"
  "CMakeFiles/crypto_vectors_test.dir/crypto_vectors_test.cc.o.d"
  "crypto_vectors_test"
  "crypto_vectors_test.pdb"
  "crypto_vectors_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crypto_vectors_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
