file(REMOVE_RECURSE
  "CMakeFiles/serialization_test.dir/serialization_test.cc.o"
  "CMakeFiles/serialization_test.dir/serialization_test.cc.o.d"
  "serialization_test"
  "serialization_test.pdb"
  "serialization_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/serialization_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
