# Empty compiler generated dependencies file for state_and_gc_test.
# This may be replaced when dependencies are built.
