file(REMOVE_RECURSE
  "CMakeFiles/state_and_gc_test.dir/state_and_gc_test.cc.o"
  "CMakeFiles/state_and_gc_test.dir/state_and_gc_test.cc.o.d"
  "state_and_gc_test"
  "state_and_gc_test.pdb"
  "state_and_gc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/state_and_gc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
