file(REMOVE_RECURSE
  "CMakeFiles/accum_test.dir/accum_test.cc.o"
  "CMakeFiles/accum_test.dir/accum_test.cc.o.d"
  "accum_test"
  "accum_test.pdb"
  "accum_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/accum_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
