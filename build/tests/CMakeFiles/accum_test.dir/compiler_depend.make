# Empty compiler generated dependencies file for accum_test.
# This may be replaced when dependencies are built.
