# Empty compiler generated dependencies file for cmtree_test.
# This may be replaced when dependencies are built.
