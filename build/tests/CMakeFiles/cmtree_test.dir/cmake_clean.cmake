file(REMOVE_RECURSE
  "CMakeFiles/cmtree_test.dir/cmtree_test.cc.o"
  "CMakeFiles/cmtree_test.dir/cmtree_test.cc.o.d"
  "cmtree_test"
  "cmtree_test.pdb"
  "cmtree_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cmtree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
