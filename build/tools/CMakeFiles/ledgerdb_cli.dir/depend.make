# Empty dependencies file for ledgerdb_cli.
# This may be replaced when dependencies are built.
