file(REMOVE_RECURSE
  "CMakeFiles/ledgerdb_cli.dir/ledgerdb_cli.cc.o"
  "CMakeFiles/ledgerdb_cli.dir/ledgerdb_cli.cc.o.d"
  "ledgerdb_cli"
  "ledgerdb_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ledgerdb_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
