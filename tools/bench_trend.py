#!/usr/bin/env python3
"""Aggregate BENCH_*.json artifacts into a cross-bench trend table.

Every bench binary writes a schema-2 artifact ({"meta": {...}, "results":
[{"name", "ops_per_sec", "p50_us", "p99_us", ...}]}) when run with
`--json BENCH_<bench>.json`. This tool collects every such artifact in a
directory (default: the repo root, i.e. the parent of tools/), groups rows
by "<bench>/<row name>", and prints one line per row with throughput and
tail latency — including the optional additive keys (p999_us, shed_rate)
newer benches emit. With more than one artifact per bench name (e.g. a
directory of dated runs via --glob), each row shows first → last values
and the percent change, so regressions stand out without extra tooling.

Usage:
  tools/bench_trend.py                    # all BENCH_*.json next to repo root
  tools/bench_trend.py --dir path/        # another artifact directory
  tools/bench_trend.py --glob 'runs/**/BENCH_*.json'   # dated run trees
  tools/bench_trend.py --format tsv       # machine-readable output

Stdlib only; schema-2 artifacts only (older layouts are skipped with a
warning on stderr, never guessed at).
"""

import argparse
import glob
import json
import os
import sys


def load_artifact(path):
    """Returns (bench_name, meta, results) or None if not schema 2."""
    try:
        with open(path, "r", encoding="utf-8") as f:
            data = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"bench_trend: skipping {path}: {e}", file=sys.stderr)
        return None
    meta = data.get("meta", {})
    if meta.get("schema") != 2:
        print(
            f"bench_trend: skipping {path}: unknown schema "
            f"{meta.get('schema')!r}",
            file=sys.stderr,
        )
        return None
    base = os.path.basename(path)
    bench = base[len("BENCH_"):-len(".json")] if base.startswith(
        "BENCH_") else base
    return bench, meta, data.get("results", [])


def collect(paths):
    """Maps "<bench>/<row>" -> list of row dicts ordered by run_id."""
    runs = []
    for path in paths:
        loaded = load_artifact(path)
        if loaded:
            runs.append(loaded)
    runs.sort(key=lambda r: r[1].get("run_id", 0))
    rows = {}
    for bench, _meta, results in runs:
        for row in results:
            key = f"{bench}/{row.get('name', '?')}"
            rows.setdefault(key, []).append(row)
    return rows


def fmt_delta(first, last):
    if first in (None, 0) or last is None:
        return ""
    change = (last - first) / first * 100.0
    return f"{change:+.1f}%"


def emit(rows, out_format):
    cols = ["row", "runs", "ops_per_sec", "p50_us", "p99_us", "p999_us",
            "shed_rate", "ops_delta"]
    lines = []
    for key in sorted(rows):
        history = rows[key]
        last = history[-1]
        first = history[0]
        lines.append([
            key,
            str(len(history)),
            f"{last.get('ops_per_sec', 0):.1f}",
            f"{last.get('p50_us', 0):.1f}",
            f"{last.get('p99_us', 0):.1f}",
            f"{last['p999_us']:.1f}" if "p999_us" in last else "-",
            f"{last['shed_rate']:.3f}" if "shed_rate" in last else "-",
            fmt_delta(first.get("ops_per_sec"), last.get("ops_per_sec"))
            if len(history) > 1 else "",
        ])
    if out_format == "tsv":
        print("\t".join(cols))
        for line in lines:
            print("\t".join(line))
        return
    widths = [max(len(c), *(len(l[i]) for l in lines)) if lines else len(c)
              for i, c in enumerate(cols)]
    print("  ".join(c.ljust(widths[i]) for i, c in enumerate(cols)))
    for line in lines:
        print("  ".join(v.ljust(widths[i]) for i, v in enumerate(line)))


def main():
    parser = argparse.ArgumentParser(
        description="Aggregate BENCH_*.json artifacts into a trend table")
    parser.add_argument("--dir", default=None,
                        help="directory holding BENCH_*.json "
                             "(default: repo root)")
    parser.add_argument("--glob", dest="pattern", default=None,
                        help="explicit glob pattern (overrides --dir)")
    parser.add_argument("--format", choices=["table", "tsv"],
                        default="table")
    args = parser.parse_args()

    if args.pattern:
        paths = sorted(glob.glob(args.pattern, recursive=True))
    else:
        root = args.dir or os.path.dirname(
            os.path.dirname(os.path.abspath(__file__)))
        paths = sorted(glob.glob(os.path.join(root, "BENCH_*.json")))
    if not paths:
        print("bench_trend: no BENCH_*.json artifacts found",
              file=sys.stderr)
        return 1
    rows = collect(paths)
    if not rows:
        print("bench_trend: no schema-2 rows found", file=sys.stderr)
        return 1
    emit(rows, args.format)
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:
        # Piped into head/less and the reader closed early: fine.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        sys.exit(0)
