// ledgerdb_cli — operate a file-backed ledger from the shell.
//
// Every invocation reopens the ledger from its on-disk streams (full
// crash-recovery path) and replays integrity checks, so the tool doubles
// as a recovery/fsck driver.
//
//   ledgerdb_cli init   <dir> <uri>              create a ledger directory
//   ledgerdb_cli append <dir> <payload> [clue..] append a signed journal
//   ledgerdb_cli get    <dir> <jsn>              fetch one journal
//   ledgerdb_cli verify <dir> <jsn>              client-side fam verification
//   ledgerdb_cli lineage <dir> <clue>            list + verify a clue
//   ledgerdb_cli anchor <dir>                    TSA time anchor
//   ledgerdb_cli occult <dir> <jsn>              hide a journal (DBA+regulator)
//   ledgerdb_cli purge  <dir> <before_jsn>       purge history
//   ledgerdb_cli audit  <dir>                    full Dasein-complete audit
//   ledgerdb_cli status <dir>                    roots & counters
//   ledgerdb_cli checkpoint <dir>                write an audited checkpoint
//   ledgerdb_cli fsck   <dir> [--json]           stream + checkpoint integrity
//                                                check
//   ledgerdb_cli receipt <dir> <jsn> <file>      export a receipt (hex)
//   ledgerdb_cli verify-receipt <dir> <file>     offline receipt check
//                                                (exit 0 valid, 2 forged)
//   ledgerdb_cli stats  <dir> [--format json|prom] [--exercise]
//                       [--spans] [--slow]
//                       [--watch <secs>] [--ticks <n>]
//                                                observability snapshot
//   ledgerdb_cli serve  <dir> [--unix <path>|--port <n>] [--workers <n>]
//                       [--queue-depth <n>] [--request-timeout-us <n>]
//                       [--drain-deadline-us <n>] [--ticks <n>]
//                                                host the ledger over a socket
//
// Remote mode: `append`, `get`, `verify`, `lineage` and `status` accept
// `--remote <addr>` ("unix:<path>" or "tcp:<ipv4>:<port>") and then talk
// to a running `serve` process through SocketTransport + LedgerClient
// instead of reopening the streams — <dir> supplies only the seed-derived
// identities and uri. Verification still happens client-side: remote
// `verify`/`lineage` pin trusted roots via an audited refresh and check
// the proofs locally, trusting nothing the server sends.
//
// `stats` opens the ledger through the instrumented recovery path and
// prints the process-wide metrics registry (counters, gauges, histogram
// quantiles) as JSON (default) or Prometheus exposition text. With
// `--exercise` it first drives a representative workload — verified client
// appends through a fault-injecting transport (retries, dedup replays),
// a trusted-root refresh, fam proof builds, a twice-run client batch audit
// (the repeat is served from the proof cache, so the proofcache hit/miss
// counters and resident-bytes gauge move), and a full Dasein audit — so
// every verification-plane stage lights up. `--watch` re-prints (and with
// `--exercise`, re-drives) every <secs> seconds; `--ticks` bounds the
// number of rounds (0 = until interrupted). NOTE: --exercise appends real
// journals to the ledger.
//
// `stats --spans` exports the sampled span ring (stage, start, duration,
// thread, trace_id/parent_span for cross-process traces) as a JSON array;
// `stats --slow` exports the per-request event log filtered to requests
// flagged slow (queue + exec at or above the server's slow threshold).
// Both replace the registry snapshot for that tick and are JSON-only.

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "audit/dasein_auditor.h"
#include "client/ledger_client.h"
#include "ledger/ledger.h"
#include "net/byzantine_transport.h"
#include "net/server.h"
#include "net/socket_transport.h"
#include "obs/metrics.h"
#include "obs/trace.h"

using namespace ledgerdb;

namespace {

struct CliContext {
  std::string dir;
  std::string uri;
  std::string seed;
  SystemClock clock;
  std::unique_ptr<CertificateAuthority> ca;
  std::unique_ptr<MemberRegistry> registry;
  KeyPair lsp, user, dba, regulator, tsa_key;
  std::unique_ptr<TsaService> tsa;
  std::unique_ptr<FileStreamStore> journal_stream, block_stream;
  std::unique_ptr<CheckpointStore> ckpt_store;
  std::unique_ptr<Ledger> ledger;
  RecoveryInfo recovery;
};

int Fail(const std::string& message) {
  std::fprintf(stderr, "error: %s\n", message.c_str());
  return 1;
}

int FailStatus(const std::string& what, const Status& status) {
  return Fail(what + ": " + status.ToString());
}

bool ReadFileString(const std::string& path, std::string* out) {
  std::ifstream in(path);
  if (!in) return false;
  std::getline(in, *out);
  return true;
}

bool WriteFileString(const std::string& path, const std::string& value) {
  std::ofstream out(path);
  if (!out) return false;
  out << value << "\n";
  return true;
}

/// Derives the fixed cast of identities from the ledger's seed file.
void DeriveIdentities(CliContext* ctx, const std::string& seed) {
  ctx->ca = std::make_unique<CertificateAuthority>(
      KeyPair::FromSeedString(seed + ":ca"));
  ctx->registry = std::make_unique<MemberRegistry>(ctx->ca.get());
  ctx->lsp = KeyPair::FromSeedString(seed + ":lsp");
  ctx->user = KeyPair::FromSeedString(seed + ":user");
  ctx->dba = KeyPair::FromSeedString(seed + ":dba");
  ctx->regulator = KeyPair::FromSeedString(seed + ":regulator");
  ctx->tsa_key = KeyPair::FromSeedString(seed + ":tsa");
  ctx->registry->Register(ctx->ca->Certify("lsp", ctx->lsp.public_key(), Role::kLsp));
  ctx->registry->Register(ctx->ca->Certify("user", ctx->user.public_key(), Role::kUser));
  ctx->registry->Register(ctx->ca->Certify("dba", ctx->dba.public_key(), Role::kDba));
  ctx->registry->Register(
      ctx->ca->Certify("regulator", ctx->regulator.public_key(), Role::kRegulator));
  ctx->registry->Register(ctx->ca->Certify("tsa", ctx->tsa_key.public_key(), Role::kTsa));
  ctx->tsa = std::make_unique<TsaService>(ctx->tsa_key, &ctx->clock);
}

/// Opens an existing ledger directory: reads seed + uri, reopens the
/// streams, and recovers the full ledger state from disk.
int OpenLedger(CliContext* ctx, const std::string& dir) {
  ctx->dir = dir;
  std::string seed;
  if (!ReadFileString(dir + "/seed", &seed) ||
      !ReadFileString(dir + "/uri", &ctx->uri)) {
    return Fail("not a ledger directory (run `init` first): " + dir);
  }
  ctx->seed = seed;
  DeriveIdentities(ctx, seed);
  Status s = FileStreamStore::Open(dir + "/journals.log", &ctx->journal_stream);
  if (!s.ok()) return FailStatus("open journals", s);
  s = FileStreamStore::Open(dir + "/blocks.log", &ctx->block_stream);
  if (!s.ok()) return FailStatus("open blocks", s);
  ctx->ckpt_store =
      std::make_unique<CheckpointStore>(Env::Default(), dir + "/ckpt");
  LedgerStorage storage{ctx->journal_stream.get(), ctx->block_stream.get(),
                        ctx->ckpt_store.get()};
  LedgerOptions options;
  options.fractal_height = 10;
  options.block_capacity = 16;
  s = Ledger::Recover(ctx->uri, options, &ctx->clock, ctx->lsp,
                      ctx->registry.get(), storage, &ctx->ledger,
                      &ctx->recovery);
  if (!s.ok()) return FailStatus("recover (ledger may be tampered)", s);
  ctx->ledger->AttachDirectTsa(ctx->tsa.get());
  return 0;
}

/// Remote-mode context: reads seed + uri and derives identities but does
/// NOT recover the ledger — the `serve` process owns the streams, and a
/// second recovery against live files would race it.
int OpenRemoteContext(CliContext* ctx, const std::string& dir) {
  ctx->dir = dir;
  std::string seed;
  if (!ReadFileString(dir + "/seed", &seed) ||
      !ReadFileString(dir + "/uri", &ctx->uri)) {
    return Fail("not a ledger directory (run `init` first): " + dir);
  }
  ctx->seed = seed;
  DeriveIdentities(ctx, seed);
  return 0;
}

volatile std::sig_atomic_t g_serve_stop = 0;
void HandleServeSignal(int) { g_serve_stop = 1; }

/// Hosts the recovered ledger behind the socket wire protocol until
/// SIGINT/SIGTERM, then drains gracefully. `--ticks <n>` (tests) exits on
/// its own after n seconds instead of waiting for a signal.
int CmdServe(CliContext* ctx, const std::vector<std::string>& args) {
  LedgerServer::Options opts;
  opts.unix_path = ctx->dir + "/ledgerdb.sock";
  int ticks = 0;
  for (size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--unix" && i + 1 < args.size()) {
      opts.unix_path = args[++i];
    } else if (args[i] == "--port" && i + 1 < args.size()) {
      opts.unix_path.clear();
      opts.tcp_port = static_cast<uint16_t>(std::atoi(args[++i].c_str()));
    } else if (args[i] == "--workers" && i + 1 < args.size()) {
      opts.num_workers = std::atoi(args[++i].c_str());
    } else if (args[i] == "--queue-depth" && i + 1 < args.size()) {
      opts.queue_depth = static_cast<size_t>(std::atoi(args[++i].c_str()));
    } else if (args[i] == "--request-timeout-us" && i + 1 < args.size()) {
      opts.request_timeout_us = std::strtoull(args[++i].c_str(), nullptr, 10);
    } else if (args[i] == "--drain-deadline-us" && i + 1 < args.size()) {
      opts.drain_deadline_us = std::strtoull(args[++i].c_str(), nullptr, 10);
    } else if (args[i] == "--ticks" && i + 1 < args.size()) {
      ticks = std::atoi(args[++i].c_str());
    } else {
      return Fail("unknown serve option: " + args[i]);
    }
  }
  LedgerServer server(ctx->ledger.get(), opts);
  Status s = server.Start();
  if (!s.ok()) return FailStatus("serve", s);
  std::printf("serving %s at %s (%d workers, queue depth %zu)\n",
              ctx->uri.c_str(), server.address().c_str(), opts.num_workers,
              opts.queue_depth);
  std::fflush(stdout);
  std::signal(SIGINT, HandleServeSignal);
  std::signal(SIGTERM, HandleServeSignal);
  int elapsed = 0;
  while (!g_serve_stop && (ticks == 0 || elapsed < ticks)) {
    std::this_thread::sleep_for(std::chrono::seconds(1));
    ++elapsed;
  }
  std::printf("draining...\n");
  server.Stop();
  const LedgerServer::Stats& st = server.stats();
  std::printf("served: %llu completed, %llu shed, %llu frame errors, "
              "%llu deadline-expired, %llu drain-failed\n",
              (unsigned long long)st.completed.load(),
              (unsigned long long)st.shed.load(),
              (unsigned long long)st.frame_errors.load(),
              (unsigned long long)st.deadline_expired.load(),
              (unsigned long long)st.drain_failed.load());
  return 0;
}

/// Builds the remote verified client: socket transport plus a LedgerClient
/// whose nonce space starts past the server's current journal count (the
/// same nonce scheme local `append` uses, resumed across processes).
int MakeRemoteClient(CliContext* ctx, const std::string& addr,
                     std::unique_ptr<SocketTransport>* transport,
                     std::unique_ptr<LedgerClient>* client) {
  *transport = std::make_unique<SocketTransport>(addr, ctx->uri);
  SignedCommitment commitment;
  Status s = (*transport)->GetCommitment(&commitment);
  if (!s.ok()) return FailStatus("connect " + addr, s);
  if (!commitment.Verify(ctx->lsp.public_key())) {
    return Fail("server commitment does not verify under this ledger's "
                "LSP key — wrong directory or impostor server");
  }
  LedgerClient::Options copts;
  copts.lsp_key = ctx->lsp.public_key();
  copts.fractal_height = 10;  // must match OpenLedger's LedgerOptions
  copts.start_nonce = commitment.journal_count;
  copts.retry.max_attempts = 4;
  copts.retry.decorrelated_jitter = true;
  *client = std::make_unique<LedgerClient>(transport->get(), ctx->user, copts);
  return 0;
}

int CmdRemoteAppend(CliContext* ctx, const std::string& addr,
                    const std::string& payload,
                    const std::vector<std::string>& clues) {
  std::unique_ptr<SocketTransport> transport;
  std::unique_ptr<LedgerClient> client;
  int rc = MakeRemoteClient(ctx, addr, &transport, &client);
  if (rc != 0) return rc;
  uint64_t jsn = 0;
  Receipt receipt;
  Status s = client->AppendVerified(StringToBytes(payload), clues, &jsn,
                                    &receipt);
  if (!s.ok()) return FailStatus("remote append", s);
  std::printf("jsn:        %llu\n", (unsigned long long)jsn);
  std::printf("tx-hash:    %s\n", receipt.tx_hash.ToHex().c_str());
  std::printf("block-hash: %s\n", receipt.block_hash.ToHex().c_str());
  std::printf("receipt:    %s\n", ToHex(receipt.Serialize()).c_str());
  return 0;
}

int CmdRemoteGet(CliContext* ctx, const std::string& addr, uint64_t jsn) {
  SocketTransport transport(addr, ctx->uri);
  Journal journal;
  Status s = transport.GetJournal(jsn, &journal);
  if (!s.ok()) return FailStatus("remote get", s);
  std::printf("jsn:      %llu\n", (unsigned long long)jsn);
  std::printf("payload:  %s\n",
              journal.occulted
                  ? "<erased>"
                  : std::string(journal.payload.begin(), journal.payload.end())
                        .c_str());
  std::printf("digest:   %s\n", journal.payload_digest.ToHex().c_str());
  for (const std::string& clue : journal.clues) {
    std::printf("clue:     %s\n", clue.c_str());
  }
  return 0;
}

int CmdRemoteVerify(CliContext* ctx, const std::string& addr, uint64_t jsn) {
  std::unique_ptr<SocketTransport> transport;
  std::unique_ptr<LedgerClient> client;
  int rc = MakeRemoteClient(ctx, addr, &transport, &client);
  if (rc != 0) return rc;
  Status s = client->RefreshTrustedRoots();
  if (!s.ok()) return FailStatus("refresh trusted roots", s);
  Journal journal;
  s = client->FetchAndVerifyJournal(jsn, &journal);
  std::printf("fam root:  %s\n", client->trusted_fam_root().ToHex().c_str());
  std::printf("result:    %s\n", s.ok() ? "VALID" : "INVALID");
  if (!s.ok()) std::printf("reason:    %s\n", s.ToString().c_str());
  return s.ok() ? 0 : 1;
}

int CmdRemoteLineage(CliContext* ctx, const std::string& addr,
                     const std::string& clue) {
  std::unique_ptr<SocketTransport> transport;
  std::unique_ptr<LedgerClient> client;
  int rc = MakeRemoteClient(ctx, addr, &transport, &client);
  if (rc != 0) return rc;
  Status s = client->RefreshTrustedRoots();
  if (!s.ok()) return FailStatus("refresh trusted roots", s);
  std::vector<Journal> journals;
  s = client->FetchAndVerifyLineage(clue, &journals);
  if (!s.ok()) return FailStatus("remote lineage", s);
  for (const Journal& journal : journals) {
    std::printf("jsn %-8llu %s\n", (unsigned long long)journal.jsn,
                journal.occulted
                    ? "<erased>"
                    : std::string(journal.payload.begin(), journal.payload.end())
                          .c_str());
  }
  std::printf("%zu records; lineage VALID\n", journals.size());
  return 0;
}

int CmdRemoteStatus(CliContext* ctx, const std::string& addr) {
  SocketTransport transport(addr, ctx->uri);
  SignedCommitment commitment;
  Status s = transport.GetCommitment(&commitment);
  if (!s.ok()) return FailStatus("remote status", s);
  bool signature_ok = commitment.Verify(ctx->lsp.public_key());
  std::printf("uri:        %s\n", commitment.ledger_uri.c_str());
  std::printf("journals:   %llu\n",
              (unsigned long long)commitment.journal_count);
  std::printf("fam root:   %s\n", commitment.fam_root.ToHex().c_str());
  std::printf("clue root:  %s\n", commitment.clue_root.ToHex().c_str());
  std::printf("state root: %s\n", commitment.state_root.ToHex().c_str());
  std::printf("lsp sig:    %s\n", signature_ok ? "VALID" : "INVALID");
  return signature_ok ? 0 : 1;
}

int CmdInit(const std::string& dir, const std::string& uri) {
  std::string probe;
  if (ReadFileString(dir + "/uri", &probe)) {
    return Fail("ledger directory already initialized: " + dir);
  }
  // Seed from the system clock; identities derive deterministically.
  SystemClock clock;
  std::string seed = "ledgerdb-" + std::to_string(clock.Now());
  if (!WriteFileString(dir + "/seed", seed) ||
      !WriteFileString(dir + "/uri", uri)) {
    return Fail("cannot write to directory (does it exist?): " + dir);
  }
  CliContext ctx;
  ctx.uri = uri;
  DeriveIdentities(&ctx, seed);
  Status s = FileStreamStore::Open(dir + "/journals.log", &ctx.journal_stream);
  if (!s.ok()) return FailStatus("create journals", s);
  s = FileStreamStore::Open(dir + "/blocks.log", &ctx.block_stream);
  if (!s.ok()) return FailStatus("create blocks", s);
  LedgerStorage storage{ctx.journal_stream.get(), ctx.block_stream.get()};
  LedgerOptions options;
  options.fractal_height = 10;
  options.block_capacity = 16;
  Ledger ledger(uri, options, &ctx.clock, ctx.lsp, ctx.registry.get(), storage);
  ledger.SealBlock();
  std::printf("initialized %s (uri %s)\n", dir.c_str(), uri.c_str());
  std::printf("genesis fam root: %s\n", ledger.FamRoot().ToHex().c_str());
  return 0;
}

int CmdAppend(CliContext* ctx, const std::string& payload,
              const std::vector<std::string>& clues) {
  ClientTransaction tx;
  tx.ledger_uri = ctx->uri;
  tx.clues = clues;
  tx.payload = StringToBytes(payload);
  tx.nonce = ctx->ledger->NumJournals();
  tx.client_ts = ctx->clock.Now();
  tx.Sign(ctx->user);
  uint64_t jsn = 0;
  Status s = ctx->ledger->Append(tx, &jsn);
  if (!s.ok()) return FailStatus("append", s);
  Receipt receipt;
  s = ctx->ledger->GetReceipt(jsn, &receipt);
  if (!s.ok()) return FailStatus("receipt", s);
  std::printf("jsn:        %llu\n", (unsigned long long)jsn);
  std::printf("tx-hash:    %s\n", receipt.tx_hash.ToHex().c_str());
  std::printf("block-hash: %s\n", receipt.block_hash.ToHex().c_str());
  std::printf("receipt:    %s\n", ToHex(receipt.Serialize()).c_str());
  return 0;
}

int CmdGet(CliContext* ctx, uint64_t jsn) {
  Journal journal;
  Status s = ctx->ledger->GetJournal(jsn, &journal);
  if (!s.ok()) return FailStatus("get", s);
  std::printf("jsn:      %llu\n", (unsigned long long)jsn);
  std::printf("type:     %d%s\n", static_cast<int>(journal.type),
              journal.occulted ? " (occulted)" : "");
  std::printf("payload:  %s\n",
              journal.occulted
                  ? "<erased>"
                  : std::string(journal.payload.begin(), journal.payload.end())
                        .c_str());
  std::printf("digest:   %s\n", journal.payload_digest.ToHex().c_str());
  for (const std::string& clue : journal.clues) {
    std::printf("clue:     %s\n", clue.c_str());
  }
  return 0;
}

int CmdVerify(CliContext* ctx, uint64_t jsn) {
  Journal journal;
  Status s = ctx->ledger->GetJournal(jsn, &journal);
  if (!s.ok()) return FailStatus("get", s);
  FamProof proof;
  s = ctx->ledger->GetProof(jsn, &proof);
  if (!s.ok()) return FailStatus("proof", s);
  bool ok = Ledger::VerifyJournalProof(journal, proof, ctx->ledger->FamRoot());
  std::printf("fam root:  %s\n", ctx->ledger->FamRoot().ToHex().c_str());
  std::printf("proof:     %zu digests\n", proof.CostInHashes());
  std::printf("result:    %s\n", ok ? "VALID" : "INVALID");
  return ok ? 0 : 1;
}

int CmdLineage(CliContext* ctx, const std::string& clue) {
  std::vector<uint64_t> jsns;
  Status s = ctx->ledger->ListTx(clue, &jsns);
  if (!s.ok()) return FailStatus("lineage", s);
  std::vector<Digest> digests;
  for (uint64_t jsn : jsns) {
    Journal journal;
    s = ctx->ledger->GetJournal(jsn, &journal);
    if (!s.ok()) return FailStatus("get", s);
    digests.push_back(journal.TxHash());
    std::printf("jsn %-8llu %s\n", (unsigned long long)jsn,
                journal.occulted
                    ? "<erased>"
                    : std::string(journal.payload.begin(), journal.payload.end())
                          .c_str());
  }
  ClueProof proof;
  s = ctx->ledger->GetClueProof(clue, 0, 0, &proof);
  if (!s.ok()) return FailStatus("clue proof", s);
  bool ok = CmTree::VerifyClueProof(ctx->ledger->ClueRoot(), digests, proof);
  std::printf("%zu records; lineage %s\n", jsns.size(),
              ok ? "VALID" : "INVALID");
  return ok ? 0 : 1;
}

int CmdAnchor(CliContext* ctx) {
  uint64_t jsn = 0;
  Status s = ctx->ledger->AnchorTime(&jsn);
  if (!s.ok()) return FailStatus("anchor", s);
  const TimeEvidence& ev = ctx->ledger->time_journals().back().evidence;
  std::printf("time journal jsn: %llu\n", (unsigned long long)jsn);
  std::printf("TSA timestamp:    %lld us\n",
              (long long)ev.attestation.timestamp);
  std::printf("attested digest:  %s\n", ev.ledger_digest.ToHex().c_str());
  return 0;
}

int CmdOccult(CliContext* ctx, uint64_t jsn) {
  Digest request = Ledger::OccultRequestHash(ctx->uri, jsn);
  std::vector<Endorsement> sigs = {
      {ctx->dba.public_key(), ctx->dba.Sign(request)},
      {ctx->regulator.public_key(), ctx->regulator.Sign(request)}};
  uint64_t oj = 0;
  Status s = ctx->ledger->Occult(jsn, sigs, &oj);
  if (!s.ok()) return FailStatus("occult", s);
  ctx->ledger->ReorganizeOcculted();
  std::printf("occulted jsn %llu (occult journal %llu)\n",
              (unsigned long long)jsn, (unsigned long long)oj);
  return 0;
}

int CmdPurge(CliContext* ctx, uint64_t before) {
  Digest request = Ledger::PurgeRequestHash(ctx->uri, before);
  std::vector<Endorsement> sigs = {
      {ctx->dba.public_key(), ctx->dba.Sign(request)},
      {ctx->user.public_key(), ctx->user.Sign(request)}};
  uint64_t pj = 0;
  Status s = ctx->ledger->Purge(before, sigs, {}, &pj);
  if (!s.ok()) return FailStatus("purge", s);
  std::printf("purged journals before %llu (purge journal %llu)\n",
              (unsigned long long)before, (unsigned long long)pj);
  return 0;
}

int CmdAudit(CliContext* ctx) {
  Receipt receipt;
  Status s = ctx->ledger->GetReceipt(ctx->ledger->NumJournals() - 1, &receipt);
  if (!s.ok()) return FailStatus("receipt", s);
  DaseinAuditor::Context context;
  context.ledger = ctx->ledger.get();
  context.members = ctx->registry.get();
  context.tsa_key = ctx->tsa->public_key();
  AuditReport report;
  s = DaseinAuditor(context).Audit(receipt, {}, &report);
  std::printf("journals replayed:    %llu\n",
              (unsigned long long)report.journals_replayed);
  std::printf("blocks verified:      %llu\n",
              (unsigned long long)report.blocks_verified);
  std::printf("time journals:        %llu\n",
              (unsigned long long)report.time_journals_verified);
  std::printf("signatures verified:  %llu\n",
              (unsigned long long)report.signatures_verified);
  std::printf("audit: %s\n",
              report.passed ? "PASSED"
                            : ("FAILED — " + report.failure_reason).c_str());
  return report.passed && s.ok() ? 0 : 1;
}

int CmdStatus(CliContext* ctx) {
  std::printf("uri:             %s\n", ctx->uri.c_str());
  std::printf("journals:        %llu\n",
              (unsigned long long)ctx->ledger->NumJournals());
  std::printf("purged boundary: %llu\n",
              (unsigned long long)ctx->ledger->PurgedBoundary());
  std::printf("occulted:        %llu\n",
              (unsigned long long)ctx->ledger->OccultedCount());
  std::printf("blocks:          %zu\n", ctx->ledger->blocks().size());
  std::printf("time journals:   %zu\n", ctx->ledger->time_journals().size());
  std::printf("fam root:        %s\n", ctx->ledger->FamRoot().ToHex().c_str());
  std::printf("clue root:       %s\n", ctx->ledger->ClueRoot().ToHex().c_str());
  std::printf("state root:      %s\n", ctx->ledger->StateRoot().ToHex().c_str());
  if (ctx->recovery.used_checkpoint) {
    std::printf("recovered via:   checkpoint (watermark %llu, tail %llu, "
                "%llu reconciled)\n",
                (unsigned long long)ctx->recovery.checkpoint_watermark,
                (unsigned long long)ctx->recovery.tail_journals,
                (unsigned long long)ctx->recovery.reconciled_records);
  } else {
    std::printf("recovered via:   full replay (%u checkpoint candidates "
                "rejected)\n",
                ctx->recovery.candidates_rejected);
  }
  return 0;
}

/// Writes one audited checkpoint covering the ledger's current state.
/// The next `Recover` of this directory loads it and tail-replays only
/// the journals appended afterwards.
int CmdCheckpoint(CliContext* ctx) {
  uint32_t slot = 0;
  Status s = ctx->ledger->WriteCheckpoint(&slot);
  if (!s.ok()) return FailStatus("checkpoint", s);
  std::printf("slot:       %u\n", slot);
  std::printf("watermark:  %llu\n",
              (unsigned long long)ctx->ledger->NumJournals());
  std::printf("blocks:     %zu\n", ctx->ledger->blocks().size());
  std::printf("fam root:   %s\n", ctx->ledger->FamRoot().ToHex().c_str());
  std::printf("checkpoint written to %s/ckpt.{ckpt,snap}.%u\n",
              ctx->dir.c_str(), slot);
  return 0;
}

int CmdReceipt(CliContext* ctx, uint64_t jsn, const std::string& out_path) {
  Receipt receipt;
  Status s = ctx->ledger->GetReceipt(jsn, &receipt);
  if (!s.ok()) return FailStatus("receipt", s);
  if (!WriteFileString(out_path, ToHex(receipt.Serialize()))) {
    return Fail("cannot write receipt file: " + out_path);
  }
  std::printf("receipt for jsn %llu written to %s\n", (unsigned long long)jsn,
              out_path.c_str());
  return 0;
}

/// Offline receipt verification: the receipt file is the client's retained
/// π_s evidence; the ledger directory supplies the journal, fam proof and
/// current root. Exit 0 when the receipt binds, 2 when it is forged or the
/// ledger content diverged (threat-C), 1 on I/O problems.
int CmdVerifyReceipt(CliContext* ctx, const std::string& receipt_path) {
  std::string hex;
  if (!ReadFileString(receipt_path, &hex)) {
    return Fail("cannot read receipt file: " + receipt_path);
  }
  Bytes raw;
  Receipt receipt;
  if (!FromHex(hex, &raw) || !Receipt::Deserialize(raw, &receipt)) {
    std::printf("receipt: FORGED (undecodable)\n");
    return 2;
  }
  Journal journal;
  Status s = ctx->ledger->GetJournal(receipt.jsn, &journal);
  if (!s.ok()) return FailStatus("get journal", s);
  FamProof proof;
  s = ctx->ledger->GetProof(receipt.jsn, &proof);
  if (!s.ok()) return FailStatus("get proof", s);
  s = LedgerClient::VerifyReceiptOffline(receipt, journal, proof,
                                         ctx->ledger->lsp_key(),
                                         ctx->ledger->FamRoot());
  std::printf("jsn:      %llu\n", (unsigned long long)receipt.jsn);
  std::printf("tx-hash:  %s\n", receipt.tx_hash.ToHex().c_str());
  if (!s.ok()) {
    std::printf("receipt: FORGED (%s)\n", s.message().c_str());
    return 2;
  }
  std::printf("receipt: VALID\n");
  return 0;
}

std::string JsonEscape(const std::string& in) {
  std::string out;
  for (char c : in) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

/// Stream-level integrity check plus the checkpoint inventory. Unlike
/// every other command this does NOT go through OpenLedger/Recover — it
/// must keep working (and stay informative) on images the ledger itself
/// refuses to load. Checkpoints are redundant state (recovery falls back
/// to full replay), so a damaged checkpoint is reported but does not make
/// the directory DAMAGED.
int CmdFsck(const std::string& dir, const std::vector<std::string>& args) {
  bool json = false;
  for (const std::string& arg : args) {
    if (arg == "--json") {
      json = true;
    } else {
      return Fail("unknown fsck option: " + arg);
    }
  }

  bool healthy = true;
  bool repaired = false;
  std::string stream_json;
  for (const char* name : {"journals.log", "blocks.log"}) {
    std::string path = dir + "/" + name;
    if (!json) std::printf("%s:\n", name);
    std::unique_ptr<FileStreamStore> stream;
    Status s = FileStreamStore::Open(path, &stream);
    if (!s.ok()) {
      if (json) {
        if (!stream_json.empty()) stream_json += ",";
        stream_json += "{\"name\":\"" + std::string(name) + "\",\"open\":\"" +
                       JsonEscape(s.ToString()) + "\"}";
      } else {
        std::printf("  open:        %s\n", s.ToString().c_str());
      }
      healthy = false;
      continue;
    }
    const FileStreamStore::RecoveryReport& report = stream->recovery_report();
    Status fsck = stream->Fsck();
    if (report.tail_quarantined) repaired = true;
    if (!fsck.ok()) healthy = false;
    if (json) {
      if (!stream_json.empty()) stream_json += ",";
      stream_json +=
          "{\"name\":\"" + std::string(name) +
          "\",\"frames\":" + std::to_string(report.frames) +
          ",\"watermark\":" + std::to_string(stream->DurableWatermark()) +
          ",\"torn_tail\":" + (report.tail_quarantined ? "true" : "false") +
          ",\"fsck\":\"" + JsonEscape(fsck.ToString()) + "\"}";
    } else {
      std::printf("  frames:      %llu\n", (unsigned long long)report.frames);
      std::printf("  watermark:   %llu%s\n",
                  (unsigned long long)stream->DurableWatermark(),
                  report.watermark_missing ? " (sidecar was missing)" : "");
      if (report.tail_quarantined) {
        std::printf("  torn tail:   %llu bytes quarantined to %s.quarantine\n",
                    (unsigned long long)report.quarantined_bytes, path.c_str());
      }
      std::printf("  fsck:        %s\n", fsck.ToString().c_str());
    }
  }

  // Checkpoint inventory: frame + SHA binding always; the LSP signature
  // too when the seed file is readable (it derives the public key).
  std::string seed;
  bool have_seed = ReadFileString(dir + "/seed", &seed);
  KeyPair lsp;
  if (have_seed) lsp = KeyPair::FromSeedString(seed + ":lsp");
  CheckpointStore ckpt_store(Env::Default(), dir + "/ckpt");
  std::vector<CheckpointEntry> entries;
  Status list = ckpt_store.List(&entries);
  std::string ckpt_json;
  size_t ckpt_valid = 0;
  if (!json && (!entries.empty() || !list.ok())) {
    std::printf("checkpoints:\n");
  }
  for (const CheckpointEntry& entry : entries) {
    std::string verdict;
    uint64_t watermark = 0, height = 0;
    if (!entry.status.ok()) {
      verdict = entry.status.ToString();
    } else {
      watermark = entry.manifest.watermark;
      height = entry.manifest.block_height;
      Bytes snapshot;
      Status s = ckpt_store.ReadSnapshot(entry.manifest, entry.slot, &snapshot);
      if (!s.ok()) {
        verdict = s.ToString();
      } else if (have_seed && !entry.manifest.Verify(lsp.public_key())) {
        verdict = "Corruption: LSP signature invalid";
      } else {
        verdict = "OK";
        ++ckpt_valid;
      }
    }
    if (json) {
      if (!ckpt_json.empty()) ckpt_json += ",";
      ckpt_json += "{\"slot\":" + std::to_string(entry.slot) +
                   ",\"watermark\":" + std::to_string(watermark) +
                   ",\"block_height\":" + std::to_string(height) +
                   ",\"status\":\"" + JsonEscape(verdict) + "\"}";
    } else {
      std::printf("  slot %u:      watermark %llu, blocks %llu — %s\n",
                  entry.slot, (unsigned long long)watermark,
                  (unsigned long long)height, verdict.c_str());
    }
  }

  // Classic fsck exit codes: 0 clean, 1 errors corrected, 2 uncorrected.
  // A damaged checkpoint slot is "corrected" (recovery falls back past
  // it, the next WriteCheckpoint overwrites it) — never CLEAN: operators
  // must see that the fast-recovery path lost a rung.
  const bool ckpt_damaged = ckpt_valid < entries.size();
  std::string result = !healthy      ? "DAMAGED"
                       : repaired    ? "REPAIRED"
                       : ckpt_damaged ? "CHECKPOINT-DAMAGED"
                                      : "CLEAN";
  if (json) {
    std::printf("{\"streams\":[%s],\"checkpoints\":[%s],"
                "\"checkpoints_valid\":%zu,\"result\":\"%s\"}\n",
                stream_json.c_str(), ckpt_json.c_str(), ckpt_valid,
                result.c_str());
  } else if (!healthy) {
    std::printf("fsck: DAMAGED\n");
  } else if (repaired) {
    std::printf("fsck: REPAIRED (torn tail quarantined)\n");
  } else if (ckpt_damaged) {
    std::printf("fsck: CHECKPOINT-DAMAGED (recovery falls back)\n");
  } else {
    std::printf("fsck: CLEAN\n");
  }
  return !healthy ? 2 : (repaired || ckpt_damaged) ? 1 : 0;
}

/// Drives one instrumented workload round against the recovered ledger:
/// client-verified appends through a Byzantine transport with scheduled
/// network faults (masked by retries and server-side dedup), an audited
/// trusted-root refresh, proof builds, and a full Dasein audit. Counters
/// for every stage of the verification plane move as a side effect.
int RunStatsExercise(CliContext* ctx, const std::string& seed) {
  // A fresh registered identity per round: its (signer, nonce) space is
  // empty, so exercise appends never collide with the ledger's history,
  // while injected duplicate deliveries still converge via dedup.
  std::string eseed =
      seed + ":stats:" + std::to_string(ctx->ledger->NumJournals());
  KeyPair ekey = KeyPair::FromSeedString(eseed);
  ctx->registry->Register(
      ctx->ca->Certify("stats-exercise", ekey.public_key(), Role::kUser));

  LocalTransport local(ctx->ledger.get());
  ByzantineTransport byz(&local, /*seed=*/0x57A75);
  // Network-plane faults only — each is masked by the client's retry loop
  // or the server's idempotent dedup, so the round always converges while
  // the retry/dedup/fault counters move.
  byz.InjectFault(RpcOp::kAppendTx, 1, FaultKind::kTransientError);
  byz.InjectFault(RpcOp::kAppendTx, 3, FaultKind::kDelay);  // commits; retry dedups
  byz.InjectFault(RpcOp::kGetReceipt, 2, FaultKind::kDrop);
  byz.InjectFault(RpcOp::kGetCommitment, 0, FaultKind::kTransientError);

  LedgerClient::Options copts;
  copts.lsp_key = ctx->lsp.public_key();
  copts.fractal_height = 10;  // must match OpenLedger's LedgerOptions
  LedgerClient client(&byz, ekey, copts);

  uint64_t last_jsn = 0;
  for (int i = 0; i < 4; ++i) {
    Bytes payload = StringToBytes("stats-exercise-" + std::to_string(i));
    Status s = client.AppendVerified(payload, {"stats-exercise"}, &last_jsn,
                                     nullptr);
    if (!s.ok()) return FailStatus("exercise append", s);
  }
  bool advanced = false;
  Status s = client.RefreshTrustedRoots(&advanced, nullptr);
  if (!s.ok()) return FailStatus("exercise refresh", s);

  FamProof proof;
  s = ctx->ledger->GetProof(last_jsn, &proof);
  if (!s.ok()) return FailStatus("exercise proof", s);

  // Batched proof plane, twice: the second round is served from the proof
  // cache (hit counters and the resident-bytes gauge move), and the
  // client-side batch audit verifies the whole range against the roots
  // refreshed above.
  for (int round = 0; round < 2; ++round) {
    std::vector<Journal> audited;
    s = client.BatchAuditRange("stats-exercise", 0,
                               ctx->clock.Now() + 1, &audited);
    if (!s.ok()) return FailStatus("exercise batch audit", s);
  }

  Receipt receipt;
  s = ctx->ledger->GetReceipt(ctx->ledger->NumJournals() - 1, &receipt);
  if (!s.ok()) return FailStatus("exercise receipt", s);
  DaseinAuditor::Context context;
  context.ledger = ctx->ledger.get();
  context.members = ctx->registry.get();
  context.tsa_key = ctx->tsa->public_key();
  AuditReport report;
  s = DaseinAuditor(context).Audit(receipt, {}, &report);
  if (!s.ok() || !report.passed) return FailStatus("exercise audit", s);
  return 0;
}

int CmdStats(CliContext* ctx, const std::string& seed,
             const std::vector<std::string>& args) {
  std::string format = "json";
  bool exercise = false;
  bool spans = false;
  bool slow = false;
  int watch_secs = 0;
  int ticks = 1;
  for (size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--format" && i + 1 < args.size()) {
      format = args[++i];
    } else if (args[i] == "--exercise") {
      exercise = true;
    } else if (args[i] == "--spans") {
      spans = true;
    } else if (args[i] == "--slow") {
      slow = true;
    } else if (args[i] == "--watch" && i + 1 < args.size()) {
      watch_secs = std::atoi(args[++i].c_str());
      ticks = 0;  // watch runs until interrupted unless --ticks bounds it
    } else if (args[i] == "--ticks" && i + 1 < args.size()) {
      ticks = std::atoi(args[++i].c_str());
    } else {
      return Fail("unknown stats option: " + args[i]);
    }
  }
  if (format != "json" && format != "prom") {
    return Fail("--format must be json or prom");
  }
  if ((spans || slow) && format == "prom") {
    return Fail("--spans/--slow emit JSON only (drop --format prom)");
  }

  for (int tick = 0; ticks == 0 || tick < ticks; ++tick) {
    if (tick > 0) {
      std::this_thread::sleep_for(std::chrono::seconds(watch_secs));
    }
    if (exercise) {
      int rc = RunStatsExercise(ctx, seed);
      if (rc != 0) return rc;
    }
    if (spans || slow) {
      // Ring exports replace the registry snapshot: one JSON object per
      // tick with only the requested sections.
      std::string out = "{";
      if (spans) {
        out += "\"spans\": " +
               obs::SpanRecordsToJson(obs::SpanTracer::Default().Snapshot());
      }
      if (slow) {
        if (spans) out += ", ";
        out += "\"slow_requests\": " +
               obs::RequestRecordsToJson(
                   obs::RequestLog::Default().SlowSnapshot());
      }
      out += "}";
      std::printf("%s\n", out.c_str());
    } else {
      obs::MetricsSnapshot snapshot =
          obs::MetricsRegistry::Default().Snapshot();
      if (format == "json") {
        std::printf("%s\n", snapshot.ToJson().c_str());
      } else {
        std::printf("%s", snapshot.ToPrometheus().c_str());
      }
    }
    std::fflush(stdout);
    if (watch_secs == 0 && ticks == 0) break;  // --ticks 0 without --watch
  }
  return 0;
}

int Usage() {
  std::fprintf(stderr,
               "usage: ledgerdb_cli <init|append|get|verify|lineage|anchor|"
               "occult|purge|audit|status|checkpoint|stats|fsck|receipt|"
               "verify-receipt|serve> <dir> [args...]\n"
               "       append/get/verify/lineage/status also accept "
               "--remote <unix:path|tcp:host:port>\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return Usage();
  std::string command = argv[1];
  std::string dir = argv[2];

  // Strip a global `--remote <addr>` pair anywhere after <dir>; when
  // present, the supporting commands go over the socket instead of
  // reopening the ledger streams.
  std::string remote;
  std::vector<std::string> rest;
  for (int i = 3; i < argc; ++i) {
    if (std::strcmp(argv[i], "--remote") == 0 && i + 1 < argc) {
      remote = argv[++i];
    } else {
      rest.emplace_back(argv[i]);
    }
  }

  if (command == "init") {
    if (rest.size() != 1) return Usage();
    return CmdInit(dir, rest[0]);
  }
  if (command == "fsck") return CmdFsck(dir, rest);

  CliContext ctx;
  if (!remote.empty()) {
    int rc = OpenRemoteContext(&ctx, dir);
    if (rc != 0) return rc;
    if (command == "append" && !rest.empty()) {
      return CmdRemoteAppend(&ctx, remote, rest[0],
                             {rest.begin() + 1, rest.end()});
    }
    if (command == "get" && rest.size() == 1) {
      return CmdRemoteGet(&ctx, remote,
                          std::strtoull(rest[0].c_str(), nullptr, 10));
    }
    if (command == "verify" && rest.size() == 1) {
      return CmdRemoteVerify(&ctx, remote,
                             std::strtoull(rest[0].c_str(), nullptr, 10));
    }
    if (command == "lineage" && rest.size() == 1) {
      return CmdRemoteLineage(&ctx, remote, rest[0]);
    }
    if (command == "status") return CmdRemoteStatus(&ctx, remote);
    return Usage();
  }

  int rc = OpenLedger(&ctx, dir);
  if (rc != 0) return rc;

  if (command == "serve") return CmdServe(&ctx, rest);
  if (command == "append") {
    if (argc < 4) return Usage();
    std::vector<std::string> clues(argv + 4, argv + argc);
    return CmdAppend(&ctx, argv[3], clues);
  }
  if (command == "get" && argc == 4) return CmdGet(&ctx, std::strtoull(argv[3], nullptr, 10));
  if (command == "verify" && argc == 4) return CmdVerify(&ctx, std::strtoull(argv[3], nullptr, 10));
  if (command == "lineage" && argc == 4) return CmdLineage(&ctx, argv[3]);
  if (command == "anchor") return CmdAnchor(&ctx);
  if (command == "occult" && argc == 4) return CmdOccult(&ctx, std::strtoull(argv[3], nullptr, 10));
  if (command == "purge" && argc == 4) return CmdPurge(&ctx, std::strtoull(argv[3], nullptr, 10));
  if (command == "audit") return CmdAudit(&ctx);
  if (command == "status") return CmdStatus(&ctx);
  if (command == "checkpoint") return CmdCheckpoint(&ctx);
  if (command == "stats") {
    std::vector<std::string> args(argv + 3, argv + argc);
    return CmdStats(&ctx, ctx.seed, args);
  }
  if (command == "receipt" && argc == 5) {
    return CmdReceipt(&ctx, std::strtoull(argv[3], nullptr, 10), argv[4]);
  }
  if (command == "verify-receipt" && argc == 4) {
    return CmdVerifyReceipt(&ctx, argv[3]);
  }
  return Usage();
}
