#include <gtest/gtest.h>

#include "common/random.h"
#include "ledger/world_state.h"
#include "mpt/mpt.h"
#include "storage/bitmap_index.h"
#include "storage/node_store.h"

namespace ledgerdb {
namespace {

// ---------------------------------------------------------------------------
// BitmapIndex (the occult bitmap)
// ---------------------------------------------------------------------------

TEST(BitmapIndexTest, SetGetClear) {
  BitmapIndex bitmap;
  EXPECT_FALSE(bitmap.Get(10));
  bitmap.Set(10);
  EXPECT_TRUE(bitmap.Get(10));
  EXPECT_GE(bitmap.size(), 11u);
  bitmap.Clear(10);
  EXPECT_FALSE(bitmap.Get(10));
  EXPECT_EQ(bitmap.Count(), 0u);
}

TEST(BitmapIndexTest, GrowsOnSet) {
  BitmapIndex bitmap;
  bitmap.Set(1000);
  EXPECT_TRUE(bitmap.Get(1000));
  EXPECT_FALSE(bitmap.Get(999));
  EXPECT_EQ(bitmap.Count(), 1u);
}

TEST(BitmapIndexTest, CountRangeAndScan) {
  BitmapIndex bitmap;
  std::vector<uint64_t> positions = {0, 1, 63, 64, 65, 127, 128, 500};
  for (uint64_t p : positions) bitmap.Set(p);
  EXPECT_EQ(bitmap.Count(), positions.size());
  EXPECT_EQ(bitmap.CountRange(0, 64), 3u);    // 0, 1, 63
  EXPECT_EQ(bitmap.CountRange(64, 129), 4u);  // 64, 65, 127, 128
  EXPECT_EQ(bitmap.SetBits(60, 130),
            (std::vector<uint64_t>{63, 64, 65, 127, 128}));
  EXPECT_TRUE(bitmap.SetBits(200, 400).empty());
}

TEST(BitmapIndexTest, NextSetBit) {
  BitmapIndex bitmap;
  bitmap.Set(5);
  bitmap.Set(200);
  EXPECT_EQ(bitmap.NextSetBit(0), 5u);
  EXPECT_EQ(bitmap.NextSetBit(5), 5u);
  EXPECT_EQ(bitmap.NextSetBit(6), 200u);
  EXPECT_EQ(bitmap.NextSetBit(201), bitmap.size());
}

TEST(BitmapIndexTest, MatchesReferenceUnderRandomOps) {
  BitmapIndex bitmap;
  std::vector<bool> reference(2048, false);
  Random rng(88);
  for (int op = 0; op < 5000; ++op) {
    uint64_t pos = rng.Uniform(2048);
    if (rng.Uniform(3) == 0) {
      bitmap.Clear(pos);
      reference[pos] = false;
    } else {
      bitmap.Set(pos);
      reference[pos] = true;
    }
  }
  uint64_t expected = 0;
  for (bool b : reference) expected += b ? 1 : 0;
  EXPECT_EQ(bitmap.Count(), expected);
  for (uint64_t p = 0; p < 2048; ++p) {
    ASSERT_EQ(bitmap.Get(p), reference[p]) << p;
  }
}

// ---------------------------------------------------------------------------
// WorldState current-state proofs
// ---------------------------------------------------------------------------

TEST(WorldStateTest, CurrentProofRoundTrip) {
  WorldState state;
  ASSERT_TRUE(state.Put("acct-1", StringToBytes("balance:100")).ok());
  ASSERT_TRUE(state.Put("acct-2", StringToBytes("balance:50")).ok());
  ASSERT_TRUE(state.Put("acct-1", StringToBytes("balance:80")).ok());

  MptProof proof;
  ASSERT_TRUE(state.GetCurrentProof("acct-1", &proof).ok());
  // Latest version of acct-1 is 1 (second write), value balance:80.
  EXPECT_TRUE(WorldState::VerifyCurrent("acct-1", 1, StringToBytes("balance:80"),
                                        proof, state.CurrentRoot()));
  // A stale value or wrong version fails.
  EXPECT_FALSE(WorldState::VerifyCurrent("acct-1", 0, StringToBytes("balance:100"),
                                         proof, state.CurrentRoot()));
  EXPECT_FALSE(WorldState::VerifyCurrent("acct-1", 1, StringToBytes("balance:81"),
                                         proof, state.CurrentRoot()));
}

TEST(WorldStateTest, CurrentRootTracksLatestOnly) {
  WorldState state;
  ASSERT_TRUE(state.Put("k", StringToBytes("v0")).ok());
  Digest root_v0 = state.CurrentRoot();
  ASSERT_TRUE(state.Put("k", StringToBytes("v1")).ok());
  EXPECT_NE(state.CurrentRoot(), root_v0);
  // The transition accumulator still proves BOTH versions (history),
  // while the MPT proves only the latest (current state).
  MembershipProof update0;
  ASSERT_TRUE(state.GetUpdateProof(0, &update0).ok());
  EXPECT_TRUE(WorldState::VerifyUpdate("k", 0, StringToBytes("v0"), update0,
                                       state.Root()));
}

TEST(WorldStateTest, MissingKeyHasNoCurrentProof) {
  WorldState state;
  ASSERT_TRUE(state.Put("present", StringToBytes("v")).ok());
  MptProof proof;
  EXPECT_TRUE(state.GetCurrentProof("absent", &proof).IsNotFound());
}

// ---------------------------------------------------------------------------
// MPT garbage collection
// ---------------------------------------------------------------------------

TEST(MptGcTest, SweepReclaimsUnreachableSnapshots) {
  MemoryNodeStore store;
  Mpt mpt(&store);
  Digest root = Mpt::EmptyRoot();
  std::vector<Digest> roots;
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(mpt.Put(root, Sha3_256::Hash("k" + std::to_string(i % 50)),
                        Slice(std::string_view("v" + std::to_string(i))), &root)
                    .ok());
    roots.push_back(root);
  }
  size_t before = store.Size();

  // Retain only the latest snapshot.
  std::unordered_set<Digest, DigestHasher> live;
  ASSERT_TRUE(mpt.CollectReachable(root, &live).ok());
  size_t removed = store.Sweep(live);
  EXPECT_GT(removed, 0u);
  EXPECT_EQ(store.Size(), before - removed);
  EXPECT_EQ(store.Size(), live.size());

  // The retained snapshot fully works: gets and proofs for all 50 keys.
  for (int k = 0; k < 50; ++k) {
    Digest key = Sha3_256::Hash("k" + std::to_string(k));
    Bytes value;
    ASSERT_TRUE(mpt.Get(root, key, &value).ok()) << k;
    MptProof proof;
    ASSERT_TRUE(mpt.GetProof(root, key, &proof).ok()) << k;
    EXPECT_TRUE(Mpt::VerifyProof(root, key, Slice(value), proof));
  }
  // An old, swept snapshot no longer resolves.
  Bytes value;
  EXPECT_FALSE(mpt.Get(roots[0], Sha3_256::Hash("k0"), &value).ok());
}

TEST(MptGcTest, MultiRootRetention) {
  MemoryNodeStore store;
  Mpt mpt(&store);
  Digest r1 = Mpt::EmptyRoot(), r2 = Mpt::EmptyRoot();
  ASSERT_TRUE(mpt.Put(r1, Sha3_256::Hash("a"), Slice(std::string_view("1")), &r1).ok());
  r2 = r1;
  ASSERT_TRUE(mpt.Put(r2, Sha3_256::Hash("b"), Slice(std::string_view("2")), &r2).ok());

  // Keep both snapshots: everything stays resolvable.
  std::unordered_set<Digest, DigestHasher> live;
  ASSERT_TRUE(mpt.CollectReachable(r1, &live).ok());
  ASSERT_TRUE(mpt.CollectReachable(r2, &live).ok());
  EXPECT_EQ(store.Sweep(live), 0u);
  Bytes value;
  EXPECT_TRUE(mpt.Get(r1, Sha3_256::Hash("a"), &value).ok());
  EXPECT_TRUE(mpt.Get(r2, Sha3_256::Hash("b"), &value).ok());
}

TEST(MptGcTest, CollectOnEmptyRootIsNoop) {
  MemoryNodeStore store;
  Mpt mpt(&store);
  std::unordered_set<Digest, DigestHasher> live;
  ASSERT_TRUE(mpt.CollectReachable(Mpt::EmptyRoot(), &live).ok());
  EXPECT_TRUE(live.empty());
}

}  // namespace
}  // namespace ledgerdb
