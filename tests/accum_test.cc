#include <gtest/gtest.h>

#include "accum/bim.h"
#include "accum/fam.h"
#include "accum/naive_merkle.h"
#include "accum/shrubs.h"
#include "accum/tim.h"
#include "common/random.h"

namespace ledgerdb {
namespace {

Digest TestDigest(uint64_t i) {
  Bytes buf;
  PutU64(&buf, i);
  return Sha256::Hash(buf);
}

// ---------------------------------------------------------------------------
// Shrubs accumulator
// ---------------------------------------------------------------------------

TEST(ShrubsTest, EmptyAccumulator) {
  ShrubsAccumulator acc;
  EXPECT_TRUE(acc.empty());
  EXPECT_TRUE(acc.Frontier().empty());
  EXPECT_TRUE(acc.Root().IsZero());
}

TEST(ShrubsTest, FrontierSizeIsPopcount) {
  // Figure 3(a): the node-set proof tracks the peak set, whose size equals
  // popcount(n).
  ShrubsAccumulator acc;
  for (uint64_t n = 1; n <= 64; ++n) {
    acc.Append(TestDigest(n));
    EXPECT_EQ(acc.Frontier().size(),
              static_cast<size_t>(__builtin_popcountll(n)))
        << "n=" << n;
  }
}

TEST(ShrubsTest, AppendIsAmortizedConstant) {
  // Total hashes after n appends must be < 2n (1 leaf hash + <1 merge
  // amortized), unlike an eager-root design.
  ShrubsAccumulator acc;
  const uint64_t n = 4096;
  for (uint64_t i = 0; i < n; ++i) acc.Append(TestDigest(i));
  EXPECT_LT(acc.HashCount(), 2 * n);
  EXPECT_GE(acc.HashCount(), n);
}

TEST(ShrubsTest, ProofRoundTripAllLeaves) {
  ShrubsAccumulator acc;
  const uint64_t n = 100;
  for (uint64_t i = 0; i < n; ++i) acc.Append(TestDigest(i));
  Digest root = acc.Root();
  for (uint64_t i = 0; i < n; ++i) {
    MembershipProof proof;
    ASSERT_TRUE(acc.GetProof(i, &proof).ok());
    EXPECT_TRUE(ShrubsAccumulator::VerifyProof(TestDigest(i), proof, root))
        << "leaf " << i;
    EXPECT_TRUE(ShrubsAccumulator::VerifyProofAgainstPeaks(TestDigest(i), proof,
                                                           acc.Frontier()));
  }
}

TEST(ShrubsTest, ProofRejectsWrongPayload) {
  ShrubsAccumulator acc;
  for (uint64_t i = 0; i < 37; ++i) acc.Append(TestDigest(i));
  MembershipProof proof;
  ASSERT_TRUE(acc.GetProof(5, &proof).ok());
  // 'foobar' exists, 'foopar' must fail (§III-A existence semantics).
  EXPECT_TRUE(ShrubsAccumulator::VerifyProof(TestDigest(5), proof, acc.Root()));
  EXPECT_FALSE(ShrubsAccumulator::VerifyProof(TestDigest(6), proof, acc.Root()));
}

TEST(ShrubsTest, ProofRejectsTamperedSibling) {
  ShrubsAccumulator acc;
  for (uint64_t i = 0; i < 64; ++i) acc.Append(TestDigest(i));
  MembershipProof proof;
  ASSERT_TRUE(acc.GetProof(10, &proof).ok());
  ASSERT_FALSE(proof.siblings.empty());
  proof.siblings[0].bytes[0] ^= 1;
  EXPECT_FALSE(ShrubsAccumulator::VerifyProof(TestDigest(10), proof, acc.Root()));
}

TEST(ShrubsTest, ProofRejectsTamperedPeak) {
  ShrubsAccumulator acc;
  for (uint64_t i = 0; i < 37; ++i) acc.Append(TestDigest(i));
  MembershipProof proof;
  ASSERT_TRUE(acc.GetProof(36, &proof).ok());
  proof.peaks[0].bytes[5] ^= 0x40;
  EXPECT_FALSE(ShrubsAccumulator::VerifyProof(TestDigest(36), proof, acc.Root()));
}

TEST(ShrubsTest, HistoricalProofs) {
  ShrubsAccumulator acc;
  std::vector<Digest> roots;
  for (uint64_t i = 0; i < 200; ++i) {
    acc.Append(TestDigest(i));
    roots.push_back(acc.Root());
  }
  // Every leaf verifies against every historical root that includes it.
  Random rng(3);
  for (int trial = 0; trial < 50; ++trial) {
    uint64_t as_of = rng.Range(1, 200);
    uint64_t leaf = rng.Uniform(as_of);
    MembershipProof proof;
    ASSERT_TRUE(acc.GetProofAtSize(leaf, as_of, &proof).ok());
    EXPECT_TRUE(
        ShrubsAccumulator::VerifyProof(TestDigest(leaf), proof, roots[as_of - 1]))
        << "leaf " << leaf << " as_of " << as_of;
  }
}

TEST(ShrubsTest, OutOfRangeProofsRejected) {
  ShrubsAccumulator acc;
  acc.Append(TestDigest(0));
  MembershipProof proof;
  EXPECT_TRUE(acc.GetProof(1, &proof).IsOutOfRange());
  EXPECT_TRUE(acc.GetProofAtSize(0, 2, &proof).IsOutOfRange());
}

TEST(ShrubsTest, SingleLeafProofIsItself) {
  // Figure 3(a): "The proof for cell1 is {cell1} itself."
  ShrubsAccumulator acc;
  acc.Append(TestDigest(1));
  MembershipProof proof;
  ASSERT_TRUE(acc.GetProof(0, &proof).ok());
  EXPECT_TRUE(proof.siblings.empty());
  EXPECT_EQ(proof.peaks.size(), 1u);
  EXPECT_EQ(acc.Root(), proof.peaks[0]);
}

TEST(ShrubsTest, NodeAccess) {
  ShrubsAccumulator acc;
  for (uint64_t i = 0; i < 8; ++i) acc.Append(TestDigest(i));
  Digest node, left, right, parent;
  ASSERT_TRUE(acc.GetNode(0, 0, &left).ok());
  ASSERT_TRUE(acc.GetNode(0, 1, &right).ok());
  ASSERT_TRUE(acc.GetNode(1, 0, &parent).ok());
  EXPECT_EQ(HashMerkleNode(left, right), parent);
  EXPECT_TRUE(acc.GetNode(4, 0, &node).IsOutOfRange());
  EXPECT_TRUE(acc.GetNode(0, 8, &node).IsOutOfRange());
}

// Property sweep: proofs verify at many accumulator sizes, including
// powers of two and their neighbors (mountain-boundary edge cases).
class ShrubsPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ShrubsPropertyTest, AllProofsVerify) {
  const uint64_t n = GetParam();
  ShrubsAccumulator acc;
  for (uint64_t i = 0; i < n; ++i) acc.Append(TestDigest(i * 31 + 7));
  Digest root = acc.Root();
  for (uint64_t i = 0; i < n; ++i) {
    MembershipProof proof;
    ASSERT_TRUE(acc.GetProof(i, &proof).ok());
    ASSERT_TRUE(
        ShrubsAccumulator::VerifyProof(TestDigest(i * 31 + 7), proof, root))
        << "n=" << n << " leaf=" << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, ShrubsPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 7, 8, 9, 15, 16, 17, 31,
                                           32, 33, 63, 64, 65, 127, 128, 255));

// ---------------------------------------------------------------------------
// tim accumulator
// ---------------------------------------------------------------------------

TEST(TimTest, RootMatchesShrubsBaggedRoot) {
  TimAccumulator tim;
  ShrubsAccumulator shrubs;
  for (uint64_t i = 0; i < 100; ++i) {
    tim.Append(TestDigest(i));
    shrubs.Append(TestDigest(i));
    EXPECT_EQ(tim.Root(), shrubs.Root());
  }
}

TEST(TimTest, ProofsVerify) {
  TimAccumulator tim;
  for (uint64_t i = 0; i < 300; ++i) tim.Append(TestDigest(i));
  for (uint64_t i : {0ULL, 1ULL, 150ULL, 299ULL}) {
    MembershipProof proof;
    ASSERT_TRUE(tim.GetProof(i, &proof).ok());
    EXPECT_TRUE(TimAccumulator::VerifyProof(TestDigest(i), proof, tim.Root()));
  }
}

TEST(TimTest, EagerRootCostsMoreHashesThanShrubs) {
  TimAccumulator tim;
  ShrubsAccumulator shrubs;
  for (uint64_t i = 0; i < 4096; ++i) {
    tim.Append(TestDigest(i));
    shrubs.Append(TestDigest(i));
  }
  EXPECT_GT(tim.HashCount(), shrubs.HashCount());
}

TEST(TimTest, ProofLengthGrowsWithLedgerSize) {
  TimAccumulator small, large;
  for (uint64_t i = 0; i < 64; ++i) small.Append(TestDigest(i));
  for (uint64_t i = 0; i < 65536; ++i) large.Append(TestDigest(i));
  MembershipProof ps, pl;
  ASSERT_TRUE(small.GetProof(3, &ps).ok());
  ASSERT_TRUE(large.GetProof(3, &pl).ok());
  EXPECT_GT(pl.CostInHashes(), ps.CostInHashes());
}

// ---------------------------------------------------------------------------
// bim chain
// ---------------------------------------------------------------------------

TEST(BimTest, BlocksSealAtCapacity) {
  BimChain chain(8);
  for (uint64_t i = 0; i < 20; ++i) chain.Append(TestDigest(i));
  EXPECT_EQ(chain.NumBlocks(), 2u);  // 16 sealed, 4 pending
  chain.Flush();
  EXPECT_EQ(chain.NumBlocks(), 3u);
}

TEST(BimTest, HeaderChainValidates) {
  BimChain chain(4);
  for (uint64_t i = 0; i < 16; ++i) chain.Append(TestDigest(i));
  EXPECT_TRUE(chain.ValidateHeaderChain());
}

TEST(BimTest, ProofsVerifyAgainstHeaders) {
  BimChain chain(16);
  for (uint64_t i = 0; i < 64; ++i) chain.Append(TestDigest(i));
  for (uint64_t i = 0; i < 64; ++i) {
    BimProof proof;
    ASSERT_TRUE(chain.GetProof(i, &proof).ok());
    const BimBlockHeader& header = chain.headers()[proof.block_height];
    EXPECT_TRUE(BimChain::VerifyProof(TestDigest(i), proof, header));
    EXPECT_FALSE(BimChain::VerifyProof(TestDigest(i + 1), proof, header));
  }
}

TEST(BimTest, UnsealedTransactionHasNoProof) {
  BimChain chain(8);
  chain.Append(TestDigest(0));
  BimProof proof;
  EXPECT_TRUE(chain.GetProof(0, &proof).IsNotFound());
  chain.Flush();
  EXPECT_TRUE(chain.GetProof(0, &proof).ok());
}

TEST(BimTest, TamperedHeaderChainDetected) {
  BimChain chain(4);
  for (uint64_t i = 0; i < 12; ++i) chain.Append(TestDigest(i));
  auto headers = chain.headers();
  // A proof bound to the wrong block height fails.
  BimProof proof;
  ASSERT_TRUE(chain.GetProof(0, &proof).ok());
  EXPECT_FALSE(BimChain::VerifyProof(TestDigest(0), proof, headers[1]));
}

// ---------------------------------------------------------------------------
// fam accumulator
// ---------------------------------------------------------------------------

TEST(FamTest, EpochSealing) {
  FamAccumulator fam(3);  // epoch capacity 8
  EXPECT_EQ(fam.epoch_capacity(), 8u);
  for (uint64_t i = 0; i < 8; ++i) fam.Append(TestDigest(i));
  EXPECT_EQ(fam.NumSealedEpochs(), 1u);
  // After sealing, epoch 1 already holds the merged cell; 7 more journals
  // fill it.
  for (uint64_t i = 8; i < 15; ++i) fam.Append(TestDigest(i));
  EXPECT_EQ(fam.NumSealedEpochs(), 2u);
}

TEST(FamTest, RootCommitsHistoryThroughMergedCell) {
  FamAccumulator fam(3);
  for (uint64_t i = 0; i < 8; ++i) fam.Append(TestDigest(i));
  Digest sealed_root;
  ASSERT_TRUE(fam.SealedEpochRoot(0, &sealed_root).ok());
  // The live epoch contains exactly the merged cell; its root must commit
  // the sealed epoch root.
  ShrubsAccumulator expect;
  expect.Append(sealed_root);
  EXPECT_EQ(fam.Root(), expect.Root());
}

TEST(FamTest, ProofsVerifyAcrossEpochs) {
  FamAccumulator fam(4);  // capacity 16
  const uint64_t n = 100;
  for (uint64_t i = 0; i < n; ++i) fam.Append(TestDigest(i));
  Digest root = fam.Root();
  for (uint64_t i = 0; i < n; ++i) {
    FamProof proof;
    ASSERT_TRUE(fam.GetProof(i, &proof).ok());
    EXPECT_TRUE(FamAccumulator::VerifyProof(TestDigest(i), proof, root))
        << "jsn " << i;
    EXPECT_FALSE(FamAccumulator::VerifyProof(TestDigest(i + 1), proof, root));
  }
}

TEST(FamTest, AnchoredProofSkipsHistory) {
  FamAccumulator fam(4);
  for (uint64_t i = 0; i < 200; ++i) fam.Append(TestDigest(i));
  TrustedAnchor anchor;
  ASSERT_TRUE(fam.MakeAnchor(&anchor).ok());

  // Journal in the anchored epoch: the anchored proof is shorter than the
  // full-chain proof for an early journal.
  FamProof full, anchored;
  ASSERT_TRUE(fam.GetProof(1, &full).ok());
  ASSERT_TRUE(fam.GetProofAnchored(1, anchor, &anchored).ok());
  EXPECT_TRUE(FamAccumulator::VerifyProofAnchored(TestDigest(1), anchored, anchor));
  EXPECT_LE(anchored.epoch_links.size(), full.epoch_links.size());
}

TEST(FamTest, AnchoredProofRejectsJournalAfterAnchor) {
  FamAccumulator fam(3);
  for (uint64_t i = 0; i < 20; ++i) fam.Append(TestDigest(i));
  TrustedAnchor anchor;
  ASSERT_TRUE(fam.MakeAnchor(&anchor).ok());
  FamProof proof;
  // jsn 19 lives in the live epoch (after the anchor).
  EXPECT_TRUE(fam.GetProofAnchored(19, anchor, &proof).IsInvalidArgument());
}

TEST(FamTest, AnchoredVerifyRejectsWrongAnchor) {
  FamAccumulator fam(3);
  for (uint64_t i = 0; i < 32; ++i) fam.Append(TestDigest(i));
  TrustedAnchor anchor;
  ASSERT_TRUE(fam.MakeAnchor(&anchor).ok());
  FamProof proof;
  ASSERT_TRUE(fam.GetProofAnchored(0, anchor, &proof).ok());
  TrustedAnchor bad = anchor;
  bad.epoch_root.bytes[0] ^= 1;
  EXPECT_FALSE(FamAccumulator::VerifyProofAnchored(TestDigest(0), proof, bad));
}

TEST(FamTest, ProofRejectsTamperedLink) {
  FamAccumulator fam(3);
  for (uint64_t i = 0; i < 40; ++i) fam.Append(TestDigest(i));
  FamProof proof;
  ASSERT_TRUE(fam.GetProof(0, &proof).ok());
  ASSERT_FALSE(proof.epoch_links.empty());
  proof.epoch_links[0].peaks[0].bytes[3] ^= 2;
  EXPECT_FALSE(FamAccumulator::VerifyProof(TestDigest(0), proof, fam.Root()));
}

TEST(FamTest, ProofRejectsNonMergedLinkLeaf) {
  FamAccumulator fam(3);
  for (uint64_t i = 0; i < 40; ++i) fam.Append(TestDigest(i));
  FamProof proof;
  ASSERT_TRUE(fam.GetProof(0, &proof).ok());
  ASSERT_FALSE(proof.epoch_links.empty());
  proof.epoch_links[0].leaf_index = 1;  // merged cell must be leaf 0
  EXPECT_FALSE(FamAccumulator::VerifyProof(TestDigest(0), proof, fam.Root()));
}

TEST(FamTest, MakeAnchorRequiresSealedEpoch) {
  FamAccumulator fam(5);
  fam.Append(TestDigest(0));
  TrustedAnchor anchor;
  EXPECT_TRUE(fam.MakeAnchor(&anchor).IsNotFound());
}

TEST(FamTest, ProofCostBoundedByEpochCapacity) {
  // For journals in the live epoch with an up-to-date ledger, the local
  // path length never exceeds the fractal height δ (Figure 4's O(H) bound),
  // whereas tim's path keeps growing.
  FamAccumulator fam(4);
  TimAccumulator tim;
  const uint64_t n = 1 << 12;
  for (uint64_t i = 0; i < n; ++i) {
    fam.Append(TestDigest(i));
    tim.Append(TestDigest(i));
  }
  FamProof fproof;
  ASSERT_TRUE(fam.GetProof(n - 1, &fproof).ok());
  EXPECT_LE(fproof.local.siblings.size(), 4u);
  MembershipProof tproof;
  ASSERT_TRUE(tim.GetProof(n - 1, &tproof).ok());
  EXPECT_GE(tproof.CostInHashes(), 11u);  // log2(4096) - ish
}

TEST(FamVerifierTest, SyncAndVerifyAllJournals) {
  FamAccumulator fam(3);
  FamVerifier verifier;
  for (uint64_t i = 0; i < 50; ++i) {
    fam.Append(TestDigest(i));
    ASSERT_TRUE(verifier.Sync(fam).ok());
  }
  EXPECT_EQ(verifier.TrustedEpochs(), fam.NumSealedEpochs());
  for (uint64_t i = 0; i < 50; ++i) {
    MembershipProof proof;
    uint64_t epoch = 0;
    ASSERT_TRUE(fam.GetEpochProof(i, &proof, &epoch).ok());
    EXPECT_TRUE(verifier.Verify(TestDigest(i), proof, epoch)) << i;
    EXPECT_FALSE(verifier.Verify(TestDigest(i + 1), proof, epoch));
  }
}

TEST(FamVerifierTest, LateSyncCatchesUp) {
  FamAccumulator fam(3);
  for (uint64_t i = 0; i < 100; ++i) fam.Append(TestDigest(i));
  FamVerifier verifier;
  ASSERT_TRUE(verifier.Sync(fam).ok());
  MembershipProof proof;
  uint64_t epoch = 0;
  ASSERT_TRUE(fam.GetEpochProof(7, &proof, &epoch).ok());
  EXPECT_TRUE(verifier.Verify(TestDigest(7), proof, epoch));
}

TEST(FamVerifierTest, RejectsFutureEpoch) {
  FamAccumulator fam(3);
  for (uint64_t i = 0; i < 40; ++i) fam.Append(TestDigest(i));
  FamVerifier verifier;
  ASSERT_TRUE(verifier.Sync(fam).ok());
  MembershipProof proof;
  uint64_t epoch = 0;
  ASSERT_TRUE(fam.GetEpochProof(39, &proof, &epoch).ok());
  // Claiming an epoch beyond the verifier's horizon fails closed.
  EXPECT_FALSE(verifier.Verify(TestDigest(39), proof, epoch + 5));
}

TEST(FamVerifierTest, EpochLinkOutOfRange) {
  FamAccumulator fam(3);
  fam.Append(TestDigest(0));
  MembershipProof link;
  EXPECT_TRUE(fam.GetEpochLink(0, &link).IsOutOfRange());
}

TEST(FamTest, RootAtJournalCountMatchesHistory) {
  FamAccumulator fam(3);
  std::vector<Digest> roots;
  for (uint64_t i = 0; i < 60; ++i) {
    fam.Append(TestDigest(i));
    roots.push_back(fam.Root());
  }
  for (uint64_t count = 1; count <= 60; ++count) {
    Digest root;
    ASSERT_TRUE(fam.RootAtJournalCount(count, &root).ok());
    EXPECT_EQ(root, roots[count - 1]) << "count=" << count;
  }
  Digest zero;
  ASSERT_TRUE(fam.RootAtJournalCount(0, &zero).ok());
  EXPECT_TRUE(zero.IsZero());
  EXPECT_TRUE(fam.RootAtJournalCount(61, &zero).IsOutOfRange());
}

class FamHeightTest : public ::testing::TestWithParam<int> {};

TEST_P(FamHeightTest, RandomProofsVerifyAtManyHeights) {
  const int delta = GetParam();
  FamAccumulator fam(delta);
  const uint64_t n = 3 * fam.epoch_capacity() + 5;
  for (uint64_t i = 0; i < n; ++i) fam.Append(TestDigest(i));
  Digest root = fam.Root();
  Random rng(delta);
  for (int trial = 0; trial < 64; ++trial) {
    uint64_t jsn = rng.Uniform(n);
    FamProof proof;
    ASSERT_TRUE(fam.GetProof(jsn, &proof).ok());
    ASSERT_TRUE(FamAccumulator::VerifyProof(TestDigest(jsn), proof, root))
        << "delta=" << delta << " jsn=" << jsn;
  }
}

INSTANTIATE_TEST_SUITE_P(Heights, FamHeightTest, ::testing::Values(1, 2, 3, 5, 8));

// ---------------------------------------------------------------------------
// Naive Merkle (ablation strawman)
// ---------------------------------------------------------------------------

TEST(NaiveMerkleTest, RootMatchesManualComputation) {
  NaiveMerkleTree tree;
  Digest a = TestDigest(1), b = TestDigest(2);
  tree.Append(a);
  tree.Append(b);
  EXPECT_EQ(tree.Root(), HashMerkleNode(HashMerkleLeaf(a), HashMerkleLeaf(b)));
}

TEST(NaiveMerkleTest, RebuildCostIsLinear) {
  NaiveMerkleTree tree;
  for (uint64_t i = 0; i < 256; ++i) tree.Append(TestDigest(i));
  uint64_t before = tree.HashCount();
  tree.Root();
  uint64_t cost = tree.HashCount() - before;
  EXPECT_GE(cost, 255u);  // full rebuild
}

}  // namespace
}  // namespace ledgerdb
