#include <gtest/gtest.h>

#include <map>

#include "common/random.h"
#include "mpt/mpt.h"
#include "storage/node_store.h"

namespace ledgerdb {
namespace {

Digest KeyOf(const std::string& name) { return Sha3_256::Hash(name); }

Bytes ValueOf(const std::string& v) { return StringToBytes(v); }

class MptTest : public ::testing::Test {
 protected:
  MemoryNodeStore store_;
};

TEST_F(MptTest, EmptyTrieHasNoKeys) {
  Mpt mpt(&store_);
  Bytes value;
  EXPECT_TRUE(mpt.Get(Mpt::EmptyRoot(), KeyOf("a"), &value).IsNotFound());
}

TEST_F(MptTest, SingleInsertAndGet) {
  Mpt mpt(&store_);
  Digest root;
  ASSERT_TRUE(
      mpt.Put(Mpt::EmptyRoot(), KeyOf("clue-1"), Slice(std::string_view("v1")), &root).ok());
  Bytes value;
  ASSERT_TRUE(mpt.Get(root, KeyOf("clue-1"), &value).ok());
  EXPECT_EQ(value, ValueOf("v1"));
  EXPECT_TRUE(mpt.Get(root, KeyOf("clue-2"), &value).IsNotFound());
}

TEST_F(MptTest, OverwriteValue) {
  Mpt mpt(&store_);
  Digest r1, r2;
  ASSERT_TRUE(mpt.Put(Mpt::EmptyRoot(), KeyOf("k"), Slice(std::string_view("old")), &r1).ok());
  ASSERT_TRUE(mpt.Put(r1, KeyOf("k"), Slice(std::string_view("new")), &r2).ok());
  Bytes value;
  ASSERT_TRUE(mpt.Get(r2, KeyOf("k"), &value).ok());
  EXPECT_EQ(value, ValueOf("new"));
  // Old snapshot still serves the old value (copy-on-write versioning).
  ASSERT_TRUE(mpt.Get(r1, KeyOf("k"), &value).ok());
  EXPECT_EQ(value, ValueOf("old"));
}

TEST_F(MptTest, ManyKeysAgainstReferenceMap) {
  Mpt mpt(&store_);
  Random rng(17);
  std::map<std::string, std::string> reference;
  Digest root = Mpt::EmptyRoot();
  for (int i = 0; i < 500; ++i) {
    std::string key = "clue-" + std::to_string(rng.Uniform(200));
    std::string value = "v" + std::to_string(i);
    reference[key] = value;
    ASSERT_TRUE(mpt.Put(root, KeyOf(key), Slice(std::string_view(value)), &root).ok());
  }
  for (const auto& [key, value] : reference) {
    Bytes out;
    ASSERT_TRUE(mpt.Get(root, KeyOf(key), &out).ok()) << key;
    EXPECT_EQ(out, StringToBytes(value)) << key;
  }
}

TEST_F(MptTest, SnapshotsAreImmutable) {
  Mpt mpt(&store_);
  std::vector<Digest> roots;
  Digest root = Mpt::EmptyRoot();
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(mpt.Put(root, KeyOf("k" + std::to_string(i)),
                        Slice(std::string_view("v")), &root)
                    .ok());
    roots.push_back(root);
  }
  // Snapshot i contains keys 0..i and nothing later.
  for (int i = 0; i < 50; ++i) {
    Bytes value;
    EXPECT_TRUE(mpt.Get(roots[i], KeyOf("k" + std::to_string(i)), &value).ok());
    if (i + 1 < 50) {
      EXPECT_TRUE(mpt.Get(roots[i], KeyOf("k" + std::to_string(i + 1)), &value)
                      .IsNotFound());
    }
  }
}

TEST_F(MptTest, ProofRoundTrip) {
  Mpt mpt(&store_);
  Digest root = Mpt::EmptyRoot();
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(mpt.Put(root, KeyOf("key" + std::to_string(i)),
                        Slice(std::string_view("value" + std::to_string(i))), &root)
                    .ok());
  }
  for (int i = 0; i < 100; ++i) {
    MptProof proof;
    Digest key = KeyOf("key" + std::to_string(i));
    ASSERT_TRUE(mpt.GetProof(root, key, &proof).ok());
    Bytes expected = ValueOf("value" + std::to_string(i));
    EXPECT_TRUE(Mpt::VerifyProof(root, key, Slice(expected), proof)) << i;
  }
}

TEST_F(MptTest, ProofRejectsWrongValue) {
  Mpt mpt(&store_);
  Digest root = Mpt::EmptyRoot();
  ASSERT_TRUE(mpt.Put(Mpt::EmptyRoot(), KeyOf("k"), Slice(std::string_view("true-value")), &root).ok());
  MptProof proof;
  ASSERT_TRUE(mpt.GetProof(root, KeyOf("k"), &proof).ok());
  Bytes forged = ValueOf("forged-value");
  EXPECT_FALSE(Mpt::VerifyProof(root, KeyOf("k"), Slice(forged), proof));
}

TEST_F(MptTest, ProofRejectsWrongRoot) {
  Mpt mpt(&store_);
  Digest root = Mpt::EmptyRoot();
  ASSERT_TRUE(mpt.Put(root, KeyOf("k"), Slice(std::string_view("v")), &root).ok());
  MptProof proof;
  ASSERT_TRUE(mpt.GetProof(root, KeyOf("k"), &proof).ok());
  Digest bad_root = root;
  bad_root.bytes[0] ^= 1;
  Bytes v = ValueOf("v");
  EXPECT_FALSE(Mpt::VerifyProof(bad_root, KeyOf("k"), Slice(v), proof));
}

TEST_F(MptTest, ProofRejectsTamperedNode) {
  Mpt mpt(&store_);
  Digest root = Mpt::EmptyRoot();
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(mpt.Put(root, KeyOf("k" + std::to_string(i)),
                        Slice(std::string_view("v")), &root)
                    .ok());
  }
  MptProof proof;
  ASSERT_TRUE(mpt.GetProof(root, KeyOf("k3"), &proof).ok());
  ASSERT_GT(proof.nodes.size(), 1u);
  proof.nodes[1][proof.nodes[1].size() / 2] ^= 0x55;
  Bytes v = ValueOf("v");
  EXPECT_FALSE(Mpt::VerifyProof(root, KeyOf("k3"), Slice(v), proof));
}

TEST_F(MptTest, ProofRejectsWrongKey) {
  Mpt mpt(&store_);
  Digest root = Mpt::EmptyRoot();
  ASSERT_TRUE(mpt.Put(root, KeyOf("k1"), Slice(std::string_view("v")), &root).ok());
  ASSERT_TRUE(mpt.Put(root, KeyOf("k2"), Slice(std::string_view("v")), &root).ok());
  MptProof proof;
  ASSERT_TRUE(mpt.GetProof(root, KeyOf("k1"), &proof).ok());
  Bytes v = ValueOf("v");
  EXPECT_FALSE(Mpt::VerifyProof(root, KeyOf("k2"), Slice(v), proof));
}

TEST_F(MptTest, EmptyProofRejected) {
  MptProof proof;
  Bytes v = ValueOf("v");
  EXPECT_FALSE(Mpt::VerifyProof(KeyOf("root"), KeyOf("k"), Slice(v), proof));
}

TEST_F(MptTest, TieredStoreCachesTopLayers) {
  TieredNodeStore tiered(std::make_unique<MemoryNodeStore>());
  Mpt mpt(&tiered, /*cache_depth=*/2);
  Digest root = Mpt::EmptyRoot();
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(mpt.Put(root, KeyOf("clue" + std::to_string(i)),
                        Slice(std::string_view("v")), &root)
                    .ok());
  }
  // Some nodes landed in the hot tier, but not all.
  EXPECT_GT(tiered.HotSize(), 0u);
  EXPECT_GT(tiered.Size(), tiered.HotSize());
  // Reads work across tiers.
  Bytes value;
  EXPECT_TRUE(mpt.Get(root, KeyOf("clue42"), &value).ok());
}

TEST_F(MptTest, DeterministicRootForSameContent) {
  // Insertion order must not affect the final root (canonical trie).
  Mpt mpt(&store_);
  Digest r1 = Mpt::EmptyRoot(), r2 = Mpt::EmptyRoot();
  std::vector<std::string> keys = {"a", "b", "c", "d", "e", "f", "g", "h"};
  for (const auto& k : keys) {
    ASSERT_TRUE(mpt.Put(r1, KeyOf(k), Slice(std::string_view("v-" + k)), &r1).ok());
  }
  for (auto it = keys.rbegin(); it != keys.rend(); ++it) {
    ASSERT_TRUE(mpt.Put(r2, KeyOf(*it), Slice(std::string_view("v-" + *it)), &r2).ok());
  }
  EXPECT_EQ(r1, r2);
}

// Property sweep: different key counts exercise leaf-split, extension-split
// and deep-branch paths.
class MptPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(MptPropertyTest, AllInsertedKeysProvable) {
  MemoryNodeStore store;
  Mpt mpt(&store);
  const int n = GetParam();
  Digest root = Mpt::EmptyRoot();
  for (int i = 0; i < n; ++i) {
    ASSERT_TRUE(mpt.Put(root, KeyOf("key-" + std::to_string(i)),
                        Slice(std::string_view(std::to_string(i * i))), &root)
                    .ok());
  }
  for (int i = 0; i < n; ++i) {
    Digest key = KeyOf("key-" + std::to_string(i));
    MptProof proof;
    ASSERT_TRUE(mpt.GetProof(root, key, &proof).ok()) << i;
    Bytes expected = StringToBytes(std::to_string(i * i));
    ASSERT_TRUE(Mpt::VerifyProof(root, key, Slice(expected), proof)) << i;
  }
}

INSTANTIATE_TEST_SUITE_P(KeyCounts, MptPropertyTest,
                         ::testing::Values(1, 2, 3, 5, 16, 64, 257, 1000));

}  // namespace
}  // namespace ledgerdb
