// The fault matrix: every (RPC op x fault kind x fault point) cell runs a
// fixed client scenario against a fresh ledger and must land in exactly one
// of two outcomes:
//
//   MASKED   — the scenario completes, the ledger is bit-identical to the
//              honest baseline (roots + journal count), and BOTH audits
//              (server-side Dasein-complete, transport-level RemoteAudit)
//              still pass; or
//   DETECTED — some step returns an explicit error (VerificationFailed /
//              Corruption / IOError after retry exhaustion / ...).
//
// Silent acceptance — the scenario "succeeds" but the state diverges from
// the baseline or an audit fails — is a test failure in every cell. Each
// cell is run twice from the same seed and must replay bit-identically.

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "audit/dasein_auditor.h"
#include "audit/remote_audit.h"
#include "client/ledger_client.h"
#include "net/byzantine_transport.h"
#include "net/transport.h"

namespace ledgerdb {
namespace {

constexpr uint64_t kMatrixSeed = 0x1ed9e7db04ull;

struct Cell {
  RpcOp op;
  FaultKind kind;
  uint64_t nth;
};

struct RunResult {
  bool ok = false;
  std::string error;       // status of the first failing step, "" if none
  std::string step;        // which scenario step failed
  std::string fam, clue, state;
  uint64_t journals = 0;
  uint64_t faults = 0;
  bool dasein_ok = false;  // only meaningful when ok
  bool remote_ok = false;  // only meaningful when ok
  std::string dasein_why, remote_why;

  std::string Fingerprint() const {
    return (ok ? "ok" : "err:" + step + ":" + error) + "|" + fam + "|" + clue +
           "|" + state + "|" + std::to_string(journals) + "|" +
           std::to_string(faults);
  }
};

class ByzantineMatrixTest : public ::testing::Test {
 protected:
  ByzantineMatrixTest()
      : ca_(KeyPair::FromSeedString("matrix-ca")),
        lsp_(KeyPair::FromSeedString("matrix-lsp")),
        alice_(KeyPair::FromSeedString("matrix-alice")) {}

  /// Runs the fixed scenario with `kind` scheduled at the `nth` occurrence
  /// of `op`. Everything — clock, keys, seed — is held constant so two
  /// runs of the same cell are bit-identical.
  RunResult RunScenario(RpcOp op, FaultKind kind, uint64_t nth) {
    RunResult r;
    SimulatedClock clock(1000 * kMicrosPerSecond);
    MemberRegistry registry(&ca_);
    registry.Register(ca_.Certify("lsp", lsp_.public_key(), Role::kLsp));
    registry.Register(ca_.Certify("alice", alice_.public_key(), Role::kUser));
    LedgerOptions options;
    options.fractal_height = 3;
    options.block_capacity = 4;
    Ledger ledger("lg://matrix", options, &clock, lsp_, &registry);
    LocalTransport local(&ledger);
    ByzantineTransport byz(&local, kMatrixSeed);
    if (kind != FaultKind::kNone) byz.InjectFault(op, nth, kind);

    LedgerClient::Options copts;
    copts.lsp_key = lsp_.public_key();
    copts.fractal_height = options.fractal_height;
    LedgerClient client(&byz, alice_, copts);

    // The scenario touches every RPC op at least once:
    //   refresh, 3 appends (clue "asset"), refresh, verify one journal,
    //   verify the clue lineage, re-check the first receipt.
    uint64_t first_jsn = 0;
    Status s;
    auto step = [&](const char* name, Status st) {
      if (r.error.empty() && !st.ok()) {
        r.step = name;
        r.error = st.ToString();
      }
      return st.ok() && r.error.empty();
    };
    bool go = step("refresh-1", client.RefreshTrustedRoots());
    for (int i = 0; go && i < 3; ++i) {
      uint64_t jsn = 0;
      go = step("append",
                client.AppendVerified(StringToBytes("tx-" + std::to_string(i)),
                                      {"asset"}, &jsn));
      if (go && i == 0) first_jsn = jsn;
    }
    if (go) go = step("refresh-2", client.RefreshTrustedRoots());
    if (go) {
      Journal journal;
      go = step("verify-journal", client.FetchAndVerifyJournal(first_jsn,
                                                               &journal));
    }
    if (go) {
      std::vector<Journal> lineage;
      go = step("verify-lineage",
                client.FetchAndVerifyLineage("asset", &lineage));
      if (go && lineage.size() != 3) {
        r.step = "verify-lineage";
        r.error = "lineage size " + std::to_string(lineage.size());
        go = false;
      }
    }
    if (go) {
      go = step("receipt-recheck",
                client.CheckReceiptStillHolds(client.receipts().front()));
    }
    r.ok = go;
    r.fam = ledger.FamRoot().ToHex();
    r.clue = ledger.ClueRoot().ToHex();
    r.state = ledger.StateRoot().ToHex();
    r.journals = ledger.NumJournals();
    r.faults = byz.faults_injected();

    if (r.ok) {
      // A masked cell must still pass BOTH audits on the post-fault ledger.
      DaseinAuditor::Context context;
      context.ledger = &ledger;
      context.members = &registry;
      AuditReport dreport;
      DaseinAuditor auditor(context);
      Status ds = auditor.Audit(client.receipts().back(), {}, &dreport);
      r.dasein_ok = ds.ok() && dreport.passed;
      if (!r.dasein_ok) r.dasein_why = ds.ToString() + dreport.failure_reason;

      LocalTransport honest(&ledger);
      RemoteAuditOptions ropts;
      ropts.lsp_key = lsp_.public_key();
      ropts.fractal_height = options.fractal_height;
      RemoteAuditReport rreport;
      Status rs = RemoteAudit(&honest, ropts, &rreport);
      r.remote_ok = rs.ok() && rreport.passed;
      if (!r.remote_ok) r.remote_why = rs.ToString() + rreport.failure_reason;
    }
    return r;
  }

  CertificateAuthority ca_;
  KeyPair lsp_, alice_;
};

const RpcOp kAllOps[] = {
    RpcOp::kAppendTx,   RpcOp::kGetReceipt,    RpcOp::kGetJournal,
    RpcOp::kGetProof,   RpcOp::kGetClueProof,  RpcOp::kListTx,
    RpcOp::kGetCommitment, RpcOp::kGetDelta,
};

const FaultKind kNetworkFaults[] = {
    FaultKind::kDrop, FaultKind::kDelay, FaultKind::kDuplicate,
    FaultKind::kReorder, FaultKind::kTransientError,
};

const FaultKind kMutationFaults[] = {
    FaultKind::kForgeProof, FaultKind::kTruncateProof, FaultKind::kStaleRoot,
    FaultKind::kSubstituteReceipt, FaultKind::kCorruptPayload,
};

std::string CellName(RpcOp op, FaultKind kind, uint64_t nth) {
  return std::string(RpcOpName(op)) + "/" + FaultKindName(kind) + "/#" +
         std::to_string(nth);
}

TEST_F(ByzantineMatrixTest, HonestBaselinePassesBothAudits) {
  RunResult base = RunScenario(RpcOp::kAppendTx, FaultKind::kNone, 0);
  ASSERT_TRUE(base.ok) << base.step << ": " << base.error;
  EXPECT_EQ(base.faults, 0u);
  EXPECT_TRUE(base.dasein_ok) << base.dasein_why;
  EXPECT_TRUE(base.remote_ok) << base.remote_why;
  EXPECT_EQ(base.journals, 4u);  // genesis + 3 appends
}

TEST_F(ByzantineMatrixTest, NetworkFaultsAreMaskedEverywhere) {
  RunResult base = RunScenario(RpcOp::kAppendTx, FaultKind::kNone, 0);
  ASSERT_TRUE(base.ok) << base.step << ": " << base.error;
  for (RpcOp op : kAllOps) {
    for (FaultKind kind : kNetworkFaults) {
      for (uint64_t nth : {uint64_t{0}, uint64_t{1}}) {
        std::string cell = CellName(op, kind, nth);
        RunResult r = RunScenario(op, kind, nth);
        EXPECT_TRUE(r.ok) << cell << " not masked: " << r.step << ": "
                          << r.error;
        if (!r.ok) continue;
        // Retries must converge on the honest ledger, bit for bit.
        EXPECT_EQ(r.fam, base.fam) << cell;
        EXPECT_EQ(r.clue, base.clue) << cell;
        EXPECT_EQ(r.state, base.state) << cell;
        EXPECT_EQ(r.journals, base.journals) << cell;
        EXPECT_TRUE(r.dasein_ok) << cell << ": " << r.dasein_why;
        EXPECT_TRUE(r.remote_ok) << cell << ": " << r.remote_why;
      }
    }
  }
}

TEST_F(ByzantineMatrixTest, MutationFaultsAreDetectedOrProvablyHarmless) {
  RunResult base = RunScenario(RpcOp::kAppendTx, FaultKind::kNone, 0);
  ASSERT_TRUE(base.ok) << base.step << ": " << base.error;

  // Cells where detection is structurally guaranteed (hand-checked): the
  // mutated field is load-bearing for a client check on every possible
  // seeded mutation. Other mutation cells may degrade to honest
  // passthrough (typed fault not applicable to the op, or the nth
  // occurrence never happens) — those must be provably harmless instead.
  std::set<std::string> must_detect;
  for (uint64_t nth : {uint64_t{0}, uint64_t{1}}) {
    must_detect.insert(CellName(RpcOp::kAppendTx, FaultKind::kForgeProof, nth));
    must_detect.insert(
        CellName(RpcOp::kAppendTx, FaultKind::kSubstituteReceipt, nth));
    must_detect.insert(
        CellName(RpcOp::kGetReceipt, FaultKind::kForgeProof, nth));
    must_detect.insert(
        CellName(RpcOp::kGetReceipt, FaultKind::kSubstituteReceipt, nth));
    must_detect.insert(
        CellName(RpcOp::kGetJournal, FaultKind::kSubstituteReceipt, nth));
    must_detect.insert(
        CellName(RpcOp::kGetJournal, FaultKind::kCorruptPayload, nth));
    must_detect.insert(
        CellName(RpcOp::kGetCommitment, FaultKind::kForgeProof, nth));
    must_detect.insert(
        CellName(RpcOp::kGetDelta, FaultKind::kTruncateProof, nth));
  }
  must_detect.insert(CellName(RpcOp::kGetProof, FaultKind::kForgeProof, 0));
  must_detect.insert(CellName(RpcOp::kGetProof, FaultKind::kTruncateProof, 0));
  must_detect.insert(
      CellName(RpcOp::kGetClueProof, FaultKind::kTruncateProof, 0));
  must_detect.insert(CellName(RpcOp::kListTx, FaultKind::kForgeProof, 0));
  must_detect.insert(CellName(RpcOp::kListTx, FaultKind::kTruncateProof, 0));
  must_detect.insert(CellName(RpcOp::kGetCommitment, FaultKind::kStaleRoot, 1));
  must_detect.insert(CellName(RpcOp::kGetDelta, FaultKind::kForgeProof, 1));

  int detected = 0, harmless = 0;
  for (RpcOp op : kAllOps) {
    for (FaultKind kind : kMutationFaults) {
      for (uint64_t nth : {uint64_t{0}, uint64_t{1}}) {
        std::string cell = CellName(op, kind, nth);
        RunResult r = RunScenario(op, kind, nth);
        if (!r.ok) {
          ++detected;  // explicit error: detection, never silent
          continue;
        }
        if (must_detect.count(cell)) {
          ADD_FAILURE() << cell << " must be detected but the scenario "
                        << "completed without an error";
          continue;
        }
        // The cell claims to be harmless — prove it: bit-identical ledger
        // AND both audits pass. Anything else is silent acceptance.
        ++harmless;
        EXPECT_EQ(r.fam, base.fam) << cell << " silently diverged";
        EXPECT_EQ(r.clue, base.clue) << cell << " silently diverged";
        EXPECT_EQ(r.state, base.state) << cell << " silently diverged";
        EXPECT_EQ(r.journals, base.journals) << cell << " silently diverged";
        EXPECT_TRUE(r.dasein_ok) << cell << ": " << r.dasein_why;
        EXPECT_TRUE(r.remote_ok) << cell << ": " << r.remote_why;
      }
    }
  }
  // The matrix is 8 ops x 5 mutation kinds x 2 points = 80 cells; the
  // hand-checked floor keeps the detection machinery honest.
  EXPECT_GE(detected, static_cast<int>(must_detect.size()));
  EXPECT_GT(harmless, 0);
}

TEST_F(ByzantineMatrixTest, EveryCellReplaysBitIdenticallyFromItsSeed) {
  for (RpcOp op : kAllOps) {
    for (FaultKind kind : kNetworkFaults) {
      RunResult a = RunScenario(op, kind, 0);
      RunResult b = RunScenario(op, kind, 0);
      EXPECT_EQ(a.Fingerprint(), b.Fingerprint()) << CellName(op, kind, 0);
    }
    for (FaultKind kind : kMutationFaults) {
      RunResult a = RunScenario(op, kind, 0);
      RunResult b = RunScenario(op, kind, 0);
      EXPECT_EQ(a.Fingerprint(), b.Fingerprint()) << CellName(op, kind, 0);
    }
  }
}

}  // namespace
}  // namespace ledgerdb
