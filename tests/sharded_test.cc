#include <gtest/gtest.h>

#include "ledger/sharded.h"

namespace ledgerdb {
namespace {

class ShardedTest : public ::testing::Test {
 protected:
  ShardedTest()
      : clock_(0),
        ca_(KeyPair::FromSeedString("sh-ca")),
        registry_(&ca_),
        lsp_(KeyPair::FromSeedString("sh-lsp")),
        user_(KeyPair::FromSeedString("sh-user")) {
    registry_.Register(ca_.Certify("lsp", lsp_.public_key(), Role::kLsp));
    registry_.Register(ca_.Certify("user", user_.public_key(), Role::kUser));
    LedgerOptions options;
    options.fractal_height = 4;
    group_ = std::make_unique<ShardedLedgerGroup>("lg://group", 4, options,
                                                  &clock_, lsp_, &registry_);
  }

  ClientTransaction MakeTx(const std::string& payload,
                           std::vector<std::string> clues = {}) {
    ClientTransaction tx;
    tx.ledger_uri = "lg://group";
    tx.clues = std::move(clues);
    tx.payload = StringToBytes(payload);
    tx.nonce = nonce_++;
    tx.Sign(user_);
    return tx;
  }

  SimulatedClock clock_;
  CertificateAuthority ca_;
  MemberRegistry registry_;
  KeyPair lsp_, user_;
  std::unique_ptr<ShardedLedgerGroup> group_;
  uint64_t nonce_ = 0;
};

TEST_F(ShardedTest, AppendsSpreadAcrossShards) {
  std::vector<size_t> hits(4, 0);
  for (int i = 0; i < 200; ++i) {
    ShardedLedgerGroup::Location loc;
    ASSERT_TRUE(group_->Append(MakeTx("p" + std::to_string(i)), &loc).ok());
    ++hits[loc.shard];
  }
  // All shards get meaningful traffic under hash routing.
  for (size_t shard = 0; shard < 4; ++shard) {
    EXPECT_GT(hits[shard], 20u) << "shard " << shard;
  }
  EXPECT_EQ(group_->TotalJournals(), 200u + 4u);  // + per-shard genesis
}

TEST_F(ShardedTest, ClueLineageStaysOnOneShard) {
  std::vector<ShardedLedgerGroup::Location> locations;
  for (int i = 0; i < 10; ++i) {
    ShardedLedgerGroup::Location loc;
    ASSERT_TRUE(
        group_->Append(MakeTx("e" + std::to_string(i), {"asset-7"}), &loc).ok());
    locations.push_back(loc);
  }
  for (const auto& loc : locations) {
    EXPECT_EQ(loc.shard, locations[0].shard);
  }
  size_t shard = 0;
  std::vector<uint64_t> jsns;
  ASSERT_TRUE(group_->ListTx("asset-7", &jsns, &shard).ok());
  EXPECT_EQ(shard, locations[0].shard);
  EXPECT_EQ(jsns.size(), 10u);

  // Full lineage verification via the owning shard.
  std::vector<Digest> digests;
  for (uint64_t jsn : jsns) {
    Journal j;
    ASSERT_TRUE(group_->GetJournal({shard, jsn}, &j).ok());
    digests.push_back(j.TxHash());
  }
  ClueProof proof;
  ASSERT_TRUE(group_->GetClueProof("asset-7", 0, 0, &proof, nullptr).ok());
  EXPECT_TRUE(CmTree::VerifyClueProof(group_->shard(shard)->ClueRoot(), digests,
                                      proof));
}

TEST_F(ShardedTest, MixedShardCluesRejected) {
  // Find two clues that map to different shards.
  std::string a = "clue-a", b;
  for (int i = 0;; ++i) {
    b = "clue-" + std::to_string(i);
    if (group_->ShardOfClue(b) != group_->ShardOfClue(a)) break;
  }
  ShardedLedgerGroup::Location loc;
  EXPECT_TRUE(group_->Append(MakeTx("x", {a, b}), &loc).IsInvalidArgument());
}

TEST_F(ShardedTest, GroupCommitmentVerification) {
  ShardedLedgerGroup::Location loc;
  ASSERT_TRUE(group_->Append(MakeTx("verify-me"), &loc).ok());
  GroupCommitment commitment = group_->Commitment();
  Digest pinned = commitment.Combined();

  Journal journal;
  ASSERT_TRUE(group_->GetJournal(loc, &journal).ok());
  FamProof proof;
  ASSERT_TRUE(group_->GetProof(loc, &proof).ok());
  EXPECT_TRUE(ShardedLedgerGroup::VerifyJournalProof(journal, proof, loc,
                                                     commitment, pinned));

  // Forged sibling shard root breaks the combined digest.
  GroupCommitment forged = commitment;
  forged.shard_roots[(loc.shard + 1) % 4].bytes[0] ^= 1;
  EXPECT_FALSE(ShardedLedgerGroup::VerifyJournalProof(journal, proof, loc,
                                                      forged, pinned));
  // Forged journal fails against the honest commitment.
  Journal tampered = journal;
  tampered.payload = StringToBytes("other");
  tampered.payload_digest = Sha256::Hash(tampered.payload);
  EXPECT_FALSE(ShardedLedgerGroup::VerifyJournalProof(tampered, proof, loc,
                                                      commitment, pinned));
}

TEST_F(ShardedTest, CommitmentChangesOnAnyShardWrite) {
  Digest before = group_->Commitment().Combined();
  ShardedLedgerGroup::Location loc;
  ASSERT_TRUE(group_->Append(MakeTx("one more"), &loc).ok());
  EXPECT_NE(group_->Commitment().Combined(), before);
}

TEST_F(ShardedTest, ReceiptsWorkThroughTheGroup) {
  ShardedLedgerGroup::Location loc;
  ASSERT_TRUE(group_->Append(MakeTx("receipted"), &loc).ok());
  Receipt receipt;
  ASSERT_TRUE(group_->GetReceipt(loc, &receipt).ok());
  EXPECT_TRUE(receipt.Verify(group_->shard(loc.shard)->lsp_key()));
}

TEST_F(ShardedTest, InvalidShardLocationsRejected) {
  Journal journal;
  EXPECT_TRUE(group_->GetJournal({9, 0}, &journal).IsInvalidArgument());
  FamProof proof;
  EXPECT_TRUE(group_->GetProof({9, 0}, &proof).IsInvalidArgument());
}

}  // namespace
}  // namespace ledgerdb
