#include <gtest/gtest.h>

#include "audit/dasein_auditor.h"

namespace ledgerdb {
namespace {

class AuditTest : public ::testing::Test {
 protected:
  AuditTest()
      : clock_(1700000000LL * kMicrosPerSecond),
        ca_(KeyPair::FromSeedString("ca")),
        registry_(&ca_),
        lsp_key_(KeyPair::FromSeedString("lsp")),
        alice_(KeyPair::FromSeedString("alice")),
        bob_(KeyPair::FromSeedString("bob")),
        dba_(KeyPair::FromSeedString("dba")),
        regulator_(KeyPair::FromSeedString("regulator")),
        tsa_key_(KeyPair::FromSeedString("tsa")),
        tsa_(tsa_key_, &clock_),
        tledger_(&tsa_, &clock_, KeyPair::FromSeedString("tl-lsp"), {}) {
    registry_.Register(ca_.Certify("lsp", lsp_key_.public_key(), Role::kLsp));
    registry_.Register(ca_.Certify("alice", alice_.public_key(), Role::kUser));
    registry_.Register(ca_.Certify("bob", bob_.public_key(), Role::kUser));
    registry_.Register(ca_.Certify("dba", dba_.public_key(), Role::kDba));
    registry_.Register(
        ca_.Certify("regulator", regulator_.public_key(), Role::kRegulator));
    LedgerOptions options;
    options.fractal_height = 4;
    options.block_capacity = 4;
    ledger_ = std::make_unique<Ledger>("lg://audit", options, &clock_,
                                       lsp_key_, &registry_);
  }

  uint64_t Append(const KeyPair& signer, const std::string& payload,
                  std::vector<std::string> clues = {}) {
    ClientTransaction tx;
    tx.ledger_uri = "lg://audit";
    tx.clues = std::move(clues);
    tx.payload = StringToBytes(payload);
    tx.nonce = nonce_++;
    tx.client_ts = clock_.Now();
    tx.Sign(signer);
    uint64_t jsn = 0;
    EXPECT_TRUE(ledger_->Append(tx, &jsn).ok());
    clock_.Advance(50 * kMicrosPerMilli);
    return jsn;
  }

  DaseinAuditor MakeAuditor(bool with_tledger = false) {
    DaseinAuditor::Context context;
    context.ledger = ledger_.get();
    context.members = &registry_;
    context.tsa_key = tsa_.public_key();
    context.tledger = with_tledger ? &tledger_ : nullptr;
    return DaseinAuditor(context);
  }

  Receipt LatestReceipt() {
    Receipt receipt;
    EXPECT_TRUE(ledger_->GetReceipt(ledger_->NumJournals() - 1, &receipt).ok());
    return receipt;
  }

  Endorsement Endorse(const KeyPair& key, const Digest& request) {
    return Endorsement{key.public_key(), key.Sign(request)};
  }

  SimulatedClock clock_;
  CertificateAuthority ca_;
  MemberRegistry registry_;
  KeyPair lsp_key_, alice_, bob_, dba_, regulator_, tsa_key_;
  TsaService tsa_;
  TLedger tledger_;
  std::unique_ptr<Ledger> ledger_;
  uint64_t nonce_ = 0;
};

TEST_F(AuditTest, CleanLedgerPasses) {
  ledger_->AttachDirectTsa(&tsa_);
  for (int i = 0; i < 10; ++i) Append(i % 2 ? alice_ : bob_, "p" + std::to_string(i));
  ASSERT_TRUE(ledger_->AnchorTime(nullptr).ok());
  for (int i = 0; i < 5; ++i) Append(alice_, "q" + std::to_string(i));
  ASSERT_TRUE(ledger_->AnchorTime(nullptr).ok());
  Receipt receipt = LatestReceipt();

  AuditReport report;
  ASSERT_TRUE(MakeAuditor().Audit(receipt, {}, &report).ok())
      << report.failure_reason;
  EXPECT_TRUE(report.passed);
  EXPECT_EQ(report.time_journals_verified, 2u);
  EXPECT_GT(report.journals_replayed, 15u);
  EXPECT_GT(report.blocks_verified, 2u);
  EXPECT_GT(report.signatures_verified, 15u);
  EXPECT_GT(report.boundaries_verified, 0u);
}

TEST_F(AuditTest, TLedgerEvidencePasses) {
  ledger_->AttachTLedger(&tledger_);
  for (int i = 0; i < 6; ++i) Append(alice_, "p" + std::to_string(i));
  ASSERT_TRUE(ledger_->AnchorTime(nullptr).ok());
  tledger_.ForceFinalize();
  Receipt receipt = LatestReceipt();
  AuditReport report;
  ASSERT_TRUE(MakeAuditor(/*with_tledger=*/true).Audit(receipt, {}, &report).ok())
      << report.failure_reason;
  EXPECT_TRUE(report.passed);
  EXPECT_EQ(report.time_journals_verified, 1u);
}

TEST_F(AuditTest, TLedgerEvidenceWithoutContextFails) {
  ledger_->AttachTLedger(&tledger_);
  Append(alice_, "p");
  ASSERT_TRUE(ledger_->AnchorTime(nullptr).ok());
  tledger_.ForceFinalize();
  Receipt receipt = LatestReceipt();
  AuditReport report;
  EXPECT_TRUE(MakeAuditor(false).Audit(receipt, {}, &report).IsVerificationFailed());
  EXPECT_FALSE(report.passed);
}

TEST_F(AuditTest, AuditSurvivesOccult) {
  uint64_t target = Append(alice_, "pii-data");
  Append(bob_, "other");
  Digest request = Ledger::OccultRequestHash("lg://audit", target);
  std::vector<Endorsement> sigs = {Endorse(dba_, request),
                                   Endorse(regulator_, request)};
  ASSERT_TRUE(ledger_->Occult(target, sigs, nullptr).ok());
  ledger_->ReorganizeOcculted();
  Receipt receipt = LatestReceipt();
  AuditReport report;
  ASSERT_TRUE(MakeAuditor().Audit(receipt, {}, &report).ok())
      << report.failure_reason;
  EXPECT_TRUE(report.passed);
  EXPECT_EQ(report.occult_journals, 1u);
}

TEST_F(AuditTest, AuditSurvivesPurge) {
  for (int i = 0; i < 8; ++i) Append(alice_, "p" + std::to_string(i));
  Digest request = Ledger::PurgeRequestHash("lg://audit", 5);
  std::vector<Endorsement> sigs = {Endorse(dba_, request),
                                   Endorse(alice_, request)};
  ASSERT_TRUE(ledger_->Purge(5, sigs, {}, nullptr).ok());
  Append(bob_, "after-purge");
  Receipt receipt = LatestReceipt();
  AuditReport report;
  ASSERT_TRUE(MakeAuditor().Audit(receipt, {}, &report).ok())
      << report.failure_reason;
  EXPECT_TRUE(report.passed);
  EXPECT_EQ(report.purge_journals, 1u);
}

TEST_F(AuditTest, ForgedReceiptFails) {
  Append(alice_, "p");
  Receipt receipt = LatestReceipt();
  receipt.tx_hash.bytes[0] ^= 1;
  receipt.lsp_sig = lsp_key_.Sign(receipt.MessageHash());  // LSP collusion
  AuditReport report;
  EXPECT_TRUE(MakeAuditor().Audit(receipt, {}, &report).IsVerificationFailed());
  EXPECT_FALSE(report.passed);
  EXPECT_NE(report.failure_reason.find("receipt"), std::string::npos);
}

TEST_F(AuditTest, ReceiptSignedByImpostorFails) {
  Append(alice_, "p");
  Receipt receipt = LatestReceipt();
  KeyPair impostor = KeyPair::FromSeedString("impostor");
  receipt.lsp_sig = impostor.Sign(receipt.MessageHash());
  AuditReport report;
  EXPECT_TRUE(MakeAuditor().Audit(receipt, {}, &report).IsVerificationFailed());
}

TEST_F(AuditTest, TemporalPredicateFiltersTimeJournals) {
  ledger_->AttachDirectTsa(&tsa_);
  Append(alice_, "early");
  ASSERT_TRUE(ledger_->AnchorTime(nullptr).ok());
  Timestamp cutoff = clock_.Now();
  clock_.Advance(10 * kMicrosPerSecond);
  Append(alice_, "late");
  ASSERT_TRUE(ledger_->AnchorTime(nullptr).ok());
  Receipt receipt = LatestReceipt();

  AuditOptions options;
  options.to = cutoff;
  AuditReport report;
  ASSERT_TRUE(MakeAuditor().Audit(receipt, options, &report).ok())
      << report.failure_reason;
  EXPECT_EQ(report.time_journals_verified, 1u);
}

TEST_F(AuditTest, TemporalPredicateScopesJournalReplay) {
  ledger_->AttachDirectTsa(&tsa_);
  for (int i = 0; i < 8; ++i) Append(alice_, "early" + std::to_string(i));
  Timestamp cutoff = clock_.Now();
  clock_.Advance(100 * kMicrosPerSecond);
  for (int i = 0; i < 8; ++i) Append(alice_, "late" + std::to_string(i));
  ledger_->SealBlock();
  Receipt receipt = LatestReceipt();

  // Unbounded audit replays everything.
  AuditReport full;
  ASSERT_TRUE(MakeAuditor().Audit(receipt, {}, &full).ok());

  // Bounded audit replays only the journals before the cutoff.
  AuditOptions options;
  options.to = cutoff;
  AuditReport scoped;
  ASSERT_TRUE(MakeAuditor().Audit(receipt, options, &scoped).ok())
      << scoped.failure_reason;
  EXPECT_TRUE(scoped.passed);
  EXPECT_LT(scoped.journals_replayed, full.journals_replayed);
  EXPECT_GT(scoped.journals_replayed, 0u);
}

TEST_F(AuditTest, WorldStateUpdateProofs) {
  Append(alice_, "v0", {"acct"});
  Append(alice_, "v1", {"acct"});
  // The two transitions are provable against the state root.
  for (uint64_t version = 0; version < 2; ++version) {
    MembershipProof proof;
    ASSERT_TRUE(ledger_->GetStateUpdateProof(version, &proof).ok());
    Bytes value =
        Sha256::Hash(std::string_view(version == 0 ? "v0" : "v1")).ToBytes();
    EXPECT_TRUE(WorldState::VerifyUpdate("acct", version, value, proof,
                                         ledger_->StateRoot()));
    // A forged value fails.
    Bytes forged = Sha256::Hash(std::string_view("vX")).ToBytes();
    EXPECT_FALSE(WorldState::VerifyUpdate("acct", version, forged, proof,
                                          ledger_->StateRoot()));
  }
}

TEST_F(AuditTest, PerFactorEntryPoints) {
  ledger_->AttachDirectTsa(&tsa_);
  for (int i = 0; i < 6; ++i) Append(alice_, "p" + std::to_string(i));
  ASSERT_TRUE(ledger_->AnchorTime(nullptr).ok());
  ledger_->SealBlock();
  DaseinAuditor auditor = MakeAuditor();
  AuditReport report;
  EXPECT_TRUE(auditor.VerifyWho(0, ledger_->NumJournals(), &report).ok());
  EXPECT_TRUE(auditor.VerifyWhen({}, &report).ok());
  EXPECT_TRUE(auditor.VerifyWhatRange(0, ledger_->NumJournals(), &report).ok());
  EXPECT_GT(report.signatures_verified, 0u);
  EXPECT_GT(report.journals_replayed, 0u);
  EXPECT_EQ(report.time_journals_verified, 1u);
}

}  // namespace
}  // namespace ledgerdb
