#include <gtest/gtest.h>

#include "ledger/ledger.h"

namespace ledgerdb {
namespace {

/// Fixture for the extended ledger features: unified Verify API,
/// timestamp-bounded clue ranges, occult-by-clue, fam pruning on purge,
/// and the TSA pool attachment.
class LedgerFeaturesTest : public ::testing::Test {
 protected:
  LedgerFeaturesTest()
      : clock_(1000 * kMicrosPerSecond),
        ca_(KeyPair::FromSeedString("f-ca")),
        registry_(&ca_),
        lsp_(KeyPair::FromSeedString("f-lsp")),
        alice_(KeyPair::FromSeedString("f-alice")),
        dba_(KeyPair::FromSeedString("f-dba")),
        regulator_(KeyPair::FromSeedString("f-reg")) {
    registry_.Register(ca_.Certify("lsp", lsp_.public_key(), Role::kLsp));
    registry_.Register(ca_.Certify("alice", alice_.public_key(), Role::kUser));
    registry_.Register(ca_.Certify("dba", dba_.public_key(), Role::kDba));
    registry_.Register(ca_.Certify("reg", regulator_.public_key(), Role::kRegulator));
    LedgerOptions options;
    options.fractal_height = 3;
    options.block_capacity = 4;
    ledger_ = std::make_unique<Ledger>("lg://f", options, &clock_, lsp_,
                                       &registry_);
  }

  uint64_t Append(const std::string& payload,
                  std::vector<std::string> clues = {}) {
    ClientTransaction tx;
    tx.ledger_uri = "lg://f";
    tx.clues = std::move(clues);
    tx.payload = StringToBytes(payload);
    tx.nonce = nonce_++;
    tx.client_ts = clock_.Now();
    tx.Sign(alice_);
    uint64_t jsn = 0;
    EXPECT_TRUE(ledger_->Append(tx, &jsn).ok());
    clock_.Advance(kMicrosPerSecond);
    return jsn;
  }

  Digest TxHashOf(uint64_t jsn) {
    Journal j;
    EXPECT_TRUE(ledger_->GetJournal(jsn, &j).ok());
    return j.TxHash();
  }

  SimulatedClock clock_;
  CertificateAuthority ca_;
  MemberRegistry registry_;
  KeyPair lsp_, alice_, dba_, regulator_;
  std::unique_ptr<Ledger> ledger_;
  uint64_t nonce_ = 0;
};

// ---------------------------------------------------------------------------
// Unified Verify API
// ---------------------------------------------------------------------------

TEST_F(LedgerFeaturesTest, VerifyJournalBothLevels) {
  uint64_t jsn = Append("data");
  Digest tx_hash = TxHashOf(jsn);
  bool valid = false;
  ASSERT_TRUE(ledger_->VerifyJournal(jsn, tx_hash, Ledger::VerifyLevel::kServer,
                                     Digest(), &valid).ok());
  EXPECT_TRUE(valid);
  ASSERT_TRUE(ledger_->VerifyJournal(jsn, tx_hash, Ledger::VerifyLevel::kClient,
                                     ledger_->FamRoot(), &valid).ok());
  EXPECT_TRUE(valid);

  Digest forged = tx_hash;
  forged.bytes[0] ^= 1;
  ASSERT_TRUE(ledger_->VerifyJournal(jsn, forged, Ledger::VerifyLevel::kServer,
                                     Digest(), &valid).ok());
  EXPECT_FALSE(valid);
  ASSERT_TRUE(ledger_->VerifyJournal(jsn, forged, Ledger::VerifyLevel::kClient,
                                     ledger_->FamRoot(), &valid).ok());
  EXPECT_FALSE(valid);
}

TEST_F(LedgerFeaturesTest, ClientVerifyDetectsLyingRoot) {
  uint64_t jsn = Append("data");
  Digest tx_hash = TxHashOf(jsn);
  Digest wrong_root = ledger_->FamRoot();
  wrong_root.bytes[5] ^= 0x20;
  bool valid = true;
  ASSERT_TRUE(ledger_->VerifyJournal(jsn, tx_hash, Ledger::VerifyLevel::kClient,
                                     wrong_root, &valid).ok());
  EXPECT_FALSE(valid);
}

TEST_F(LedgerFeaturesTest, VerifyClueBothLevels) {
  std::vector<Digest> digests;
  for (int i = 0; i < 4; ++i) digests.push_back(TxHashOf(Append("e" + std::to_string(i), {"k"})));
  bool valid = false;
  ASSERT_TRUE(ledger_->VerifyClue("k", digests, 0, 0, Ledger::VerifyLevel::kClient,
                                  ledger_->ClueRoot(), &valid).ok());
  EXPECT_TRUE(valid);
  ASSERT_TRUE(ledger_->VerifyClue("k", digests, 0, 0,
                                  Ledger::VerifyLevel::kServer, Digest(), &valid).ok());
  EXPECT_TRUE(valid);
  digests[2].bytes[0] ^= 1;
  ASSERT_TRUE(ledger_->VerifyClue("k", digests, 0, 0, Ledger::VerifyLevel::kClient,
                                  ledger_->ClueRoot(), &valid).ok());
  EXPECT_FALSE(valid);
}

// ---------------------------------------------------------------------------
// Timestamp-bounded clue ranges
// ---------------------------------------------------------------------------

TEST_F(LedgerFeaturesTest, ResolveClueRangeByTimestamp) {
  // Entries at t0, t0+1s, t0+2s, ... (clock advances 1s per append).
  std::vector<Timestamp> stamps;
  std::vector<Digest> digests;
  for (int i = 0; i < 6; ++i) {
    stamps.push_back(clock_.Now());
    digests.push_back(TxHashOf(Append("v" + std::to_string(i), {"series"})));
  }
  uint64_t begin = 0, end = 0;
  // Select the middle entries [1, 4).
  ASSERT_TRUE(
      ledger_->ResolveClueRange("series", stamps[1], stamps[4], &begin, &end).ok());
  EXPECT_EQ(begin, 1u);
  EXPECT_EQ(end, 4u);

  // The resolved range verifies end to end.
  ClueProof proof;
  ASSERT_TRUE(ledger_->GetClueProof("series", begin, end, &proof).ok());
  std::vector<Digest> range(digests.begin() + 1, digests.begin() + 4);
  EXPECT_TRUE(CmTree::VerifyClueProof(ledger_->ClueRoot(), range, proof));
}

TEST_F(LedgerFeaturesTest, ResolveClueRangeEmptyAndUnknown) {
  Append("v", {"series"});
  uint64_t begin, end;
  EXPECT_TRUE(ledger_->ResolveClueRange("nope", 0, 10, &begin, &end).IsNotFound());
  EXPECT_TRUE(ledger_->ResolveClueRange("series", 0, 1, &begin, &end).IsNotFound());
}

// ---------------------------------------------------------------------------
// Occult by clue
// ---------------------------------------------------------------------------

TEST_F(LedgerFeaturesTest, OccultByClueHidesAllEntries) {
  std::vector<uint64_t> jsns;
  std::vector<Digest> digests;
  for (int i = 0; i < 3; ++i) {
    jsns.push_back(Append("pii-" + std::to_string(i), {"person-42"}));
    digests.push_back(TxHashOf(jsns.back()));
  }
  Append("unrelated", {"other"});

  Digest req = Ledger::OccultClueRequestHash("lg://f", "person-42");
  std::vector<Endorsement> sigs = {{dba_.public_key(), dba_.Sign(req)},
                                   {regulator_.public_key(), regulator_.Sign(req)}};
  size_t count = 0;
  uint64_t oj = 0;
  ASSERT_TRUE(ledger_->OccultByClue("person-42", sigs, &count, &oj).ok());
  EXPECT_EQ(count, 3u);

  for (uint64_t jsn : jsns) {
    Journal j;
    ASSERT_TRUE(ledger_->GetJournal(jsn, &j).ok());
    EXPECT_TRUE(j.occulted);
    EXPECT_TRUE(j.payload.empty());
  }
  // The lineage itself remains verifiable (retained digests).
  ClueProof proof;
  ASSERT_TRUE(ledger_->GetClueProof("person-42", 0, 0, &proof).ok());
  EXPECT_TRUE(CmTree::VerifyClueProof(ledger_->ClueRoot(), digests, proof));
  // Unrelated journals untouched.
  Journal other;
  std::vector<uint64_t> other_jsns;
  ASSERT_TRUE(ledger_->ListTx("other", &other_jsns).ok());
  ASSERT_TRUE(ledger_->GetJournal(other_jsns[0], &other).ok());
  EXPECT_FALSE(other.occulted);
}

TEST_F(LedgerFeaturesTest, OccultByClueNeedsBothRoles) {
  Append("x", {"c"});
  Digest req = Ledger::OccultClueRequestHash("lg://f", "c");
  std::vector<Endorsement> only_dba = {{dba_.public_key(), dba_.Sign(req)}};
  size_t count;
  EXPECT_TRUE(
      ledger_->OccultByClue("c", only_dba, &count, nullptr).IsPermissionDenied());
}

TEST_F(LedgerFeaturesTest, OccultByClueIdempotentPerEntry) {
  uint64_t jsn = Append("x", {"c"});
  Digest one_req = Ledger::OccultRequestHash("lg://f", jsn);
  std::vector<Endorsement> one_sigs = {{dba_.public_key(), dba_.Sign(one_req)},
                                       {regulator_.public_key(), regulator_.Sign(one_req)}};
  ASSERT_TRUE(ledger_->Occult(jsn, one_sigs, nullptr).ok());

  Append("y", {"c"});
  Digest req = Ledger::OccultClueRequestHash("lg://f", "c");
  std::vector<Endorsement> sigs = {{dba_.public_key(), dba_.Sign(req)},
                                   {regulator_.public_key(), regulator_.Sign(req)}};
  size_t count = 0;
  ASSERT_TRUE(ledger_->OccultByClue("c", sigs, &count, nullptr).ok());
  EXPECT_EQ(count, 1u);  // only the not-yet-occulted entry
}

// ---------------------------------------------------------------------------
// fam pruning on purge
// ---------------------------------------------------------------------------

TEST_F(LedgerFeaturesTest, PruneFamOnPurgeFreesNodesKeepsRecentProofs) {
  LedgerOptions options;
  options.fractal_height = 3;  // 8-leaf epochs
  options.block_capacity = 4;
  options.prune_fam_on_purge = true;
  Ledger pruned("lg://f", options, &clock_, lsp_, &registry_);

  auto append = [&](const std::string& p) {
    ClientTransaction tx;
    tx.ledger_uri = "lg://f";
    tx.payload = StringToBytes(p);
    tx.nonce = nonce_++;
    tx.Sign(alice_);
    uint64_t jsn = 0;
    EXPECT_TRUE(pruned.Append(tx, &jsn).ok());
    return jsn;
  };
  for (int i = 0; i < 40; ++i) append("p" + std::to_string(i));

  Digest req = Ledger::PurgeRequestHash("lg://f", 30);
  std::vector<Endorsement> sigs = {{dba_.public_key(), dba_.Sign(req)},
                                   {alice_.public_key(), alice_.Sign(req)}};
  ASSERT_TRUE(pruned.Purge(30, sigs, {}, nullptr).ok());

  // Proofs for deep history are gone...
  FamProof proof;
  EXPECT_TRUE(pruned.GetProof(2, &proof).IsNotFound());
  // ...but recent journals still prove against the full chain, because
  // pruned epochs kept their merged-cell link paths.
  Journal recent;
  ASSERT_TRUE(pruned.GetJournal(35, &recent).ok());
  ASSERT_TRUE(pruned.GetProof(35, &proof).ok());
  EXPECT_TRUE(Ledger::VerifyJournalProof(recent, proof, pruned.FamRoot()));
}

TEST(FamPruneTest, PruneKeepsChainVerifiable) {
  FamAccumulator fam(3);
  auto digest = [](uint64_t i) {
    Bytes b;
    PutU64(&b, i);
    return Sha256::Hash(b);
  };
  for (uint64_t i = 0; i < 64; ++i) fam.Append(digest(i));
  size_t before = fam.TotalNodes();
  size_t freed = fam.PruneSealedEpochsBefore(4);
  EXPECT_GT(freed, 0u);
  EXPECT_LT(fam.TotalNodes(), before);
  EXPECT_TRUE(fam.EpochPruned(0));
  EXPECT_FALSE(fam.EpochPruned(5));

  // The FamVerifier can still sync the whole chain via cached links.
  FamVerifier verifier;
  ASSERT_TRUE(verifier.Sync(fam).ok());
  // Journals in surviving epochs verify.
  MembershipProof local;
  uint64_t epoch = 0;
  ASSERT_TRUE(fam.GetEpochProof(40, &local, &epoch).ok());
  EXPECT_TRUE(verifier.Verify(digest(40), local, epoch));
  // Journals in pruned epochs are unavailable.
  EXPECT_TRUE(fam.GetEpochProof(1, &local, &epoch).IsNotFound());
  // Historical roots at pruned interior positions are unavailable; sealed
  // boundaries still reconstruct.
  Digest root;
  EXPECT_TRUE(fam.RootAtJournalCount(3, &root).IsNotFound());
  EXPECT_TRUE(fam.RootAtJournalCount(8, &root).ok());
}

// ---------------------------------------------------------------------------
// CM-Tree compaction
// ---------------------------------------------------------------------------

TEST_F(LedgerFeaturesTest, CompactClueTreeReclaimsSnapshots) {
  std::vector<Digest> digests;
  for (int i = 0; i < 60; ++i) {
    digests.push_back(TxHashOf(Append("e" + std::to_string(i), {"hot-clue"})));
  }
  size_t reclaimed = 0;
  ASSERT_TRUE(ledger_->CompactClueTree(&reclaimed).ok());
  EXPECT_GT(reclaimed, 0u);
  // Current clue proofs still verify after compaction.
  ClueProof proof;
  ASSERT_TRUE(ledger_->GetClueProof("hot-clue", 0, 0, &proof).ok());
  EXPECT_TRUE(CmTree::VerifyClueProof(ledger_->ClueRoot(), digests, proof));
  // A second compaction finds nothing new.
  size_t again = 99;
  ASSERT_TRUE(ledger_->CompactClueTree(&again).ok());
  EXPECT_EQ(again, 0u);
}

// ---------------------------------------------------------------------------
// TSA pool attachment
// ---------------------------------------------------------------------------

TEST_F(LedgerFeaturesTest, TsaPoolRotatesEndorsements) {
  TsaService tsa1(KeyPair::FromSeedString("pool-tsa-1"), &clock_);
  TsaService tsa2(KeyPair::FromSeedString("pool-tsa-2"), &clock_);
  TsaPool pool;
  pool.Add(&tsa1);
  pool.Add(&tsa2);
  ledger_->AttachTsaPool(&pool);
  Append("a");
  ASSERT_TRUE(ledger_->AnchorTime(nullptr).ok());
  ASSERT_TRUE(ledger_->AnchorTime(nullptr).ok());
  EXPECT_EQ(tsa1.endorsement_count(), 1u);
  EXPECT_EQ(tsa2.endorsement_count(), 1u);
  for (const TimeJournalInfo& info : ledger_->time_journals()) {
    EXPECT_TRUE(pool.VerifyAny(info.evidence.attestation));
  }
}

}  // namespace
}  // namespace ledgerdb
