#include <gtest/gtest.h>

#include "accum/bamt.h"
#include "common/random.h"
#include "mpt/mpt.h"
#include "storage/node_store.h"

namespace ledgerdb {
namespace {

Digest TestDigest(uint64_t i) {
  Bytes buf;
  PutU64(&buf, i);
  return Sha256::Hash(buf);
}

// ---------------------------------------------------------------------------
// bAMT accumulator
// ---------------------------------------------------------------------------

TEST(BamtTest, BatchesSealAtCapacity) {
  BamtAccumulator bamt(8);
  for (uint64_t i = 0; i < 20; ++i) bamt.Append(TestDigest(i));
  EXPECT_EQ(bamt.NumBatches(), 2u);
  bamt.Flush();
  EXPECT_EQ(bamt.NumBatches(), 3u);
}

TEST(BamtTest, ProofsVerify) {
  BamtAccumulator bamt(16);
  const uint64_t n = 200;
  for (uint64_t i = 0; i < n; ++i) bamt.Append(TestDigest(i));
  bamt.Flush();
  Digest root = bamt.Root();
  for (uint64_t i = 0; i < n; ++i) {
    BamtProof proof;
    ASSERT_TRUE(bamt.GetProof(i, &proof).ok()) << i;
    EXPECT_TRUE(BamtAccumulator::VerifyProof(TestDigest(i), proof, root));
    EXPECT_FALSE(BamtAccumulator::VerifyProof(TestDigest(i + 1), proof, root));
  }
}

TEST(BamtTest, UnsealedJournalHasNoProof) {
  BamtAccumulator bamt(8);
  bamt.Append(TestDigest(0));
  BamtProof proof;
  EXPECT_TRUE(bamt.GetProof(0, &proof).IsNotFound());
  EXPECT_TRUE(bamt.GetProof(5, &proof).IsOutOfRange());
}

TEST(BamtTest, ProofRejectsWrongBatchBinding) {
  BamtAccumulator bamt(4);
  for (uint64_t i = 0; i < 16; ++i) bamt.Append(TestDigest(i));
  BamtProof proof;
  ASSERT_TRUE(bamt.GetProof(0, &proof).ok());
  proof.in_top.leaf_index = 2;  // claim another batch slot
  EXPECT_FALSE(BamtAccumulator::VerifyProof(TestDigest(0), proof, bamt.Root()));
}

TEST(BamtTest, TopPathStillGrowsUnlikeFam) {
  // The regression fam removes: bAMT's top-level path keeps growing with
  // total ledger size.
  BamtAccumulator small(16), large(16);
  for (uint64_t i = 0; i < 64; ++i) small.Append(TestDigest(i));
  for (uint64_t i = 0; i < 16384; ++i) large.Append(TestDigest(i));
  BamtProof ps, pl;
  ASSERT_TRUE(small.GetProof(3, &ps).ok());
  ASSERT_TRUE(large.GetProof(3, &pl).ok());
  EXPECT_GT(pl.in_top.CostInHashes(), ps.in_top.CostInHashes());
  EXPECT_EQ(pl.in_batch.CostInHashes(), ps.in_batch.CostInHashes());
}

// ---------------------------------------------------------------------------
// MPT structural edge cases with crafted (non-scattered) keys. Random
// SHA-3 keys almost never share long prefixes, so these force the
// extension-split and deep-branch paths explicitly.
// ---------------------------------------------------------------------------

Digest CraftedKey(std::initializer_list<uint8_t> prefix, uint8_t fill) {
  Digest key;
  key.bytes.fill(fill);
  size_t i = 0;
  for (uint8_t b : prefix) key.bytes[i++] = b;
  return key;
}

class MptEdgeTest : public ::testing::Test {
 protected:
  Status Put(const Digest& key, const std::string& value) {
    return mpt_.Put(root_, key, Slice(std::string_view(value)), &root_);
  }

  void ExpectValue(const Digest& key, const std::string& value) {
    Bytes out;
    ASSERT_TRUE(mpt_.Get(root_, key, &out).ok());
    EXPECT_EQ(out, StringToBytes(value));
    MptProof proof;
    ASSERT_TRUE(mpt_.GetProof(root_, key, &proof).ok());
    Bytes expected = StringToBytes(value);
    EXPECT_TRUE(Mpt::VerifyProof(root_, key, Slice(expected), proof));
  }

  MemoryNodeStore store_;
  Mpt mpt_{&store_};
  Digest root_ = Mpt::EmptyRoot();
};

TEST_F(MptEdgeTest, LongSharedPrefixForcesDeepExtensionSplit) {
  // 30 shared bytes (60 nibbles), divergence near the leaf.
  Digest a = CraftedKey({}, 0xaa);
  Digest b = CraftedKey({}, 0xaa);
  b.bytes[30] = 0xab;
  ASSERT_TRUE(Put(a, "va").ok());
  ASSERT_TRUE(Put(b, "vb").ok());
  ExpectValue(a, "va");
  ExpectValue(b, "vb");
}

TEST_F(MptEdgeTest, DivergenceAtEveryDepth) {
  // Keys sharing i leading nibbles for i = 0..16: exercises splits at many
  // depths in one trie.
  std::vector<Digest> keys;
  for (uint8_t i = 0; i < 16; ++i) {
    Digest key;
    key.bytes.fill(0x11);
    key.bytes[i / 2] = (i % 2 == 0) ? static_cast<uint8_t>(0x91)
                                    : static_cast<uint8_t>(0x19);
    keys.push_back(key);
    ASSERT_TRUE(Put(key, "v" + std::to_string(i)).ok()) << int(i);
  }
  for (size_t i = 0; i < keys.size(); ++i) {
    ExpectValue(keys[i], "v" + std::to_string(i));
  }
}

TEST_F(MptEdgeTest, SplitExtensionAtItsLastNibble) {
  // Three keys: two share 4 leading nibbles; the third diverges exactly at
  // the last nibble of the resulting extension.
  Digest a = CraftedKey({0x12, 0x34}, 0x00);
  Digest b = CraftedKey({0x12, 0x34}, 0x00);
  b.bytes[31] = 0x01;
  Digest c = CraftedKey({0x12, 0x35}, 0x00);  // diverges at nibble index 3
  ASSERT_TRUE(Put(a, "a").ok());
  ASSERT_TRUE(Put(b, "b").ok());
  ASSERT_TRUE(Put(c, "c").ok());
  ExpectValue(a, "a");
  ExpectValue(b, "b");
  ExpectValue(c, "c");
}

TEST_F(MptEdgeTest, SplitExtensionAtItsFirstNibble) {
  Digest a = CraftedKey({0x11}, 0x22);
  Digest b = CraftedKey({0x11}, 0x22);
  b.bytes[31] = 0x23;                        // long shared prefix
  Digest c = CraftedKey({0x91}, 0x22);       // diverges at the first nibble
  ASSERT_TRUE(Put(a, "a").ok());
  ASSERT_TRUE(Put(b, "b").ok());
  ASSERT_TRUE(Put(c, "c").ok());
  ExpectValue(a, "a");
  ExpectValue(b, "b");
  ExpectValue(c, "c");
}

TEST_F(MptEdgeTest, SixteenWayFanoutAtOneBranch) {
  // All 16 children of a single branch node populated.
  std::vector<Digest> keys;
  for (int v = 0; v < 16; ++v) {
    Digest key;
    key.bytes.fill(0x55);
    key.bytes[4] = static_cast<uint8_t>((v << 4) | 0x5);
    keys.push_back(key);
    ASSERT_TRUE(Put(key, "fan" + std::to_string(v)).ok());
  }
  for (int v = 0; v < 16; ++v) ExpectValue(keys[v], "fan" + std::to_string(v));
}

TEST_F(MptEdgeTest, CraftedAdversarialInsertOrderStillCanonical) {
  // Same content inserted in adversarial orders yields identical roots.
  std::vector<Digest> keys;
  for (uint8_t i = 0; i < 12; ++i) {
    Digest key;
    key.bytes.fill(static_cast<uint8_t>(i % 3));
    key.bytes[i % 8] = static_cast<uint8_t>(0xf0 | i);
    keys.push_back(key);
  }
  Digest root_fwd = Mpt::EmptyRoot(), root_rev = Mpt::EmptyRoot();
  MemoryNodeStore s1, s2;
  Mpt m1(&s1), m2(&s2);
  for (size_t i = 0; i < keys.size(); ++i) {
    ASSERT_TRUE(m1.Put(root_fwd, keys[i], Slice(std::string_view("v")), &root_fwd).ok());
  }
  for (size_t i = keys.size(); i-- > 0;) {
    ASSERT_TRUE(m2.Put(root_rev, keys[i], Slice(std::string_view("v")), &root_rev).ok());
  }
  EXPECT_EQ(root_fwd, root_rev);
}

}  // namespace
}  // namespace ledgerdb
