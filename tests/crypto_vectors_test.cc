#include <gtest/gtest.h>

#include "common/bytes.h"
#include "crypto/ecdsa.h"
#include "crypto/secp256k1.h"
#include "crypto/u256.h"

namespace ledgerdb {
namespace {

/// Cross-checked vectors: every expected value below was computed
/// independently with Python arbitrary-precision integers (and a pure
/// Python secp256k1 implementation for the point vectors), so the C++
/// limb arithmetic is validated against an external oracle.

U256 FromHexStr(const std::string& hex) {
  Bytes raw;
  EXPECT_TRUE(FromHex(hex, &raw));
  EXPECT_EQ(raw.size(), 32u);
  return U256::FromBigEndian(raw.data());
}

const U256& Modulus(const std::string& name) {
  return name == "P" ? secp256k1::kP : secp256k1::kN;
}

struct MulModVector {
  const char* a;
  const char* b;
  const char* m;
  const char* expected;
};

TEST(CryptoVectorsTest, MulModAgainstPythonOracle) {
  const MulModVector kVectors[] = {
      {"23b8c1e9392456de3eb13b9046685257bdd640fb06671ad11c80317fa3b1799d",
       "972a846916419f828b9d2434e465e150bd9c66b3ad3c2d6d1a3d1fa7bc8960a9", "P",
       "309d258979870b8b14fe2feb1ecc71d616cd2f0dd90a86714264b7463f4d3662"},
      {"9a1de644815ef6d13b8faa1837f8a88b17fc695a07a0ca6e0822e8f36c031199",
       "6b65a6a48b8148f6b38a088ca65ed389b74d0fb132e706298fadc1a606cb0fb3", "P",
       "86776febc3aaf552a5dd09d028261ed7f7513da6a396b36ea12f24f01befb437"},
      {"c241330b01a9e71fde8a774bcf36d58b4737819096da1dac72ff5d2a386ecbe0",
       "371ecd7b27cd813047229389571aa8766c307511b2b9437a28df6ec4ce4a2bbd", "P",
       "757e5946837cf338be081d46de938a3a1a7640b2b1b99de7d61543cba3a2b5f8"},
      {"5be6128e18c267976142ea7d17be31111a2a73ed562b0f79c37459eef50bea63",
       "759cde66bacfb3d00b1f9163ce9ff57f43b7a3a69a8dca03580d7b71d8f56413", "N",
       "88481c0fbd1b792dbd79a03c7f35594c0173e696cd7dcaa340f274f3917bf404"},
      {"4b0dbb418d5288f1142c3fe860e7a113ec1b8ca1f91e1d4c1ff49b7889463e85",
       "3139d32c93cd59bf5c941cf0dc98d2c1e2acf72f9e574f7aa0ee89aed453dd32", "N",
       "4d596860f554b91c3b56d9dc0a719d87879c67fb51722d000d52e1a8de2fb562"},
      {"fc377a4c4a15544dc5e7ce8a3a578a8ea9488d990bbb259911ce5dd2b45ed1f0",
       "7412b29347294739614ff3d719db3ad0ddd1dfb23b982ef8daf61a26146d3f31", "N",
       "4a7c839e9f1520b940cd46064802727084b20b34fb0182952e930b75b37f7773"},
  };
  for (const auto& v : kVectors) {
    U256 result = MulMod(FromHexStr(v.a), FromHexStr(v.b), Modulus(v.m));
    EXPECT_EQ(ToHex(result.ToBytes()), v.expected) << v.a;
    // The field fast path must agree with the generic reduction.
    if (std::string(v.m) == "P") {
      EXPECT_EQ(secp256k1::FeMul(FromHexStr(v.a), FromHexStr(v.b)), result);
    }
  }
}

struct InverseVector {
  const char* a;
  const char* m;
  const char* expected;
};

TEST(CryptoVectorsTest, ModInverseAgainstPythonOracle) {
  const InverseVector kVectors[] = {
      {"ab9099a435a240ae5af305535ec42e0829a3b2e95d65a441d58842dea2bc372f", "P",
       "55ba3cfcd581e9a68ffefa6202fd359a7c7ec571bb4d42d0257a1f3815b07c2c"},
      {"a28defe39bf0027312476f57a5e5a5abaefcfad8efc89849b3aa7efe4458a885", "P",
       "677e7645660610cf5d27edfb0e80dde5fb55cdf6143c00f43b3dc9344f2f55c4"},
      {"451b4cf36123fdf77656af7229d4beef3eabedcbbaa80dd488bd64072bcfbe01", "N",
       "fd177b75e0feb9d69e0b6383f1dacc3622475c374a42d68dcd98ab620488dce8"},
      {"5304317faf42e12f3838b3268e944239b02b61c4a3d70628ece66fa2fd5166e6", "N",
       "c43f718d334859cbe8edeb119b4f1c54f8a7592d67f51d885291c6bdbed87e08"},
  };
  for (const auto& v : kVectors) {
    U256 result = ModInverse(FromHexStr(v.a), Modulus(v.m));
    EXPECT_EQ(ToHex(result.ToBytes()), v.expected) << v.a;
  }
}

struct ScalarMulVector {
  const char* k;
  const char* x;
  const char* y;
};

TEST(CryptoVectorsTest, ScalarMulAgainstPythonOracle) {
  const ScalarMulVector kVectors[] = {
      {"0000000000000000000000000000000000000000000000000000000000000005",
       "2f8bde4d1a07209355b4a7250a5c5128e88b84bddc619ab7cba8d569b240efe4",
       "d8ac222636e5e3d6d4dba9dda6c9c426f788271bab0d6840dca87d3aa6ac62d6"},
      {"deadbeefcafebabe1234567890abcdef00112233445566778899aabbccddeeff",
       "b7bd049b1e444ab116fa592e52314a74b776800dac811df499f153adc2aa7a74",
       "20ebbb673d253eae022d75de82013e927f6b66788314d4abacfa6b82e82f880e"},
  };
  auto g = secp256k1::AffinePoint::Generator();
  for (const auto& v : kVectors) {
    U256 k = FromHexStr(v.k);
    auto ladder = secp256k1::ScalarMul(k, g).ToAffine();
    EXPECT_EQ(ToHex(ladder.x.ToBytes()), v.x);
    EXPECT_EQ(ToHex(ladder.y.ToBytes()), v.y);
    auto comb = secp256k1::ScalarMulBase(k).ToAffine();
    EXPECT_EQ(comb, ladder);
  }
}

// ---------------------------------------------------------------------------
// ECDSA boundary/edge cases
// ---------------------------------------------------------------------------

TEST(EcdsaEdgeTest, RejectsOutOfRangeComponents) {
  KeyPair kp = KeyPair::FromSeedString("edge");
  Digest msg = Sha256::Hash(std::string_view("m"));
  Signature sig = kp.Sign(msg);
  Signature bad = sig;
  bad.r = secp256k1::kN;  // r == n is invalid
  EXPECT_FALSE(VerifySignature(kp.public_key(), msg, bad));
  bad = sig;
  bad.s = secp256k1::kN;
  EXPECT_FALSE(VerifySignature(kp.public_key(), msg, bad));
  U256 max(~0ULL, ~0ULL, ~0ULL, ~0ULL);
  bad = sig;
  bad.r = max;
  EXPECT_FALSE(VerifySignature(kp.public_key(), msg, bad));
}

TEST(EcdsaEdgeTest, SignsExtremeDigests) {
  // All-zero and all-ones message digests must sign and verify (z is
  // reduced mod n internally).
  KeyPair kp = KeyPair::FromSeedString("edge2");
  Digest zero;
  Digest ones;
  ones.bytes.fill(0xff);
  for (const Digest& msg : {zero, ones}) {
    Signature sig = kp.Sign(msg);
    EXPECT_TRUE(VerifySignature(kp.public_key(), msg, sig));
  }
}

TEST(EcdsaEdgeTest, BoundaryPrivateKeys) {
  // d = 1 and d = n-1 are valid secrets.
  U256 one(1);
  KeyPair kp1 = KeyPair::FromSecret(one);
  ASSERT_TRUE(kp1.valid());
  auto g = secp256k1::AffinePoint::Generator();
  EXPECT_EQ(kp1.public_key().point(), g);

  U256 n_minus_1;
  Sub(secp256k1::kN, one, &n_minus_1);
  KeyPair kp2 = KeyPair::FromSecret(n_minus_1);
  ASSERT_TRUE(kp2.valid());
  // (n-1)G = -G: same x, negated y.
  EXPECT_EQ(kp2.public_key().point().x, g.x);
  EXPECT_NE(kp2.public_key().point().y, g.y);
  Digest msg = Sha256::Hash(std::string_view("boundary"));
  EXPECT_TRUE(VerifySignature(kp1.public_key(), msg, kp1.Sign(msg)));
  EXPECT_TRUE(VerifySignature(kp2.public_key(), msg, kp2.Sign(msg)));
}

TEST(EcdsaEdgeTest, InvalidSecretsRejected) {
  EXPECT_FALSE(KeyPair::FromSecret(U256()).valid());
  EXPECT_FALSE(KeyPair::FromSecret(secp256k1::kN).valid());
  U256 over;
  Add(secp256k1::kN, U256(1), &over);
  EXPECT_FALSE(KeyPair::FromSecret(over).valid());
}

TEST(EcdsaEdgeTest, SignatureNotValidForRelatedKey) {
  // A signature by d must not verify under -d's public key (same x
  // coordinate, mirrored y): guards against sloppy point handling.
  U256 d = FromHexStr(
      "00000000000000000000000000000000000000000000000000000000deadbeef");
  KeyPair kp = KeyPair::FromSecret(d);
  U256 neg;
  Sub(secp256k1::kN, d, &neg);
  KeyPair mirrored = KeyPair::FromSecret(neg);
  Digest msg = Sha256::Hash(std::string_view("mirror"));
  Signature sig = kp.Sign(msg);
  EXPECT_TRUE(VerifySignature(kp.public_key(), msg, sig));
  EXPECT_FALSE(VerifySignature(mirrored.public_key(), msg, sig));
}

}  // namespace
}  // namespace ledgerdb
