#include <gtest/gtest.h>

#include "ledger/ledger.h"

namespace ledgerdb {
namespace {

/// Shared fixture: a CA, a member registry with alice/bob/DBA/regulator,
/// a TSA, and a ledger with small blocks and a small fractal height so
/// epoch/block boundaries are exercised.
class LedgerTest : public ::testing::Test {
 protected:
  LedgerTest()
      : clock_(1700000000LL * kMicrosPerSecond),
        ca_(KeyPair::FromSeedString("ca")),
        registry_(&ca_),
        lsp_key_(KeyPair::FromSeedString("lsp")),
        alice_(KeyPair::FromSeedString("alice")),
        bob_(KeyPair::FromSeedString("bob")),
        dba_(KeyPair::FromSeedString("dba")),
        regulator_(KeyPair::FromSeedString("regulator")),
        tsa_key_(KeyPair::FromSeedString("tsa")),
        tsa_(tsa_key_, &clock_) {
    EXPECT_TRUE(registry_.Register(ca_.Certify("lsp", lsp_key_.public_key(), Role::kLsp)).ok());
    EXPECT_TRUE(registry_.Register(ca_.Certify("alice", alice_.public_key(), Role::kUser)).ok());
    EXPECT_TRUE(registry_.Register(ca_.Certify("bob", bob_.public_key(), Role::kUser)).ok());
    EXPECT_TRUE(registry_.Register(ca_.Certify("dba", dba_.public_key(), Role::kDba)).ok());
    EXPECT_TRUE(registry_.Register(
        ca_.Certify("regulator", regulator_.public_key(), Role::kRegulator)).ok());

    LedgerOptions options;
    options.fractal_height = 4;
    options.block_capacity = 8;
    ledger_ = std::make_unique<Ledger>("lg://test", options, &clock_,
                                       lsp_key_, &registry_);
  }

  ClientTransaction MakeTx(const KeyPair& signer, const std::string& payload,
                           std::vector<std::string> clues = {}) {
    ClientTransaction tx;
    tx.ledger_uri = "lg://test";
    tx.clues = std::move(clues);
    tx.payload = StringToBytes(payload);
    tx.nonce = nonce_++;
    tx.client_ts = clock_.Now();
    tx.Sign(signer);
    return tx;
  }

  uint64_t MustAppend(const KeyPair& signer, const std::string& payload,
                      std::vector<std::string> clues = {}) {
    uint64_t jsn = 0;
    EXPECT_TRUE(ledger_->Append(MakeTx(signer, payload, std::move(clues)), &jsn).ok());
    return jsn;
  }

  Endorsement Endorse(const KeyPair& key, const Digest& request) {
    return Endorsement{key.public_key(), key.Sign(request)};
  }

  SimulatedClock clock_;
  CertificateAuthority ca_;
  MemberRegistry registry_;
  KeyPair lsp_key_, alice_, bob_, dba_, regulator_, tsa_key_;
  TsaService tsa_;
  std::unique_ptr<Ledger> ledger_;
  uint64_t nonce_ = 0;
};

// ---------------------------------------------------------------------------
// Journal / serialization primitives
// ---------------------------------------------------------------------------

TEST_F(LedgerTest, ClientSignatureRoundTrip) {
  ClientTransaction tx = MakeTx(alice_, "hello");
  EXPECT_TRUE(tx.VerifyClientSignature());
  tx.payload = StringToBytes("tampered");
  EXPECT_FALSE(tx.VerifyClientSignature());
}

TEST_F(LedgerTest, JournalSerializationRoundTrip) {
  uint64_t jsn = MustAppend(alice_, "payload", {"clue-a", "clue-b"});
  Journal journal;
  ASSERT_TRUE(ledger_->GetJournal(jsn, &journal).ok());
  Journal back;
  ASSERT_TRUE(Journal::Deserialize(journal.Serialize(), &back));
  EXPECT_EQ(back.TxHash(), journal.TxHash());
  EXPECT_EQ(back.jsn, journal.jsn);
  EXPECT_EQ(back.clues, journal.clues);
  EXPECT_EQ(back.payload, journal.payload);
}

TEST_F(LedgerTest, TxHashStableUnderPayloadErasure) {
  // Protocol 2's foundation: tx-hash covers the payload digest, not the
  // payload, so occulting does not break the chain.
  uint64_t jsn = MustAppend(alice_, "secret");
  Journal journal;
  ASSERT_TRUE(ledger_->GetJournal(jsn, &journal).ok());
  Digest before = journal.TxHash();
  journal.payload.clear();
  EXPECT_EQ(journal.TxHash(), before);
}

TEST_F(LedgerTest, BlockHeaderSerializationRoundTrip) {
  MustAppend(alice_, "p");
  ledger_->SealBlock();
  const BlockHeader& header = ledger_->blocks().back();
  BlockHeader back;
  ASSERT_TRUE(BlockHeader::Deserialize(header.Serialize(), &back));
  EXPECT_EQ(back.Hash(), header.Hash());
}

// ---------------------------------------------------------------------------
// Members
// ---------------------------------------------------------------------------

TEST_F(LedgerTest, RegistryValidatesCertificates) {
  KeyPair mallory = KeyPair::FromSeedString("mallory");
  Member fake;
  fake.name = "mallory";
  fake.key = mallory.public_key();
  fake.role = Role::kDba;  // self-claimed role, no CA cert
  fake.ca_cert = mallory.Sign(fake.CertHash());
  EXPECT_TRUE(registry_.Register(fake).IsPermissionDenied());
  EXPECT_FALSE(registry_.IsRegistered(mallory.public_key()));
}

TEST_F(LedgerTest, RegistryRejectsDuplicates) {
  Member again = ca_.Certify("alice2", alice_.public_key(), Role::kUser);
  EXPECT_TRUE(registry_.Register(again).IsAlreadyExists());
}

TEST_F(LedgerTest, RolesAreQueryable) {
  EXPECT_TRUE(registry_.HasRole(dba_.public_key(), Role::kDba));
  EXPECT_FALSE(registry_.HasRole(alice_.public_key(), Role::kDba));
  EXPECT_EQ(registry_.MembersWithRole(Role::kUser).size(), 2u);
  Member m;
  ASSERT_TRUE(registry_.Lookup(bob_.public_key(), &m).ok());
  EXPECT_EQ(m.name, "bob");
}

// ---------------------------------------------------------------------------
// Append path (who verification at the door)
// ---------------------------------------------------------------------------

TEST_F(LedgerTest, AppendAssignsSequentialJsns) {
  // jsn 0 is the genesis journal.
  EXPECT_EQ(MustAppend(alice_, "a"), 1u);
  EXPECT_EQ(MustAppend(bob_, "b"), 2u);
  EXPECT_EQ(ledger_->NumJournals(), 3u);
}

TEST_F(LedgerTest, ResubmittedTransactionIsIdempotent) {
  // A client that never saw its response resubmits the SAME signed
  // transaction (same nonce). The server must converge on the original
  // journal instead of appending twice.
  ClientTransaction tx = MakeTx(alice_, "pay bob 5", {"acct"});
  uint64_t first = 0, second = 0;
  ASSERT_TRUE(ledger_->Append(tx, &first).ok());
  uint64_t count = ledger_->NumJournals();
  ASSERT_TRUE(ledger_->Append(tx, &second).ok());
  EXPECT_EQ(second, first);
  EXPECT_EQ(ledger_->NumJournals(), count);  // nothing was re-appended
  // The replay serves the ORIGINAL receipt.
  Receipt r1, r2;
  ASSERT_TRUE(ledger_->GetReceipt(first, &r1).ok());
  ASSERT_TRUE(ledger_->GetReceipt(second, &r2).ok());
  EXPECT_EQ(r1.Serialize(), r2.Serialize());
}

TEST_F(LedgerTest, NonceReuseWithDifferentContentRejected) {
  ClientTransaction tx = MakeTx(alice_, "pay bob 5");
  uint64_t jsn = 0;
  ASSERT_TRUE(ledger_->Append(tx, &jsn).ok());
  // Same signer, same nonce, different content: this is NOT a retry.
  ClientTransaction forged = tx;
  forged.payload = StringToBytes("pay mallory 500");
  forged.Sign(alice_);
  uint64_t other = 0;
  EXPECT_TRUE(ledger_->Append(forged, &other).IsAlreadyExists());
  // A different client may reuse the nonce value freely.
  ClientTransaction bobs = tx;
  bobs.payload = StringToBytes("bob's own");
  bobs.Sign(bob_);
  EXPECT_TRUE(ledger_->Append(bobs, &other).ok());
}

TEST_F(LedgerTest, AppendRejectsBadSignature) {
  ClientTransaction tx = MakeTx(alice_, "x");
  tx.payload = StringToBytes("tampered-in-flight");  // threat-A
  uint64_t jsn;
  EXPECT_TRUE(ledger_->Append(tx, &jsn).IsVerificationFailed());
}

TEST_F(LedgerTest, AppendRejectsUnregisteredClient) {
  KeyPair outsider = KeyPair::FromSeedString("outsider");
  uint64_t jsn;
  EXPECT_TRUE(ledger_->Append(MakeTx(outsider, "x"), &jsn).IsPermissionDenied());
}

TEST_F(LedgerTest, AppendRejectsWrongLedgerUri) {
  ClientTransaction tx = MakeTx(alice_, "x");
  tx.ledger_uri = "lg://other";
  tx.Sign(alice_);
  uint64_t jsn;
  EXPECT_TRUE(ledger_->Append(tx, &jsn).IsInvalidArgument());
}

TEST_F(LedgerTest, AppendRejectsPrivilegedTypes) {
  ClientTransaction tx = MakeTx(alice_, "x");
  tx.type = JournalType::kPurge;
  tx.Sign(alice_);
  uint64_t jsn;
  EXPECT_TRUE(ledger_->Append(tx, &jsn).IsPermissionDenied());
}

// ---------------------------------------------------------------------------
// Blocks and receipts
// ---------------------------------------------------------------------------

TEST_F(LedgerTest, BlocksSealAtCapacityAndChain) {
  for (int i = 0; i < 20; ++i) MustAppend(alice_, "p" + std::to_string(i));
  ledger_->SealBlock();
  const auto& blocks = ledger_->blocks();
  ASSERT_GE(blocks.size(), 2u);
  for (size_t i = 1; i < blocks.size(); ++i) {
    EXPECT_EQ(blocks[i].prev_block_hash, blocks[i - 1].Hash());
    EXPECT_EQ(blocks[i].first_jsn,
              blocks[i - 1].first_jsn + blocks[i - 1].journal_count);
  }
}

TEST_F(LedgerTest, ReceiptVerifies) {
  uint64_t jsn = MustAppend(alice_, "notarize-me");
  Receipt receipt;
  ASSERT_TRUE(ledger_->GetReceipt(jsn, &receipt).ok());
  EXPECT_TRUE(receipt.Verify(ledger_->lsp_key()));
  EXPECT_EQ(receipt.jsn, jsn);

  Journal journal;
  ASSERT_TRUE(ledger_->GetJournal(jsn, &journal).ok());
  EXPECT_EQ(receipt.tx_hash, journal.TxHash());
  EXPECT_EQ(receipt.request_hash, journal.request_hash);

  // Any field tamper breaks π_s.
  Receipt forged = receipt;
  forged.block_hash.bytes[0] ^= 1;
  EXPECT_FALSE(forged.Verify(ledger_->lsp_key()));
}

TEST_F(LedgerTest, ReceiptSerializationRoundTrip) {
  uint64_t jsn = MustAppend(alice_, "r");
  Receipt receipt;
  ASSERT_TRUE(ledger_->GetReceipt(jsn, &receipt).ok());
  Receipt back;
  ASSERT_TRUE(Receipt::Deserialize(receipt.Serialize(), &back));
  EXPECT_TRUE(back.Verify(ledger_->lsp_key()));
}

// ---------------------------------------------------------------------------
// what: fam existence verification through the ledger API
// ---------------------------------------------------------------------------

TEST_F(LedgerTest, JournalProofsVerify) {
  std::vector<uint64_t> jsns;
  for (int i = 0; i < 40; ++i) jsns.push_back(MustAppend(alice_, "p" + std::to_string(i)));
  Digest root = ledger_->FamRoot();
  for (uint64_t jsn : jsns) {
    Journal journal;
    ASSERT_TRUE(ledger_->GetJournal(jsn, &journal).ok());
    FamProof proof;
    ASSERT_TRUE(ledger_->GetProof(jsn, &proof).ok());
    EXPECT_TRUE(Ledger::VerifyJournalProof(journal, proof, root));
  }
}

TEST_F(LedgerTest, ProofRejectsForgedJournal) {
  uint64_t jsn = MustAppend(alice_, "foobar");
  FamProof proof;
  ASSERT_TRUE(ledger_->GetProof(jsn, &proof).ok());
  Journal journal;
  ASSERT_TRUE(ledger_->GetJournal(jsn, &journal).ok());
  // 'foopar' must fail (§III-A).
  journal.payload = StringToBytes("foopar");
  journal.payload_digest = Sha256::Hash(journal.payload);
  EXPECT_FALSE(Ledger::VerifyJournalProof(journal, proof, ledger_->FamRoot()));
}

TEST_F(LedgerTest, AnchoredProofsWork) {
  for (int i = 0; i < 40; ++i) MustAppend(alice_, "p" + std::to_string(i));
  TrustedAnchor anchor;
  ASSERT_TRUE(ledger_->MakeAnchor(&anchor).ok());
  Journal journal;
  ASSERT_TRUE(ledger_->GetJournal(1, &journal).ok());
  FamProof proof;
  ASSERT_TRUE(ledger_->GetProofAnchored(1, anchor, &proof).ok());
  EXPECT_TRUE(FamAccumulator::VerifyProofAnchored(journal.TxHash(), proof, anchor));
}

// ---------------------------------------------------------------------------
// Clue lineage through the ledger API
// ---------------------------------------------------------------------------

TEST_F(LedgerTest, ClueLineageRoundTrip) {
  std::vector<Digest> tx_hashes;
  for (int i = 0; i < 5; ++i) {
    uint64_t jsn = MustAppend(alice_, "artwork-event-" + std::to_string(i), {"DCI001"});
    Journal journal;
    ASSERT_TRUE(ledger_->GetJournal(jsn, &journal).ok());
    tx_hashes.push_back(journal.TxHash());
  }
  std::vector<uint64_t> jsns;
  ASSERT_TRUE(ledger_->ListTx("DCI001", &jsns).ok());
  EXPECT_EQ(jsns.size(), 5u);

  ClueProof proof;
  ASSERT_TRUE(ledger_->GetClueProof("DCI001", 0, 0, &proof).ok());
  EXPECT_TRUE(CmTree::VerifyClueProof(ledger_->ClueRoot(), tx_hashes, proof));
}

TEST_F(LedgerTest, WorldStateTracksClues) {
  MustAppend(alice_, "v1", {"asset-1"});
  MustAppend(alice_, "v2", {"asset-1"});
  EXPECT_EQ(ledger_->world_state().Version("asset-1"), 2u);
  Bytes latest;
  ASSERT_TRUE(ledger_->world_state().Get("asset-1", &latest).ok());
  EXPECT_EQ(latest, Sha256::Hash(std::string_view("v2")).ToBytes());
}

TEST_F(LedgerTest, BlockSnapshotsCaptureRoots) {
  MustAppend(alice_, "a", {"c1"});
  ledger_->SealBlock();
  Digest root_at_block = ledger_->blocks().back().clue_root;
  MustAppend(alice_, "b", {"c1"});
  ledger_->SealBlock();
  EXPECT_NE(ledger_->blocks().back().clue_root, root_at_block);
  EXPECT_EQ(ledger_->blocks().back().fam_root, ledger_->FamRoot());
}

// ---------------------------------------------------------------------------
// when: time anchoring
// ---------------------------------------------------------------------------

TEST_F(LedgerTest, DirectTsaTimeJournal) {
  ledger_->AttachDirectTsa(&tsa_);
  MustAppend(alice_, "before-anchor");
  uint64_t time_jsn = 0;
  ASSERT_TRUE(ledger_->AnchorTime(&time_jsn).ok());
  ASSERT_EQ(ledger_->time_journals().size(), 1u);
  const TimeEvidence& ev = ledger_->time_journals()[0].evidence;
  EXPECT_EQ(ev.mode, TimeNotaryMode::kDirectTsa);
  EXPECT_TRUE(ev.attestation.Verify(tsa_.public_key()));
  // The time journal itself is on the ledger.
  Journal tj;
  ASSERT_TRUE(ledger_->GetJournal(time_jsn, &tj).ok());
  EXPECT_EQ(tj.type, JournalType::kTime);
  TimeEvidence parsed;
  ASSERT_TRUE(TimeEvidence::Deserialize(tj.payload, &parsed));
  EXPECT_EQ(parsed.ledger_digest, ev.ledger_digest);
}

TEST_F(LedgerTest, TLedgerTimeJournal) {
  TLedger tledger(&tsa_, &clock_, KeyPair::FromSeedString("tl-lsp"), {});
  ledger_->AttachTLedger(&tledger);
  MustAppend(alice_, "x");
  uint64_t time_jsn = 0;
  ASSERT_TRUE(ledger_->AnchorTime(&time_jsn).ok());
  tledger.ForceFinalize();
  const TimeEvidence& ev = ledger_->time_journals()[0].evidence;
  EXPECT_EQ(ev.mode, TimeNotaryMode::kTLedger);
  EXPECT_TRUE(tledger.VerifyReceipt(ev.ledger_digest, ev.tledger_receipt));
  TimeProof proof;
  ASSERT_TRUE(tledger.GetTimeProof(ev.tledger_index, &proof).ok());
  EXPECT_TRUE(TLedger::VerifyTimeProof(ev.ledger_digest, proof, tsa_.public_key()));
}

TEST_F(LedgerTest, AnchorTimeRequiresNotary) {
  uint64_t jsn;
  EXPECT_TRUE(ledger_->AnchorTime(&jsn).IsInvalidArgument());
}

TEST_F(LedgerTest, TimeEvidenceSerializationRoundTrip) {
  ledger_->AttachDirectTsa(&tsa_);
  uint64_t time_jsn = 0;
  ASSERT_TRUE(ledger_->AnchorTime(&time_jsn).ok());
  const TimeEvidence& ev = ledger_->time_journals()[0].evidence;
  TimeEvidence back;
  ASSERT_TRUE(TimeEvidence::Deserialize(ev.Serialize(), &back));
  EXPECT_EQ(back.covered_jsn_count, ev.covered_jsn_count);
  EXPECT_TRUE(back.attestation.Verify(tsa_.public_key()));
}

// ---------------------------------------------------------------------------
// Purge
// ---------------------------------------------------------------------------

class PurgeTest : public LedgerTest {
 protected:
  std::vector<Endorsement> FullPurgeSigs(uint64_t purge_before) {
    Digest request = Ledger::PurgeRequestHash("lg://test", purge_before);
    return {Endorse(dba_, request), Endorse(alice_, request),
            Endorse(bob_, request)};
  }
};

TEST_F(PurgeTest, PurgeErasesAndCreatesPseudoGenesis) {
  for (int i = 0; i < 10; ++i) MustAppend(i % 2 ? alice_ : bob_, "p" + std::to_string(i));
  uint64_t purge_jsn = 0;
  ASSERT_TRUE(ledger_->Purge(8, FullPurgeSigs(8), {}, &purge_jsn).ok());
  EXPECT_EQ(ledger_->PurgedBoundary(), 8u);

  Journal journal;
  EXPECT_TRUE(ledger_->GetJournal(3, &journal).IsNotFound());
  EXPECT_TRUE(ledger_->GetJournal(9, &journal).ok());

  uint64_t pg_jsn = 0;
  ASSERT_TRUE(ledger_->LatestPseudoGenesis(&pg_jsn).ok());
  ASSERT_TRUE(ledger_->GetJournal(pg_jsn, &journal).ok());
  EXPECT_EQ(journal.type, JournalType::kPseudoGenesis);
  ASSERT_TRUE(ledger_->GetJournal(purge_jsn, &journal).ok());
  EXPECT_EQ(journal.type, JournalType::kPurge);
  EXPECT_FALSE(journal.endorsements.empty());
}

TEST_F(PurgeTest, ProofsStillVerifyAfterPurge) {
  // fam is retained, so surviving journals' proofs keep working.
  for (int i = 0; i < 10; ++i) MustAppend(alice_, "p" + std::to_string(i));
  ASSERT_TRUE(ledger_->Purge(5, FullPurgeSigs(5), {}, nullptr).ok());
  Journal journal;
  ASSERT_TRUE(ledger_->GetJournal(7, &journal).ok());
  FamProof proof;
  ASSERT_TRUE(ledger_->GetProof(7, &proof).ok());
  EXPECT_TRUE(Ledger::VerifyJournalProof(journal, proof, ledger_->FamRoot()));
}

TEST_F(PurgeTest, PurgeRequiresDba) {
  MustAppend(alice_, "p");
  Digest request = Ledger::PurgeRequestHash("lg://test", 2);
  std::vector<Endorsement> sigs = {Endorse(alice_, request)};
  EXPECT_TRUE(ledger_->Purge(2, sigs, {}, nullptr).IsPermissionDenied());
}

TEST_F(PurgeTest, PurgeRequiresAllAffectedMembers) {
  MustAppend(alice_, "pa");
  MustAppend(bob_, "pb");
  Digest request = Ledger::PurgeRequestHash("lg://test", 3);
  // bob's signature missing.
  std::vector<Endorsement> sigs = {Endorse(dba_, request), Endorse(alice_, request)};
  EXPECT_TRUE(ledger_->Purge(3, sigs, {}, nullptr).IsPermissionDenied());
}

TEST_F(PurgeTest, PurgeRejectsBadSignature) {
  MustAppend(alice_, "p");
  Digest wrong = Ledger::PurgeRequestHash("lg://test", 99);
  std::vector<Endorsement> sigs = {Endorse(dba_, wrong), Endorse(alice_, wrong)};
  EXPECT_TRUE(ledger_->Purge(2, sigs, {}, nullptr).IsVerificationFailed());
}

TEST_F(PurgeTest, SurvivorsOutliveThePurge) {
  uint64_t milestone = MustAppend(alice_, "block-trade-keep-me");
  for (int i = 0; i < 5; ++i) MustAppend(alice_, "noise" + std::to_string(i));
  ASSERT_TRUE(ledger_->Purge(5, FullPurgeSigs(5), {milestone}, nullptr).ok());
  ASSERT_EQ(ledger_->SurvivorCount(), 1u);
  Journal survivor;
  ASSERT_TRUE(ledger_->ReadSurvivor(0, &survivor).ok());
  EXPECT_EQ(survivor.payload, StringToBytes("block-trade-keep-me"));
  // And the survivor still proves against the retained fam tree.
  FamProof proof;
  ASSERT_TRUE(ledger_->GetProof(survivor.jsn, &proof).ok());
  EXPECT_TRUE(Ledger::VerifyJournalProof(survivor, proof, ledger_->FamRoot()));
}

TEST_F(PurgeTest, InvalidPurgePoints) {
  MustAppend(alice_, "p");
  EXPECT_TRUE(ledger_->Purge(99, FullPurgeSigs(99), {}, nullptr).IsOutOfRange());
  ASSERT_TRUE(ledger_->Purge(2, FullPurgeSigs(2), {}, nullptr).ok());
  EXPECT_TRUE(ledger_->Purge(1, FullPurgeSigs(1), {}, nullptr).IsInvalidArgument());
}

// ---------------------------------------------------------------------------
// Occult
// ---------------------------------------------------------------------------

class OccultTest : public LedgerTest {
 protected:
  std::vector<Endorsement> OccultSigs(uint64_t jsn) {
    Digest request = Ledger::OccultRequestHash("lg://test", jsn);
    return {Endorse(dba_, request), Endorse(regulator_, request)};
  }
};

TEST_F(OccultTest, OccultHidesPayloadKeepsVerifiability) {
  uint64_t target = MustAppend(alice_, "unauthorized-personal-data");
  FamProof proof_before;
  ASSERT_TRUE(ledger_->GetProof(target, &proof_before).ok());

  uint64_t occult_jsn = 0;
  ASSERT_TRUE(ledger_->Occult(target, OccultSigs(target), &occult_jsn).ok());

  Journal journal;
  ASSERT_TRUE(ledger_->GetJournal(target, &journal).ok());
  EXPECT_TRUE(journal.occulted);
  EXPECT_TRUE(journal.payload.empty());
  EXPECT_FALSE(journal.payload_digest.IsZero());

  // Protocol 2: the retained hash stands in — the proof still verifies.
  FamProof proof;
  ASSERT_TRUE(ledger_->GetProof(target, &proof).ok());
  EXPECT_TRUE(Ledger::VerifyJournalProof(journal, proof, ledger_->FamRoot()));

  Journal oj;
  ASSERT_TRUE(ledger_->GetJournal(occult_jsn, &oj).ok());
  EXPECT_EQ(oj.type, JournalType::kOccult);
}

TEST_F(OccultTest, AsyncErasureDeferred) {
  uint64_t target = MustAppend(alice_, "gdpr-violation");
  ASSERT_TRUE(ledger_->Occult(target, OccultSigs(target), nullptr).ok());
  EXPECT_EQ(ledger_->PendingOccultErasures(), 1u);
  EXPECT_EQ(ledger_->ReorganizeOcculted(), 1u);
  EXPECT_EQ(ledger_->PendingOccultErasures(), 0u);
}

TEST_F(OccultTest, SyncErasureImmediate) {
  LedgerOptions options;
  options.sync_occult_erasure = true;
  Ledger sync_ledger("lg://test", options, &clock_, lsp_key_, &registry_);
  uint64_t jsn;
  ASSERT_TRUE(sync_ledger.Append(MakeTx(alice_, "x"), &jsn).ok());
  Digest request = Ledger::OccultRequestHash("lg://test", jsn);
  std::vector<Endorsement> sigs = {Endorse(dba_, request), Endorse(regulator_, request)};
  ASSERT_TRUE(sync_ledger.Occult(jsn, sigs, nullptr).ok());
  EXPECT_EQ(sync_ledger.PendingOccultErasures(), 0u);
}

TEST_F(OccultTest, OccultRequiresBothRoles) {
  uint64_t target = MustAppend(alice_, "x");
  Digest request = Ledger::OccultRequestHash("lg://test", target);
  std::vector<Endorsement> only_dba = {Endorse(dba_, request)};
  EXPECT_TRUE(ledger_->Occult(target, only_dba, nullptr).IsPermissionDenied());
  std::vector<Endorsement> only_reg = {Endorse(regulator_, request)};
  EXPECT_TRUE(ledger_->Occult(target, only_reg, nullptr).IsPermissionDenied());
}

TEST_F(OccultTest, OccultRejectsDoubleAndSpecials) {
  uint64_t target = MustAppend(alice_, "x");
  ASSERT_TRUE(ledger_->Occult(target, OccultSigs(target), nullptr).ok());
  EXPECT_TRUE(ledger_->Occult(target, OccultSigs(target), nullptr).IsAlreadyExists());
  // Genesis (jsn 0) is not a normal journal.
  EXPECT_TRUE(ledger_->Occult(0, OccultSigs(0), nullptr).IsInvalidArgument());
}

TEST_F(OccultTest, OccultByClueStillVerifiable) {
  // "occult by clue is a common case": lineage survives an occult.
  std::vector<Digest> tx_hashes;
  for (int i = 0; i < 3; ++i) {
    uint64_t jsn = MustAppend(alice_, "life-" + std::to_string(i), {"asset"});
    Journal j;
    ASSERT_TRUE(ledger_->GetJournal(jsn, &j).ok());
    tx_hashes.push_back(j.TxHash());
  }
  std::vector<uint64_t> jsns;
  ASSERT_TRUE(ledger_->ListTx("asset", &jsns).ok());
  ASSERT_TRUE(ledger_->Occult(jsns[1], OccultSigs(jsns[1]), nullptr).ok());

  ClueProof proof;
  ASSERT_TRUE(ledger_->GetClueProof("asset", 0, 0, &proof).ok());
  EXPECT_TRUE(CmTree::VerifyClueProof(ledger_->ClueRoot(), tx_hashes, proof));
}

}  // namespace
}  // namespace ledgerdb
