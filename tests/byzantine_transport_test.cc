// Unit tests for the Byzantine service plane: the LedgerTransport seam,
// deterministic fault injection, the hardened client (idempotent retries,
// audited root advance), and cross-client equivocation detection.

#include <gtest/gtest.h>

#include "client/ledger_client.h"
#include "net/byzantine_transport.h"
#include "net/transport.h"

namespace ledgerdb {
namespace {

class ByzantineTransportTest : public ::testing::Test {
 protected:
  ByzantineTransportTest()
      : clock_(1000 * kMicrosPerSecond),
        ca_(KeyPair::FromSeedString("byz-ca")),
        registry_(&ca_),
        lsp_(KeyPair::FromSeedString("byz-lsp")),
        alice_(KeyPair::FromSeedString("byz-alice")),
        bob_(KeyPair::FromSeedString("byz-bob")) {
    registry_.Register(ca_.Certify("lsp", lsp_.public_key(), Role::kLsp));
    registry_.Register(ca_.Certify("alice", alice_.public_key(), Role::kUser));
    registry_.Register(ca_.Certify("bob", bob_.public_key(), Role::kUser));
    options_.fractal_height = 3;
    options_.block_capacity = 4;
    ledger_ = std::make_unique<Ledger>("lg://byz", options_, &clock_, lsp_,
                                       &registry_);
    local_ = std::make_unique<LocalTransport>(ledger_.get());
    byz_ = std::make_unique<ByzantineTransport>(local_.get(), /*seed=*/7);
  }

  LedgerClient::Options ClientOptions() const {
    LedgerClient::Options copts;
    copts.lsp_key = lsp_.public_key();
    copts.fractal_height = options_.fractal_height;
    return copts;
  }

  LedgerClient MakeClient(LedgerTransport* transport, const KeyPair& who) {
    return LedgerClient(transport, who, ClientOptions());
  }

  SimulatedClock clock_;
  CertificateAuthority ca_;
  MemberRegistry registry_;
  KeyPair lsp_, alice_, bob_;
  LedgerOptions options_;
  std::unique_ptr<Ledger> ledger_;
  std::unique_ptr<LocalTransport> local_;
  std::unique_ptr<ByzantineTransport> byz_;
};

// ---------------------------------------------------------------------------
// Network-plane faults: retries + server-side idempotency mask them.
// ---------------------------------------------------------------------------

TEST_F(ByzantineTransportTest, TransientAndDropMaskedByRetry) {
  byz_->InjectFault(RpcOp::kAppendTx, 0, FaultKind::kTransientError);
  byz_->InjectFault(RpcOp::kAppendTx, 1, FaultKind::kDrop);
  byz_->InjectFault(RpcOp::kGetReceipt, 0, FaultKind::kTransientError);
  LedgerClient client = MakeClient(byz_.get(), alice_);
  uint64_t before = ledger_->NumJournals();
  uint64_t jsn = 0;
  Receipt receipt;
  ASSERT_TRUE(
      client.AppendVerified(StringToBytes("doc"), {}, &jsn, &receipt).ok());
  EXPECT_EQ(ledger_->NumJournals(), before + 1);
  EXPECT_EQ(byz_->faults_injected(), 3u);
  EXPECT_TRUE(receipt.Verify(lsp_.public_key()));
}

TEST_F(ByzantineTransportTest, DelayedAppendCommitsExactlyOnce) {
  // The server EXECUTES the delayed append; the client's resubmission must
  // converge on that same journal via (signer, nonce) dedup.
  byz_->InjectFault(RpcOp::kAppendTx, 0, FaultKind::kDelay);
  LedgerClient client = MakeClient(byz_.get(), alice_);
  uint64_t before = ledger_->NumJournals();
  uint64_t jsn = 0;
  ASSERT_TRUE(client.AppendVerified(StringToBytes("once"), {"a"}, &jsn).ok());
  EXPECT_EQ(ledger_->NumJournals(), before + 1);
  Journal journal;
  ASSERT_TRUE(ledger_->GetJournal(jsn, &journal).ok());
  EXPECT_EQ(journal.payload, StringToBytes("once"));
}

TEST_F(ByzantineTransportTest, DuplicateDeliveryCommitsExactlyOnce) {
  byz_->InjectFault(RpcOp::kAppendTx, 0, FaultKind::kDuplicate);
  LedgerClient client = MakeClient(byz_.get(), alice_);
  uint64_t before = ledger_->NumJournals();
  uint64_t jsn = 0;
  ASSERT_TRUE(client.AppendVerified(StringToBytes("dup"), {}, &jsn).ok());
  EXPECT_EQ(ledger_->NumJournals(), before + 1);
}

TEST_F(ByzantineTransportTest, ReorderedResponseMaskedByRetry) {
  byz_->InjectFault(RpcOp::kAppendTx, 0, FaultKind::kReorder);
  LedgerClient client = MakeClient(byz_.get(), alice_);
  uint64_t before = ledger_->NumJournals();
  uint64_t jsn = 0;
  ASSERT_TRUE(client.AppendVerified(StringToBytes("ooo"), {}, &jsn).ok());
  EXPECT_EQ(ledger_->NumJournals(), before + 1);
}

TEST_F(ByzantineTransportTest, ExhaustedRetryBudgetSurfacesAsIOError) {
  for (uint64_t n = 0; n < 8; ++n) {
    byz_->InjectFault(RpcOp::kAppendTx, n, FaultKind::kTransientError);
  }
  LedgerClient client = MakeClient(byz_.get(), alice_);
  uint64_t jsn = 0;
  Status s = client.AppendVerified(StringToBytes("never"), {}, &jsn);
  EXPECT_TRUE(s.IsIOError()) << s.ToString();
  EXPECT_EQ(ledger_->NumJournals(), 1u);  // genesis only
}

// ---------------------------------------------------------------------------
// Response mutations: client verification detects every one.
// ---------------------------------------------------------------------------

TEST_F(ByzantineTransportTest, ForgedAppendJsnDetected) {
  byz_->InjectFault(RpcOp::kAppendTx, 0, FaultKind::kForgeProof);
  LedgerClient client = MakeClient(byz_.get(), alice_);
  uint64_t jsn = 0;
  Status s = client.AppendVerified(StringToBytes("x"), {}, &jsn);
  EXPECT_FALSE(s.ok()) << "forged jsn accepted";
}

TEST_F(ByzantineTransportTest, SubstitutedReceiptDetected) {
  LedgerClient client = MakeClient(byz_.get(), alice_);
  uint64_t jsn = 0;
  ASSERT_TRUE(client.AppendVerified(StringToBytes("a"), {}, &jsn).ok());
  byz_->InjectFault(RpcOp::kGetReceipt, 1, FaultKind::kSubstituteReceipt);
  Status s = client.AppendVerified(StringToBytes("b"), {}, &jsn);
  EXPECT_TRUE(s.IsVerificationFailed()) << s.ToString();
}

TEST_F(ByzantineTransportTest, ForgedProofDetected) {
  LedgerClient client = MakeClient(byz_.get(), alice_);
  uint64_t jsn = 0;
  ASSERT_TRUE(client.AppendVerified(StringToBytes("p"), {}, &jsn).ok());
  ASSERT_TRUE(client.RefreshTrustedRoots().ok());
  byz_->InjectFault(RpcOp::kGetProof, 0, FaultKind::kForgeProof);
  Journal journal;
  Status s = client.FetchAndVerifyJournal(jsn, &journal);
  EXPECT_FALSE(s.ok()) << "forged fam proof accepted";
}

TEST_F(ByzantineTransportTest, TruncatedProofDetected) {
  LedgerClient client = MakeClient(byz_.get(), alice_);
  uint64_t jsn = 0;
  for (int i = 0; i < 10; ++i) {  // cross an epoch so epoch links exist
    ASSERT_TRUE(
        client.AppendVerified(StringToBytes("t" + std::to_string(i)), {}, &jsn)
            .ok());
  }
  ASSERT_TRUE(client.RefreshTrustedRoots().ok());
  byz_->InjectFault(RpcOp::kGetProof, 0, FaultKind::kTruncateProof);
  Journal journal;
  Status s = client.FetchAndVerifyJournal(jsn, &journal);
  EXPECT_FALSE(s.ok()) << "truncated fam proof accepted";
}

TEST_F(ByzantineTransportTest, SubstitutedJournalDetected) {
  LedgerClient client = MakeClient(byz_.get(), alice_);
  uint64_t j1 = 0, j2 = 0;
  ASSERT_TRUE(client.AppendVerified(StringToBytes("one"), {}, &j1).ok());
  ASSERT_TRUE(client.AppendVerified(StringToBytes("two"), {}, &j2).ok());
  ASSERT_TRUE(client.RefreshTrustedRoots().ok());
  byz_->InjectFault(RpcOp::kGetJournal, 0, FaultKind::kSubstituteReceipt);
  Journal journal;
  Status s = client.FetchAndVerifyJournal(j2, &journal);
  EXPECT_TRUE(s.IsVerificationFailed()) << s.ToString();
}

TEST_F(ByzantineTransportTest, CorruptedPayloadDetected) {
  LedgerClient client = MakeClient(byz_.get(), alice_);
  uint64_t jsn = 0;
  ASSERT_TRUE(client.AppendVerified(StringToBytes("payload"), {}, &jsn).ok());
  ASSERT_TRUE(client.RefreshTrustedRoots().ok());
  byz_->InjectFault(RpcOp::kGetJournal, 0, FaultKind::kCorruptPayload);
  Journal journal;
  Status s = client.FetchAndVerifyJournal(jsn, &journal);
  EXPECT_TRUE(s.IsVerificationFailed()) << s.ToString();
}

TEST_F(ByzantineTransportTest, TruncatedLineageDetected) {
  LedgerClient client = MakeClient(byz_.get(), alice_);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(client
                    .AppendVerified(StringToBytes("l" + std::to_string(i)),
                                    {"asset"}, nullptr)
                    .ok());
  }
  ASSERT_TRUE(client.RefreshTrustedRoots().ok());
  byz_->InjectFault(RpcOp::kListTx, 0, FaultKind::kTruncateProof);
  std::vector<Journal> lineage;
  Status s = client.FetchAndVerifyLineage("asset", &lineage);
  EXPECT_TRUE(s.IsVerificationFailed()) << s.ToString();
}

// ---------------------------------------------------------------------------
// Root advance: audited vs blind.
// ---------------------------------------------------------------------------

TEST_F(ByzantineTransportTest, ForgedCommitmentRejectedByAuditedRefresh) {
  byz_->InjectFault(RpcOp::kGetCommitment, 0, FaultKind::kForgeProof);
  LedgerClient client = MakeClient(byz_.get(), alice_);
  Status s = client.RefreshTrustedRoots();
  EXPECT_FALSE(s.ok()) << "forged commitment pinned";
}

TEST_F(ByzantineTransportTest, UnauditedRefreshPinsForgedRootBlindly) {
  // The pre-hardening behavior, kept as an explicit test-only hatch: the
  // forged root is pinned without any error — and every later journal
  // verification fails closed against it.
  uint64_t jsn = 0;
  LedgerClient client = MakeClient(byz_.get(), alice_);
  ASSERT_TRUE(client.AppendVerified(StringToBytes("v"), {}, &jsn).ok());
  byz_->InjectFault(RpcOp::kGetCommitment, 0, FaultKind::kForgeProof);
  ASSERT_TRUE(client.RefreshTrustedRootsUnaudited().ok());  // no detection!
  Journal journal;
  // With overwhelming probability the flipped bit landed somewhere that
  // breaks the root (or the sig, which the unaudited path ignores).
  Status s = client.FetchAndVerifyJournal(jsn, &journal);
  (void)s;  // the point is the line above: blind pinning raises no error
}

TEST_F(ByzantineTransportTest, StaleRootFailsClosedDownstream) {
  LedgerClient client = MakeClient(byz_.get(), alice_);
  ASSERT_TRUE(client.RefreshTrustedRoots().ok());  // caches commitment #1
  uint64_t jsn = 0;
  ASSERT_TRUE(client.AppendVerified(StringToBytes("new"), {}, &jsn).ok());
  byz_->InjectFault(RpcOp::kGetCommitment, 1, FaultKind::kStaleRoot);
  bool advanced = true;
  // Replaying the old commitment is not itself equivocation (it is a
  // bit-identical repeat of an accepted view) — but it cannot advance the
  // datum, and the fresh journal stays unverifiable: fail closed.
  ASSERT_TRUE(client.RefreshTrustedRoots(&advanced).ok());
  EXPECT_FALSE(advanced);
  Journal journal;
  EXPECT_TRUE(client.FetchAndVerifyJournal(jsn, &journal).IsVerificationFailed());
  // An honest refresh then unblocks it.
  ASSERT_TRUE(client.RefreshTrustedRoots(&advanced).ok());
  EXPECT_TRUE(advanced);
  EXPECT_TRUE(client.FetchAndVerifyJournal(jsn, &journal).ok());
}

TEST_F(ByzantineTransportTest, RollbackCommitmentRejectedWithEvidence) {
  LedgerClient client = MakeClient(byz_.get(), alice_);
  ASSERT_TRUE(client.RefreshTrustedRoots().ok());  // caches commitment @1
  ASSERT_TRUE(client.AppendVerified(StringToBytes("adv"), {}, nullptr).ok());
  ASSERT_TRUE(client.RefreshTrustedRoots().ok());  // audited prefix now @2
  byz_->InjectFault(RpcOp::kGetCommitment, 2, FaultKind::kStaleRoot);
  EquivocationEvidence ev;
  Status s = client.RefreshTrustedRoots(nullptr, &ev);
  EXPECT_TRUE(s.IsVerificationFailed()) << s.ToString();
  EXPECT_NE(ev.reason.find("rollback"), std::string::npos) << ev.reason;
  // The evidence is self-certifying: the rolled-back commitment really is
  // signed by the LSP.
  EXPECT_TRUE(ev.claimed.Verify(lsp_.public_key()));
}

// ---------------------------------------------------------------------------
// Equivocation: a forked view that passes single-client audit is caught
// only by gossip.
// ---------------------------------------------------------------------------

TEST_F(ByzantineTransportTest, EquivocationSurvivesSingleClientAudit) {
  // Two clients, one ledger. Alice's transport forks her view from jsn 1
  // on; the forger holds the REAL LSP key (malicious LSP, not a MITM).
  LocalTransport bob_local(ledger_.get());
  LedgerClient bob = MakeClient(&bob_local, bob_);
  ASSERT_TRUE(
      bob.AppendVerified(StringToBytes("real-1"), {"acct"}, nullptr).ok());
  ASSERT_TRUE(
      bob.AppendVerified(StringToBytes("real-2"), {"acct"}, nullptr).ok());

  byz_->EnableEquivocation(/*fork_jsn=*/1, lsp_, options_.fractal_height,
                           /*mpt_cache_depth=*/6);
  LedgerClient alice = MakeClient(byz_.get(), alice_);

  // Both audited refreshes PASS: the fork is internally consistent and
  // properly signed — no single-client check can see the split view.
  ASSERT_TRUE(alice.RefreshTrustedRoots().ok());
  ASSERT_TRUE(bob.RefreshTrustedRoots().ok());
  EXPECT_NE(alice.trusted_fam_root().ToHex(), bob.trusted_fam_root().ToHex());

  // Gossip catches it: two validly signed commitments at one count with
  // different roots.
  EquivocationEvidence ev;
  Status s = alice.CrossCheckCommitments(bob, &ev);
  EXPECT_TRUE(s.IsVerificationFailed()) << "equivocation not detected";
  EXPECT_TRUE(ev.claimed.Verify(lsp_.public_key()));  // self-certifying
  EXPECT_FALSE(ev.claimed.fam_root == ev.expected_fam_root);
}

TEST_F(ByzantineTransportTest, EquivocationWithWrongKeyCaughtImmediately) {
  // A MITM without the LSP key tries the same fork: the signature check in
  // the audited refresh kills it on the spot.
  byz_->EnableEquivocation(/*fork_jsn=*/1,
                           KeyPair::FromSeedString("byz-mitm"),
                           options_.fractal_height, /*mpt_cache_depth=*/6);
  LedgerClient alice = MakeClient(byz_.get(), alice_);
  Status s = alice.RefreshTrustedRoots();
  EXPECT_TRUE(s.IsVerificationFailed()) << s.ToString();
}

// ---------------------------------------------------------------------------
// Determinism: same seed, same schedule → bit-identical outcomes.
// ---------------------------------------------------------------------------

TEST_F(ByzantineTransportTest, FaultInjectionIsDeterministic) {
  auto run = [&](uint64_t seed) {
    SimulatedClock clock(1000 * kMicrosPerSecond);
    Ledger ledger("lg://byz", options_, &clock, lsp_, &registry_);
    LocalTransport local(&ledger);
    ByzantineTransport byz(&local, seed);
    byz.InjectFault(RpcOp::kGetProof, 0, FaultKind::kForgeProof);
    LedgerClient client(&byz, alice_, ClientOptions());
    uint64_t jsn = 0;
    EXPECT_TRUE(client.AppendVerified(StringToBytes("d"), {}, &jsn).ok());
    EXPECT_TRUE(client.RefreshTrustedRoots().ok());
    Journal journal;
    Status s = client.FetchAndVerifyJournal(jsn, &journal);
    return s.ToString() + "|" + ledger.FamRoot().ToHex();
  };
  EXPECT_EQ(run(99), run(99));   // identical replay
  EXPECT_EQ(run(123), run(123));
}

}  // namespace
}  // namespace ledgerdb
