#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "audit/dasein_auditor.h"
#include "ledger/ledger.h"
#include "ledger/sharded.h"
#include "storage/fault_env.h"
#include "storage/stream_store.h"

namespace ledgerdb {
namespace {

constexpr char kUri[] = "lg://fault";
constexpr char kJournalPath[] = "journals.log";
constexpr char kBlockPath[] = "blocks.log";

// ---------------------------------------------------------------------------
// FaultEnv unit tests
// ---------------------------------------------------------------------------

Bytes FileContents(Env* env, const std::string& path) {
  std::unique_ptr<File> f;
  EXPECT_TRUE(env->OpenFile(path, &f).ok());
  uint64_t size = 0;
  EXPECT_TRUE(f->Size(&size).ok());
  Bytes out;
  if (size > 0) EXPECT_TRUE(f->Read(0, size, &out).ok());
  return out;
}

TEST(FaultEnvTest, CrashRollsBackUnsyncedWrites) {
  MemEnv base;
  FaultEnv env(&base, 1);
  std::unique_ptr<File> f;
  ASSERT_TRUE(env.OpenFile("f", &f).ok());
  ASSERT_TRUE(f->Write(0, Slice(std::string_view("durable"))).ok());  // op 0
  ASSERT_TRUE(f->Sync().ok());                                        // op 1
  ASSERT_TRUE(f->Write(7, Slice(std::string_view("-volatile"))).ok());  // op 2
  ASSERT_TRUE(f->Write(0, Slice(std::string_view("DUR"))).ok());        // op 3
  env.ScheduleFault(4, FaultKind::kCrash);
  EXPECT_TRUE(f->Sync().IsIOError());  // op 4: power cut instead of sync
  EXPECT_TRUE(env.crashed());
  EXPECT_EQ(env.faults_injected(), 1);
  // Every op after the crash fails...
  Bytes tmp;
  EXPECT_TRUE(f->Read(0, 1, &tmp).IsIOError());
  EXPECT_TRUE(f->Write(0, Slice(std::string_view("x"))).IsIOError());
  // ...and the base image is exactly the last synced state: the extension
  // is gone and the overwritten prefix is restored.
  EXPECT_EQ(FileContents(&base, "f"), StringToBytes("durable"));
}

TEST(FaultEnvTest, TornWritePersistsStrictPrefix) {
  MemEnv base;
  FaultEnv env(&base, 42);
  std::unique_ptr<File> f;
  ASSERT_TRUE(env.OpenFile("f", &f).ok());
  ASSERT_TRUE(f->Write(0, Slice(std::string_view("base-"))).ok());  // op 0
  ASSERT_TRUE(f->Sync().ok());                                      // op 1
  env.ScheduleFault(2, FaultKind::kTornWrite);
  EXPECT_TRUE(f->Write(5, Slice(std::string_view("torn-payload"))).IsIOError());
  EXPECT_TRUE(env.crashed());
  Bytes img = FileContents(&base, "f");
  // The synced prefix survives; the torn write persisted a strict prefix
  // of its 12 bytes (possibly zero).
  ASSERT_GE(img.size(), 5u);
  ASSERT_LT(img.size(), 5u + 12u);
  EXPECT_EQ(Bytes(img.begin(), img.begin() + 5), StringToBytes("base-"));
  std::string torn = "torn-payload";
  for (size_t i = 5; i < img.size(); ++i) {
    EXPECT_EQ(img[i], static_cast<uint8_t>(torn[i - 5]));
  }
}

TEST(FaultEnvTest, DroppedSyncAcknowledgesButPersistsNothing) {
  MemEnv base;
  FaultEnv env(&base, 7);
  std::unique_ptr<File> f;
  ASSERT_TRUE(env.OpenFile("f", &f).ok());
  ASSERT_TRUE(f->Write(0, Slice(std::string_view("acked"))).ok());  // op 0
  env.ScheduleFault(1, FaultKind::kDroppedSync);
  EXPECT_TRUE(f->Sync().ok());  // the lie: OK but nothing persisted
  EXPECT_TRUE(env.crashed());
  EXPECT_TRUE(FileContents(&base, "f").empty());
}

TEST(FaultEnvTest, TransientErrorFailsOnceThenSucceeds) {
  MemEnv base;
  FaultEnv env(&base, 3);
  std::unique_ptr<File> f;
  ASSERT_TRUE(env.OpenFile("f", &f).ok());
  env.ScheduleFault(0, FaultKind::kTransientError);
  Status s = f->Write(0, Slice(std::string_view("retry-me")));
  EXPECT_TRUE(s.IsTransientIO());
  EXPECT_TRUE(s.IsRetriable());
  EXPECT_FALSE(env.crashed());
  // The exact same write goes through on retry.
  ASSERT_TRUE(f->Write(0, Slice(std::string_view("retry-me"))).ok());
  ASSERT_TRUE(f->Sync().ok());
  EXPECT_EQ(FileContents(&base, "f"), StringToBytes("retry-me"));
}

TEST(FaultEnvTest, OpCountingIsDeterministic) {
  auto run = [](uint64_t seed) {
    MemEnv base;
    FaultEnv env(&base, seed);
    std::unique_ptr<FileStreamStore> fs;
    EXPECT_TRUE(FileStreamStore::Open(&env, "s.log", &fs).ok());
    uint64_t idx;
    for (int i = 0; i < 5; ++i) {
      EXPECT_TRUE(
          fs->Append(Slice(std::string_view("record")), &idx).ok());
    }
    return env.ops();
  };
  uint64_t a = run(1);
  uint64_t b = run(999);  // seed feeds fault randomness only, not counting
  EXPECT_EQ(a, b);
  EXPECT_GT(a, 10u);
}

// ---------------------------------------------------------------------------
// Crash-point matrix
// ---------------------------------------------------------------------------

struct Snapshot {
  Digest fam, clue, state;
};

class FaultMatrixTest : public ::testing::Test {
 protected:
  FaultMatrixTest()
      : ca_(KeyPair::FromSeedString("fi-ca")),
        lsp_(KeyPair::FromSeedString("fi-lsp")),
        alice_(KeyPair::FromSeedString("fi-alice")),
        dba_(KeyPair::FromSeedString("fi-dba")),
        regulator_(KeyPair::FromSeedString("fi-reg")),
        tsa_key_(KeyPair::FromSeedString("fi-tsa")),
        registry_(&ca_) {
    registry_.Register(ca_.Certify("lsp", lsp_.public_key(), Role::kLsp));
    registry_.Register(ca_.Certify("alice", alice_.public_key(), Role::kUser));
    registry_.Register(ca_.Certify("dba", dba_.public_key(), Role::kDba));
    registry_.Register(
        ca_.Certify("reg", regulator_.public_key(), Role::kRegulator));
    options_.fractal_height = 3;
    options_.block_capacity = 4;
    // Deterministic op sequence: erase occult payloads inside the occult
    // operation instead of leaving it to a later reorganize pass.
    options_.sync_occult_erasure = true;
  }

  /// The canonical workload: signed appends across three clue lineages,
  /// a time anchor, an occult, a purge, trailing appends and a seal. Runs
  /// identically (RFC 6979 signatures + simulated clock) on every env and
  /// stops at the first failed operation.
  Status RunWorkload(Env* env, std::map<uint64_t, Snapshot>* trajectory) {
    SimulatedClock clock(1000 * kMicrosPerSecond);
    TsaService tsa(tsa_key_, &clock);
    std::unique_ptr<FileStreamStore> jf, bf;
    LEDGERDB_RETURN_IF_ERROR(FileStreamStore::Open(env, kJournalPath, &jf));
    LEDGERDB_RETURN_IF_ERROR(FileStreamStore::Open(env, kBlockPath, &bf));
    Ledger ledger(kUri, options_, &clock, lsp_, &registry_,
                  {jf.get(), bf.get()});
    LEDGERDB_RETURN_IF_ERROR(ledger.init_status());
    ledger.AttachDirectTsa(&tsa);
    uint64_t nonce = 0;
    auto append = [&](const std::string& payload, const std::string& clue) {
      ClientTransaction tx;
      tx.ledger_uri = kUri;
      tx.clues = {clue};
      tx.payload = StringToBytes(payload);
      tx.nonce = nonce++;
      tx.client_ts = clock.Now();
      tx.Sign(alice_);
      uint64_t jsn = 0;
      Status s = ledger.Append(tx, &jsn);
      clock.Advance(kMicrosPerSecond);
      return s;
    };
    auto snap = [&] {
      if (trajectory != nullptr) {
        (*trajectory)[ledger.NumJournals()] =
            Snapshot{ledger.FamRoot(), ledger.ClueRoot(), ledger.StateRoot()};
      }
    };
    snap();
    for (int i = 0; i < 10; ++i) {
      LEDGERDB_RETURN_IF_ERROR(
          append("pay-" + std::to_string(i), "acct-" + std::to_string(i % 3)));
      snap();
    }
    LEDGERDB_RETURN_IF_ERROR(ledger.AnchorTime(nullptr));
    snap();
    Digest oreq = Ledger::OccultRequestHash(kUri, 2);
    std::vector<Endorsement> osigs = {
        {dba_.public_key(), dba_.Sign(oreq)},
        {regulator_.public_key(), regulator_.Sign(oreq)}};
    LEDGERDB_RETURN_IF_ERROR(ledger.Occult(2, osigs, nullptr));
    snap();
    Digest preq = Ledger::PurgeRequestHash(kUri, 4);
    std::vector<Endorsement> psigs = {{dba_.public_key(), dba_.Sign(preq)},
                                      {alice_.public_key(), alice_.Sign(preq)}};
    LEDGERDB_RETURN_IF_ERROR(ledger.Purge(4, psigs, {}, nullptr));
    snap();
    LEDGERDB_RETURN_IF_ERROR(append("post-purge-0", "acct-0"));
    snap();
    LEDGERDB_RETURN_IF_ERROR(append("post-purge-1", "acct-1"));
    snap();
    LEDGERDB_RETURN_IF_ERROR(ledger.SealBlock());
    snap();
    return Status::OK();
  }

  /// Recovered state must both replay consistently and pass the external
  /// Dasein audit — "verifiable even after a crash".
  void ExpectAuditPasses(Ledger* ledger) {
    DaseinAuditor::Context context;
    context.ledger = ledger;
    context.members = &registry_;
    context.tsa_key = tsa_key_.public_key();
    Receipt receipt;
    ASSERT_TRUE(ledger->GetReceipt(ledger->NumJournals() - 1, &receipt).ok());
    AuditReport report;
    Status s = DaseinAuditor(context).Audit(receipt, {}, &report);
    EXPECT_TRUE(s.ok()) << s.ToString() << " — " << report.failure_reason;
    EXPECT_TRUE(report.passed) << report.failure_reason;
  }

  CertificateAuthority ca_;
  KeyPair lsp_, alice_, dba_, regulator_, tsa_key_;
  MemberRegistry registry_;
  LedgerOptions options_;
};

TEST_F(FaultMatrixTest, CrashAtEveryFaultPoint) {
  // Reference trajectory: roots after every workload step, keyed by
  // journal count, plus the fault-free op count.
  MemEnv ref_env;
  std::map<uint64_t, Snapshot> trajectory;
  {
    Status ref = RunWorkload(&ref_env, &trajectory);
    ASSERT_TRUE(ref.ok()) << ref.ToString();
  }
  uint64_t total_ops = 0;
  {
    MemEnv dry_base;
    FaultEnv dry(&dry_base, 7);
    Status s = RunWorkload(&dry, nullptr);
    ASSERT_TRUE(s.ok()) << s.ToString();
    total_ops = dry.ops();
  }
  ASSERT_GT(total_ops, 40u);
  const Snapshot& final_snapshot = trajectory.rbegin()->second;

  for (uint64_t k = 0; k < total_ops; ++k) {
    SCOPED_TRACE("fault point " + std::to_string(k));
    FaultKind kind = static_cast<FaultKind>(k % kFaultKindCount);
    MemEnv base;
    FaultEnv env(&base, 1234 + k);
    env.ScheduleFault(k, kind);
    Status run = RunWorkload(&env, nullptr);
    ASSERT_EQ(env.faults_injected(), 1);

    if (kind == FaultKind::kTransientError) {
      // The retry layer must absorb a one-shot transient error: the run
      // completes and ends bit-identical to the reference.
      ASSERT_TRUE(run.ok()) << run.ToString();
      EXPECT_FALSE(env.crashed());
      std::unique_ptr<FileStreamStore> jf, bf;
      ASSERT_TRUE(FileStreamStore::Open(&base, kJournalPath, &jf).ok());
      ASSERT_TRUE(FileStreamStore::Open(&base, kBlockPath, &bf).ok());
      SimulatedClock clock(1000 * kMicrosPerSecond);
      std::unique_ptr<Ledger> recovered;
      Status rs = Ledger::Recover(kUri, options_, &clock, lsp_, &registry_,
                                  {jf.get(), bf.get()}, &recovered);
      ASSERT_TRUE(rs.ok()) << rs.ToString();
      EXPECT_EQ(recovered->FamRoot(), final_snapshot.fam);
      EXPECT_EQ(recovered->ClueRoot(), final_snapshot.clue);
      continue;
    }

    // Power-cut kinds. The run fails at (or after) the fault — except a
    // dropped sync on the workload's final op, whose lying ack lets the
    // run "finish".
    EXPECT_TRUE(env.crashed());
    if (run.ok()) EXPECT_EQ(kind, FaultKind::kDroppedSync);

    // Reopen the surviving image through the base env. Either the stores
    // refuse with explicit corruption (acknowledged bytes were damaged —
    // bit flips / truncation below the watermark) or recovery must
    // produce a state bit-identical to the reference trajectory.
    std::unique_ptr<FileStreamStore> jf, bf;
    Status jopen = FileStreamStore::Open(&base, kJournalPath, &jf);
    if (!jopen.ok()) {
      EXPECT_TRUE(jopen.IsCorruption()) << jopen.ToString();
      continue;
    }
    Status bopen = FileStreamStore::Open(&base, kBlockPath, &bf);
    if (!bopen.ok()) {
      EXPECT_TRUE(bopen.IsCorruption()) << bopen.ToString();
      continue;
    }
    SimulatedClock clock(1000 * kMicrosPerSecond);
    std::unique_ptr<Ledger> recovered;
    Status rs = Ledger::Recover(kUri, options_, &clock, lsp_, &registry_,
                                {jf.get(), bf.get()}, &recovered);
    if (!rs.ok()) {
      // No silent data loss: refusal must be an explicit corruption
      // verdict, never a crash or a half-recovered ledger.
      EXPECT_TRUE(rs.IsCorruption()) << rs.ToString();
      continue;
    }
    uint64_t count = recovered->NumJournals();
    ASSERT_GE(count, 1u);
    auto it = trajectory.find(count);
    if (it != trajectory.end()) {
      EXPECT_EQ(recovered->FamRoot(), it->second.fam);
      EXPECT_EQ(recovered->ClueRoot(), it->second.clue);
      EXPECT_EQ(recovered->StateRoot(), it->second.state);
    }
    ExpectAuditPasses(recovered.get());
  }
}

// ---------------------------------------------------------------------------
// Group-commit crash matrix
// ---------------------------------------------------------------------------

// Group durability at the stream layer: a crash anywhere between the
// group's buffered write and its fsync/watermark pair must recover to a
// whole-group prefix — the pre-group watermark with the torn tail
// quarantined — never a silent partial group.
TEST(GroupCommitFaultTest, CrashAtEveryAppendBatchFaultPoint) {
  auto record = [](size_t i) { return "group-record-" + std::to_string(i); };
  // Workload: two singles, a 4-record group, a 3-record group. The only
  // counts an honest recovery may report are the group boundaries.
  auto run_workload = [&](Env* env) -> Status {
    std::unique_ptr<FileStreamStore> store;
    LEDGERDB_RETURN_IF_ERROR(FileStreamStore::Open(env, "gc.log", &store));
    uint64_t idx = 0;
    size_t next = 0;
    std::string a = record(next++);
    LEDGERDB_RETURN_IF_ERROR(store->Append(Slice(a), &idx));
    std::string b = record(next++);
    LEDGERDB_RETURN_IF_ERROR(store->Append(Slice(b), &idx));
    for (size_t n : {4u, 3u}) {
      std::vector<std::string> owned;
      std::vector<Slice> slices;
      for (size_t i = 0; i < n; ++i) owned.push_back(record(next++));
      for (const std::string& s : owned) slices.emplace_back(s);
      uint64_t first = 0;
      LEDGERDB_RETURN_IF_ERROR(store->AppendBatch(slices, &first));
    }
    return Status::OK();
  };

  uint64_t total_ops = 0;
  {
    MemEnv dry_base;
    FaultEnv dry(&dry_base, 11);
    Status s = run_workload(&dry);
    ASSERT_TRUE(s.ok()) << s.ToString();
    total_ops = dry.ops();
  }
  ASSERT_GT(total_ops, 10u);

  const std::vector<uint64_t> group_boundaries = {0, 1, 2, 6, 9};
  for (uint64_t k = 0; k < total_ops; ++k) {
    for (int f = 0; f < kFaultKindCount; ++f) {
      FaultKind kind = static_cast<FaultKind>(f);
      if (kind == FaultKind::kTransientError) continue;  // absorbed by retry
      SCOPED_TRACE("fault point " + std::to_string(k) + " kind " +
                   std::to_string(f));
      MemEnv base;
      FaultEnv env(&base, 5000 + k * 16 + f);
      env.ScheduleFault(k, kind);
      (void)run_workload(&env);
      ASSERT_EQ(env.faults_injected(), 1);
      EXPECT_TRUE(env.crashed());

      std::unique_ptr<FileStreamStore> reopened;
      Status open = FileStreamStore::Open(&base, "gc.log", &reopened);
      if (!open.ok()) {
        // Acknowledged bytes were damaged — refusal must be explicit.
        EXPECT_TRUE(open.IsCorruption()) << open.ToString();
        continue;
      }
      uint64_t count = reopened->Count();
      EXPECT_NE(std::find(group_boundaries.begin(), group_boundaries.end(),
                          count),
                group_boundaries.end())
          << "recovered a partial group: count " << count;
      for (uint64_t i = 0; i < count; ++i) {
        Bytes payload;
        ASSERT_TRUE(reopened->Read(i, &payload).ok());
        EXPECT_EQ(payload, StringToBytes(record(i)));
      }
    }
  }
}

// Group durability at the ledger layer: CommitPrevalidatedGroup persists
// its journals through one AppendBatch, so a crash at any fault point must
// recover to a group boundary of the reference trajectory (with inline
// boundary seals included), never a state that splits a commit group.
TEST_F(FaultMatrixTest, GroupCommitCrashRecoversToGroupBoundary) {
  auto run_workload = [&](Env* env,
                          std::map<uint64_t, Snapshot>* trajectory) -> Status {
    SimulatedClock clock(1000 * kMicrosPerSecond);
    std::unique_ptr<FileStreamStore> jf, bf;
    LEDGERDB_RETURN_IF_ERROR(FileStreamStore::Open(env, kJournalPath, &jf));
    LEDGERDB_RETURN_IF_ERROR(FileStreamStore::Open(env, kBlockPath, &bf));
    Ledger ledger(kUri, options_, &clock, lsp_, &registry_,
                  {jf.get(), bf.get()});
    LEDGERDB_RETURN_IF_ERROR(ledger.init_status());
    uint64_t nonce = 0;
    auto make_tx = [&](const std::string& payload, const std::string& clue) {
      ClientTransaction tx;
      tx.ledger_uri = kUri;
      tx.clues = {clue};
      tx.payload = StringToBytes(payload);
      tx.nonce = nonce++;
      tx.client_ts = clock.Now();
      tx.Sign(alice_);
      return tx;
    };
    auto snap = [&] {
      if (trajectory != nullptr) {
        (*trajectory)[ledger.NumJournals()] =
            Snapshot{ledger.FamRoot(), ledger.ClueRoot(), ledger.StateRoot()};
      }
    };
    snap();
    // Three commit groups of three — with block_capacity 4, boundary
    // seals fire inside the group applies, exercising crash points that
    // interleave group persistence with block persistence.
    for (int g = 0; g < 3; ++g) {
      std::vector<Ledger::PrevalidatedTx> batch;
      for (int i = 0; i < 3; ++i) {
        ClientTransaction tx = make_tx(
            "g" + std::to_string(g) + "-p" + std::to_string(i),
            "acct-" + std::to_string(i));
        Ledger::PrevalidatedTx pre;
        LEDGERDB_RETURN_IF_ERROR(ledger.Prevalidate(tx, &pre));
        batch.push_back(std::move(pre));
      }
      std::vector<uint64_t> jsns;
      std::vector<Status> statuses;
      LEDGERDB_RETURN_IF_ERROR(
          ledger.CommitPrevalidatedGroup(std::move(batch), &jsns, &statuses));
      for (const Status& s : statuses) LEDGERDB_RETURN_IF_ERROR(s);
      clock.Advance(kMicrosPerSecond);
      snap();
    }
    LEDGERDB_RETURN_IF_ERROR(ledger.SealBlock());
    snap();
    return Status::OK();
  };

  MemEnv ref_env;
  std::map<uint64_t, Snapshot> trajectory;
  {
    Status ref = run_workload(&ref_env, &trajectory);
    ASSERT_TRUE(ref.ok()) << ref.ToString();
  }
  uint64_t total_ops = 0;
  {
    MemEnv dry_base;
    FaultEnv dry(&dry_base, 13);
    Status s = run_workload(&dry, nullptr);
    ASSERT_TRUE(s.ok()) << s.ToString();
    total_ops = dry.ops();
  }
  ASSERT_GT(total_ops, 20u);

  for (uint64_t k = 0; k < total_ops; ++k) {
    SCOPED_TRACE("fault point " + std::to_string(k));
    FaultKind kind = static_cast<FaultKind>(k % kFaultKindCount);
    if (kind == FaultKind::kTransientError) kind = FaultKind::kCrash;
    MemEnv base;
    FaultEnv env(&base, 7000 + k);
    env.ScheduleFault(k, kind);
    (void)run_workload(&env, nullptr);
    ASSERT_EQ(env.faults_injected(), 1);
    EXPECT_TRUE(env.crashed());

    std::unique_ptr<FileStreamStore> jf, bf;
    Status jopen = FileStreamStore::Open(&base, kJournalPath, &jf);
    if (!jopen.ok()) {
      EXPECT_TRUE(jopen.IsCorruption()) << jopen.ToString();
      continue;
    }
    Status bopen = FileStreamStore::Open(&base, kBlockPath, &bf);
    if (!bopen.ok()) {
      EXPECT_TRUE(bopen.IsCorruption()) << bopen.ToString();
      continue;
    }
    SimulatedClock clock(1000 * kMicrosPerSecond);
    std::unique_ptr<Ledger> recovered;
    Status rs = Ledger::Recover(kUri, options_, &clock, lsp_, &registry_,
                                {jf.get(), bf.get()}, &recovered);
    if (!rs.ok()) {
      EXPECT_TRUE(rs.IsCorruption()) << rs.ToString();
      continue;
    }
    uint64_t count = recovered->NumJournals();
    auto it = trajectory.find(count);
    // The recovered count must be a commit-group boundary: journals of
    // one group are never split by a crash.
    ASSERT_NE(it, trajectory.end())
        << "recovered mid-group: " << count << " journals";
    EXPECT_EQ(recovered->FamRoot(), it->second.fam);
    EXPECT_EQ(recovered->ClueRoot(), it->second.clue);
    EXPECT_EQ(recovered->StateRoot(), it->second.state);
  }
}

// ---------------------------------------------------------------------------
// Shard quarantine
// ---------------------------------------------------------------------------

class ShardQuarantineTest : public ::testing::Test {
 protected:
  ShardQuarantineTest()
      : clock_(2000 * kMicrosPerSecond),
        ca_(KeyPair::FromSeedString("sq-ca")),
        lsp_(KeyPair::FromSeedString("sq-lsp")),
        alice_(KeyPair::FromSeedString("sq-alice")),
        registry_(&ca_) {
    registry_.Register(ca_.Certify("lsp", lsp_.public_key(), Role::kLsp));
    registry_.Register(ca_.Certify("alice", alice_.public_key(), Role::kUser));
    options_.fractal_height = 3;
    options_.block_capacity = 4;
  }

  ClientTransaction MakeTx(const std::string& payload,
                           const std::string& clue) {
    ClientTransaction tx;
    tx.ledger_uri = "lg://sq";
    tx.clues = {clue};
    tx.payload = StringToBytes(payload);
    tx.nonce = nonce_++;
    tx.client_ts = clock_.Now();
    tx.Sign(alice_);
    return tx;
  }

  SimulatedClock clock_;
  CertificateAuthority ca_;
  KeyPair lsp_, alice_;
  MemberRegistry registry_;
  LedgerOptions options_;
  uint64_t nonce_ = 0;
};

TEST_F(ShardQuarantineTest, DamagedShardIsQuarantinedOthersKeepServing) {
  constexpr size_t kShards = 3;
  std::vector<MemoryStreamStore> jstreams(kShards), bstreams(kShards);
  std::vector<LedgerStorage> storage;
  for (size_t i = 0; i < kShards; ++i) {
    storage.push_back({&jstreams[i], &bstreams[i]});
  }
  {
    ShardedLedgerGroup group("lg://sq", kShards, options_, &clock_, lsp_,
                             &registry_, storage);
    for (int i = 0; i < 12; ++i) {
      ShardedLedgerGroup::Location loc;
      ASSERT_TRUE(group
                      .Append(MakeTx("v" + std::to_string(i),
                                     "k" + std::to_string(i)),
                              &loc)
                      .ok());
    }
  }
  // Every shard owns at least its genesis plus some journals. Tamper a
  // journal payload on shard 1 so its (frame-valid) stream fails ledger
  // replay.
  const size_t victim = 1;
  ASSERT_GE(jstreams[victim].Count(), 2u);
  Bytes raw;
  ASSERT_TRUE(jstreams[victim].Read(1, &raw).ok());
  raw[raw.size() / 2] ^= 0x01;
  ASSERT_TRUE(jstreams[victim].Overwrite(1, Slice(raw)).ok());

  std::unique_ptr<ShardedLedgerGroup> group;
  ShardedLedgerGroup::RecoverOutcome outcome;
  Status rs = ShardedLedgerGroup::Recover("lg://sq", kShards, options_, &clock_,
                                          lsp_, &registry_, storage, &group,
                                          &outcome);
  ASSERT_TRUE(rs.ok()) << rs.ToString();
  EXPECT_EQ(outcome.recovered, kShards - 1);
  EXPECT_EQ(outcome.quarantined, 1u);
  EXPECT_TRUE(group->IsQuarantined(victim));
  EXPECT_EQ(group->QuarantinedCount(), 1u);
  EXPECT_TRUE(group->ShardHealth(victim).IsCorruption())
      << group->ShardHealth(victim).ToString();
  EXPECT_TRUE(group->ShardHealth(0).ok());

  // Find clues owned by the dead shard and by a live one.
  std::string dead_clue, live_clue;
  for (int i = 0; dead_clue.empty() || live_clue.empty(); ++i) {
    ASSERT_LT(i, 64);
    std::string clue = "k" + std::to_string(i);
    if (group->ShardOfClue(clue) == victim) {
      if (dead_clue.empty()) dead_clue = clue;
    } else if (live_clue.empty()) {
      live_clue = clue;
    }
  }

  // Reads and writes routed to the quarantined shard fail loudly...
  std::vector<uint64_t> jsns;
  Status dead = group->ListTx(dead_clue, &jsns, nullptr);
  EXPECT_TRUE(dead.IsUnavailable()) << dead.ToString();
  ShardedLedgerGroup::Location loc;
  Status dead_append = group->Append(MakeTx("new", dead_clue), &loc);
  EXPECT_TRUE(dead_append.IsUnavailable()) << dead_append.ToString();
  Journal journal;
  EXPECT_TRUE(
      group->GetJournal({victim, 0}, &journal).IsUnavailable());

  // ...while healthy shards keep serving reads and writes.
  ASSERT_TRUE(group->Append(MakeTx("alive", live_clue), &loc).ok());
  EXPECT_NE(loc.shard, victim);
  ASSERT_TRUE(group->GetJournal(loc, &journal).ok());
  EXPECT_EQ(journal.payload, StringToBytes("alive"));

  // The group commitment stays position-stable: the dead shard's slot is
  // an explicit zero digest.
  GroupCommitment commitment = group->Commitment();
  ASSERT_EQ(commitment.shard_roots.size(), kShards);
  EXPECT_EQ(commitment.shard_roots[victim], Digest{});
  EXPECT_NE(commitment.shard_roots[loc.shard], Digest{});

  // The pipelined path rejects quarantined-shard traffic with the same
  // explicit status instead of crashing on a null shard.
  auto future = group->AppendAsync(MakeTx("pipelined", dead_clue));
  EXPECT_TRUE(future.get().status.IsUnavailable());
  group->StopParallelAppend();
}

TEST_F(ShardQuarantineTest, GroupRecoveryFailsWhenEveryShardIsDead) {
  constexpr size_t kShards = 2;
  std::vector<MemoryStreamStore> jstreams(kShards), bstreams(kShards);
  std::vector<LedgerStorage> storage;
  for (size_t i = 0; i < kShards; ++i) {
    storage.push_back({&jstreams[i], &bstreams[i]});
  }
  // Streams are empty: no shard has even a genesis journal to replay.
  std::unique_ptr<ShardedLedgerGroup> group;
  ShardedLedgerGroup::RecoverOutcome outcome;
  Status rs = ShardedLedgerGroup::Recover("lg://sq", kShards, options_, &clock_,
                                          lsp_, &registry_, storage, &group,
                                          &outcome);
  EXPECT_TRUE(rs.IsCorruption()) << rs.ToString();
  EXPECT_EQ(outcome.recovered, 0u);
  EXPECT_EQ(outcome.quarantined, kShards);
  EXPECT_EQ(group, nullptr);
}

}  // namespace
}  // namespace ledgerdb
