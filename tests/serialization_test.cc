#include <gtest/gtest.h>

#include "common/random.h"
#include "ledger/block.h"
#include "ledger/journal.h"
#include "ledger/ledger.h"
#include "ledger/receipt.h"
#include "timestamp/tsa.h"

namespace ledgerdb {
namespace {

/// Robustness suite: every wire-format decoder must reject malformed
/// input cleanly (no crash, no partial acceptance) — random bytes, bit
/// flips, truncations, and extensions of valid encodings.

template <typename T>
using Decoder = bool (*)(const Bytes&, T*);

template <typename T>
void FuzzDecoder(Decoder<T> decode, const Bytes& valid, uint64_t seed) {
  T out;
  // The pristine encoding decodes.
  ASSERT_TRUE(decode(valid, &out));

  Random rng(seed);
  // Random garbage of many sizes never crashes.
  for (int trial = 0; trial < 200; ++trial) {
    Bytes junk = rng.NextBytes(rng.Uniform(3 * valid.size() + 4));
    T sink;
    decode(junk, &sink);  // must not crash; result irrelevant
  }
  // Truncations are rejected.
  for (size_t cut = 0; cut < valid.size(); cut += 1 + valid.size() / 37) {
    Bytes truncated(valid.begin(), valid.begin() + static_cast<long>(cut));
    T sink;
    EXPECT_FALSE(decode(truncated, &sink)) << "cut=" << cut;
  }
  // Extensions are rejected (decoders demand exact consumption).
  Bytes extended = valid;
  extended.push_back(0x00);
  T sink;
  EXPECT_FALSE(decode(extended, &sink));
}

Journal SampleJournal() {
  Journal journal;
  journal.jsn = 42;
  journal.type = JournalType::kNormal;
  journal.server_ts = 123456789;
  journal.clues = {"clue-a", "clue-b"};
  journal.payload = StringToBytes("sample payload");
  journal.payload_digest = Sha256::Hash(journal.payload);
  journal.request_hash = Sha256::Hash(std::string_view("request"));
  KeyPair client = KeyPair::FromSeedString("ser-client");
  journal.client_key = client.public_key();
  journal.client_sig = client.Sign(journal.request_hash);
  KeyPair co = KeyPair::FromSeedString("ser-cosigner");
  journal.endorsements.push_back({co.public_key(), co.Sign(journal.EndorsementHash())});
  return journal;
}

TEST(SerializationFuzzTest, Journal) {
  FuzzDecoder<Journal>(&Journal::Deserialize, SampleJournal().Serialize(), 101);
}

TEST(SerializationFuzzTest, BlockHeader) {
  BlockHeader header;
  header.height = 7;
  header.first_jsn = 100;
  header.journal_count = 32;
  header.timestamp = 999;
  header.tx_root = Sha256::Hash(std::string_view("tx"));
  header.fam_root = Sha256::Hash(std::string_view("fam"));
  FuzzDecoder<BlockHeader>(&BlockHeader::Deserialize, header.Serialize(), 102);
}

TEST(SerializationFuzzTest, Receipt) {
  Receipt receipt;
  receipt.jsn = 5;
  receipt.request_hash = Sha256::Hash(std::string_view("rq"));
  receipt.tx_hash = Sha256::Hash(std::string_view("tx"));
  receipt.block_hash = Sha256::Hash(std::string_view("blk"));
  receipt.timestamp = 777;
  receipt.lsp_sig = KeyPair::FromSeedString("ser-lsp").Sign(receipt.MessageHash());
  FuzzDecoder<Receipt>(&Receipt::Deserialize, receipt.Serialize(), 103);
}

TEST(SerializationFuzzTest, TimeAttestation) {
  SimulatedClock clock(1000);
  TsaService tsa(KeyPair::FromSeedString("ser-tsa"), &clock);
  TimeAttestation att = tsa.Endorse(Sha256::Hash(std::string_view("d")));
  FuzzDecoder<TimeAttestation>(&TimeAttestation::Deserialize, att.Serialize(), 104);
}

TEST(SerializationFuzzTest, TimeEvidence) {
  TimeEvidence evidence;
  evidence.mode = TimeNotaryMode::kTLedger;
  evidence.ledger_digest = Sha256::Hash(std::string_view("root"));
  evidence.covered_jsn_count = 9;
  evidence.tledger_index = 3;
  FuzzDecoder<TimeEvidence>(&TimeEvidence::Deserialize, evidence.Serialize(), 105);
}

TEST(SerializationFuzzTest, BitFlipsNeverValidateJournalHash) {
  // Any single-bit flip in a serialized journal either fails to decode or
  // decodes to a journal with a different tx-hash (so downstream proofs
  // catch it). It must never produce the same tx-hash from different bytes.
  Journal journal = SampleJournal();
  Bytes valid = journal.Serialize();
  Digest original = journal.TxHash();
  Random rng(106);
  for (int trial = 0; trial < 300; ++trial) {
    Bytes mutated = valid;
    size_t pos = rng.Uniform(mutated.size());
    uint8_t bit = 1 << rng.Uniform(8);
    mutated[pos] ^= bit;
    Journal out;
    if (!Journal::Deserialize(mutated, &out)) continue;
    if (!(out.TxHash() == original)) continue;  // caught by any fam proof
    // Flips that leave the tx-hash intact must still be caught by one of
    // the other commitment layers:
    bool payload_mismatch = !(Sha256::Hash(out.payload) == out.payload_digest);
    bool occult_flag_flip = out.occulted != journal.occulted;  // vs occult journal
    bool endorsement_broken = false;
    Digest emsg = out.EndorsementHash();
    for (const Endorsement& e : out.endorsements) {
      if (!VerifySignature(e.key, emsg, e.signature)) endorsement_broken = true;
    }
    if (out.endorsements.size() != journal.endorsements.size()) {
      endorsement_broken = true;
    }
    EXPECT_TRUE(payload_mismatch || occult_flag_flip || endorsement_broken)
        << "undetectable flip at byte " << pos;
  }
}

TEST(SerializationFuzzTest, PublicKeyRejectsRandomBytes) {
  Random rng(107);
  int accepted = 0;
  for (int trial = 0; trial < 100; ++trial) {
    Bytes junk = rng.NextBytes(64);
    PublicKey key;
    if (PublicKey::Deserialize(junk, &key)) ++accepted;
  }
  // A random 64-byte string is on the curve with probability ~2^-128.
  EXPECT_EQ(accepted, 0);
}

}  // namespace
}  // namespace ledgerdb
