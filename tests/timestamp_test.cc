#include <gtest/gtest.h>

#include "client/ledger_client.h"
#include "net/byzantine_transport.h"
#include "net/transport.h"
#include "timestamp/attacks.h"
#include "timestamp/pegging.h"
#include "timestamp/t_ledger.h"
#include "timestamp/tsa.h"

namespace ledgerdb {
namespace {

Digest D(const std::string& s) { return Sha256::Hash(s); }

class TimestampTest : public ::testing::Test {
 protected:
  TimestampTest()
      : clock_(1000000),
        tsa_key_(KeyPair::FromSeedString("tsa")),
        tsa_(tsa_key_, &clock_) {}

  SimulatedClock clock_;
  KeyPair tsa_key_;
  TsaService tsa_;
};

// ---------------------------------------------------------------------------
// TSA
// ---------------------------------------------------------------------------

TEST_F(TimestampTest, EndorsementCarriesClockTime) {
  clock_.SetTime(5000000);
  TimeAttestation att = tsa_.Endorse(D("doc"));
  EXPECT_EQ(att.timestamp, 5000000);
  EXPECT_EQ(att.digest, D("doc"));
  EXPECT_TRUE(att.Verify(tsa_.public_key()));
  EXPECT_EQ(tsa_.endorsement_count(), 1u);
}

TEST_F(TimestampTest, AttestationRejectsTamperedFields) {
  TimeAttestation att = tsa_.Endorse(D("doc"));
  TimeAttestation bad = att;
  bad.timestamp += 1;  // backdating/forward-dating breaks the signature
  EXPECT_FALSE(bad.Verify(tsa_.public_key()));
  bad = att;
  bad.digest = D("other");
  EXPECT_FALSE(bad.Verify(tsa_.public_key()));
}

TEST_F(TimestampTest, AttestationRejectsWrongAuthority) {
  TimeAttestation att = tsa_.Endorse(D("doc"));
  KeyPair impostor = KeyPair::FromSeedString("impostor");
  EXPECT_FALSE(att.Verify(impostor.public_key()));
}

TEST_F(TimestampTest, AttestationSerializationRoundTrip) {
  TimeAttestation att = tsa_.Endorse(D("doc"));
  TimeAttestation back;
  ASSERT_TRUE(TimeAttestation::Deserialize(att.Serialize(), &back));
  EXPECT_TRUE(back.Verify(tsa_.public_key()));
  EXPECT_EQ(back.timestamp, att.timestamp);
}

TEST_F(TimestampTest, TsaPoolRoundRobinAndVerifyAny) {
  KeyPair key2 = KeyPair::FromSeedString("tsa2");
  TsaService tsa2(key2, &clock_);
  TsaPool pool;
  pool.Add(&tsa_);
  pool.Add(&tsa2);
  TimeAttestation a1 = pool.Endorse(D("a"));
  TimeAttestation a2 = pool.Endorse(D("b"));
  EXPECT_EQ(tsa_.endorsement_count(), 1u);
  EXPECT_EQ(tsa2.endorsement_count(), 1u);
  EXPECT_TRUE(pool.VerifyAny(a1));
  EXPECT_TRUE(pool.VerifyAny(a2));
  TimeAttestation forged = a1;
  forged.timestamp += 7;
  EXPECT_FALSE(pool.VerifyAny(forged));
}

// ---------------------------------------------------------------------------
// Pegging protocols
// ---------------------------------------------------------------------------

TEST_F(TimestampTest, OneWayPeggingDelaysBinding) {
  OneWayPegging pegging(&tsa_, &clock_);
  pegging.Submit(D("j1"));
  EXPECT_EQ(pegging.PendingCount(), 1u);
  clock_.Advance(10 * kMicrosPerSecond);  // LSP stalls 10s
  auto flushed = pegging.Flush();
  ASSERT_EQ(flushed.size(), 1u);
  EXPECT_EQ(flushed[0].anchored_at - flushed[0].created_at,
            10 * kMicrosPerSecond);
  EXPECT_TRUE(flushed[0].attestation.Verify(tsa_.public_key()));
}

TEST_F(TimestampTest, OneWayPreservesRelativeOrder) {
  OneWayPegging pegging(&tsa_, &clock_);
  pegging.Submit(D("first"));
  clock_.Advance(100);
  pegging.Submit(D("second"));
  clock_.Advance(kMicrosPerSecond);
  auto flushed = pegging.Flush();
  ASSERT_EQ(flushed.size(), 2u);
  EXPECT_EQ(flushed[0].digest, D("first"));
  EXPECT_EQ(flushed[1].digest, D("second"));
  EXPECT_LT(flushed[0].created_at, flushed[1].created_at);
}

TEST_F(TimestampTest, TwoWayPegAnchorsImmediately) {
  TwoWayPegging pegging(&tsa_, &clock_, kMicrosPerSecond);
  PeggedDigest record = pegging.Peg(D("ledger-root"));
  EXPECT_EQ(record.anchored_at, record.created_at);
  EXPECT_TRUE(record.attestation.Verify(tsa_.public_key()));
}

TEST_F(TimestampTest, TwoWayMaybePegRespectsInterval) {
  TwoWayPegging pegging(&tsa_, &clock_, kMicrosPerSecond);
  EXPECT_TRUE(pegging.MaybePeg(D("r1")));
  EXPECT_FALSE(pegging.MaybePeg(D("r2")));  // too soon
  clock_.Advance(kMicrosPerSecond);
  EXPECT_TRUE(pegging.MaybePeg(D("r3")));
  EXPECT_EQ(pegging.anchored().size(), 2u);
}

TEST_F(TimestampTest, TwoWayAnchorCallbackFires) {
  TwoWayPegging pegging(&tsa_, &clock_, kMicrosPerSecond);
  static int calls = 0;
  calls = 0;
  pegging.SetAnchorCallback(
      [](void*, const TimeAttestation&) { ++calls; }, nullptr);
  pegging.Peg(D("r"));
  EXPECT_EQ(calls, 1);
}

// ---------------------------------------------------------------------------
// T-Ledger
// ---------------------------------------------------------------------------

class TLedgerTest : public TimestampTest {
 protected:
  TLedgerTest()
      : tledger_(&tsa_, &clock_, KeyPair::FromSeedString("tledger-lsp"), {}) {}

  TLedger tledger_;
};

TEST_F(TLedgerTest, AcceptsFreshSubmissions) {
  TLedgerReceipt receipt;
  ASSERT_TRUE(tledger_.Submit(D("d1"), clock_.Now(), &receipt).ok());
  EXPECT_EQ(receipt.index, 0u);
  EXPECT_TRUE(tledger_.VerifyReceipt(D("d1"), receipt));
  EXPECT_EQ(tledger_.submission_count(), 1u);
}

TEST_F(TLedgerTest, RejectsStaleSubmissions) {
  // Protocol 4: τ_t >= τ_c + τ_Δ is rejected — this is what removes the
  // amplification attack.
  Timestamp tau_c = clock_.Now();
  clock_.Advance(600 * kMicrosPerMilli);  // default tau_delta is 500ms
  TLedgerReceipt receipt;
  EXPECT_TRUE(tledger_.Submit(D("stale"), tau_c, &receipt).IsTimestampRejected());
  EXPECT_EQ(tledger_.rejected_count(), 1u);
}

TEST_F(TLedgerTest, ReceiptSignatureBindsAllFields) {
  TLedgerReceipt receipt;
  ASSERT_TRUE(tledger_.Submit(D("d"), clock_.Now(), &receipt).ok());
  EXPECT_FALSE(tledger_.VerifyReceipt(D("other"), receipt));
  TLedgerReceipt forged = receipt;
  forged.tledger_ts += 1;
  EXPECT_FALSE(tledger_.VerifyReceipt(D("d"), forged));
}

TEST_F(TLedgerTest, TickFinalizesAfterInterval) {
  TLedgerReceipt receipt;
  ASSERT_TRUE(tledger_.Submit(D("d"), clock_.Now(), &receipt).ok());
  EXPECT_FALSE(tledger_.Tick());  // interval not yet elapsed
  clock_.Advance(kMicrosPerSecond);
  EXPECT_TRUE(tledger_.Tick());
  EXPECT_EQ(tledger_.finalization_count(), 1u);
  // Nothing new: next tick is a no-op.
  clock_.Advance(kMicrosPerSecond);
  EXPECT_FALSE(tledger_.Tick());
}

TEST_F(TLedgerTest, TimeProofRoundTrip) {
  TLedgerReceipt receipt;
  ASSERT_TRUE(tledger_.Submit(D("doc"), clock_.Now(), &receipt).ok());
  TimeProof proof;
  EXPECT_TRUE(tledger_.GetTimeProof(receipt.index, &proof).IsNotFound());
  tledger_.ForceFinalize();
  ASSERT_TRUE(tledger_.GetTimeProof(receipt.index, &proof).ok());
  EXPECT_TRUE(TLedger::VerifyTimeProof(D("doc"), proof, tsa_.public_key()));
  EXPECT_FALSE(TLedger::VerifyTimeProof(D("forged"), proof, tsa_.public_key()));
}

TEST_F(TLedgerTest, TimeProofBindsToEarliestCoveringFinalization) {
  TLedgerReceipt r1, r2;
  ASSERT_TRUE(tledger_.Submit(D("early"), clock_.Now(), &r1).ok());
  tledger_.ForceFinalize();
  Timestamp first_fin_time = clock_.Now();
  clock_.Advance(5 * kMicrosPerSecond);
  ASSERT_TRUE(tledger_.Submit(D("late"), clock_.Now(), &r2).ok());
  tledger_.ForceFinalize();

  TimeProof proof;
  ASSERT_TRUE(tledger_.GetTimeProof(r1.index, &proof).ok());
  // The early digest's evidence is the first finalization — it proves
  // existence at the earlier time, not the later one.
  EXPECT_EQ(proof.finalization.timestamp, first_fin_time);
  EXPECT_TRUE(TLedger::VerifyTimeProof(D("early"), proof, tsa_.public_key()));
}

TEST_F(TLedgerTest, ManySubmissionsAllProvable) {
  std::vector<TLedgerReceipt> receipts(50);
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(
        tledger_.Submit(D("d" + std::to_string(i)), clock_.Now(), &receipts[i])
            .ok());
    clock_.Advance(10 * kMicrosPerMilli);
    tledger_.Tick();
  }
  tledger_.ForceFinalize();
  for (int i = 0; i < 50; ++i) {
    TimeProof proof;
    ASSERT_TRUE(tledger_.GetTimeProof(receipts[i].index, &proof).ok()) << i;
    EXPECT_TRUE(TLedger::VerifyTimeProof(D("d" + std::to_string(i)), proof,
                                         tsa_.public_key()))
        << i;
  }
  // T-Ledger amortizes TSA traffic: far fewer endorsements than
  // submissions.
  EXPECT_LT(tsa_.endorsement_count(), 10u);
}

TEST_F(TLedgerTest, InterleavedClientsShareFinalizations) {
  // Two ledgers submit alternately; one finalization covers both, and each
  // submission's proof verifies independently.
  TLedgerReceipt ra, rb;
  ASSERT_TRUE(tledger_.Submit(D("ledger-a-root"), clock_.Now(), &ra).ok());
  clock_.Advance(100 * kMicrosPerMilli);
  ASSERT_TRUE(tledger_.Submit(D("ledger-b-root"), clock_.Now(), &rb).ok());
  tledger_.ForceFinalize();
  EXPECT_EQ(tledger_.finalization_count(), 1u);
  TimeProof pa, pb;
  ASSERT_TRUE(tledger_.GetTimeProof(ra.index, &pa).ok());
  ASSERT_TRUE(tledger_.GetTimeProof(rb.index, &pb).ok());
  EXPECT_TRUE(TLedger::VerifyTimeProof(D("ledger-a-root"), pa, tsa_.public_key()));
  EXPECT_TRUE(TLedger::VerifyTimeProof(D("ledger-b-root"), pb, tsa_.public_key()));
  // Cross-wiring digests fails.
  EXPECT_FALSE(TLedger::VerifyTimeProof(D("ledger-b-root"), pa, tsa_.public_key()));
}

TEST_F(TLedgerTest, ProofAgainstWrongFinalizationRejected) {
  TLedgerReceipt r1, r2;
  ASSERT_TRUE(tledger_.Submit(D("one"), clock_.Now(), &r1).ok());
  tledger_.ForceFinalize();
  ASSERT_TRUE(tledger_.Submit(D("two"), clock_.Now(), &r2).ok());
  tledger_.ForceFinalize();
  TimeProof p1, p2;
  ASSERT_TRUE(tledger_.GetTimeProof(r1.index, &p1).ok());
  ASSERT_TRUE(tledger_.GetTimeProof(r2.index, &p2).ok());
  // Splicing the newer attestation onto the older membership proof fails:
  // the proof's tree size must equal the attested finalized size.
  TimeProof spliced = p1;
  spliced.finalization = p2.finalization;
  spliced.finalized_size = p2.finalized_size;
  EXPECT_FALSE(TLedger::VerifyTimeProof(D("one"), spliced, tsa_.public_key()));
}

// ---------------------------------------------------------------------------
// Attack simulations (Figure 5 semantics)
// ---------------------------------------------------------------------------

TEST(AttackSimTest, OneWayWindowGrowsWithDelay) {
  Timestamp dt = kMicrosPerSecond;
  auto r1 = SimulateOneWayAttack(dt, 10 * kMicrosPerSecond);
  auto r2 = SimulateOneWayAttack(dt, 100 * kMicrosPerSecond);
  EXPECT_FALSE(r1.bounded);
  EXPECT_GT(r2.window, r1.window);            // amplification is unbounded
  EXPECT_GE(r1.window, 10 * kMicrosPerSecond);
}

TEST(AttackSimTest, TwoWayWindowSaturatesAtTwoDeltaTau) {
  Timestamp dt = kMicrosPerSecond;
  auto r1 = SimulateTwoWayAttack(dt, 10 * kMicrosPerSecond);
  auto r2 = SimulateTwoWayAttack(dt, 1000 * kMicrosPerSecond);
  EXPECT_TRUE(r1.bounded);
  EXPECT_EQ(r1.window, r2.window);  // saturated
  EXPECT_LE(r1.window, 2 * dt);
}

TEST(AttackSimTest, TwoWaySmallDelayNotAmplified) {
  Timestamp dt = kMicrosPerSecond;
  auto r = SimulateTwoWayAttack(dt, 100 * kMicrosPerMilli);
  EXPECT_EQ(r.window, 100 * kMicrosPerMilli);
}

TEST(AttackSimTest, TLedgerRejectsStallsAndBoundsWindow) {
  Timestamp dt = kMicrosPerSecond;
  Timestamp tau_delta = 500 * kMicrosPerMilli;
  auto r = SimulateTLedgerAttack(dt, tau_delta, 60 * kMicrosPerSecond);
  EXPECT_TRUE(r.bounded);
  EXPECT_GT(r.rejections, 0u);            // the stalled submission bounced
  EXPECT_LE(r.window, tau_delta + dt);    // ≈ τ_Δ + Δτ ≈ 1.5s < 2s
}

TEST(AttackSimTest, TLedgerHonestSubmissionUnaffected) {
  Timestamp dt = kMicrosPerSecond;
  auto r = SimulateTLedgerAttack(dt, 500 * kMicrosPerMilli, 0);
  EXPECT_TRUE(r.bounded);
  EXPECT_EQ(r.rejections, 0u);
  EXPECT_LE(r.window, dt + 500 * kMicrosPerMilli);
}

TEST(AttackSimTest, RejectionAccountingTracksStalling) {
  Timestamp dt = kMicrosPerSecond;
  Timestamp tau_delta = 500 * kMicrosPerMilli;
  // Inside τ_Δ nothing bounces; past it, exactly the stalled submission.
  auto fresh = SimulateTLedgerAttack(dt, tau_delta, tau_delta / 2);
  EXPECT_EQ(fresh.rejections, 0u);
  auto stalled = SimulateTLedgerAttack(dt, tau_delta, 2 * tau_delta);
  EXPECT_EQ(stalled.rejections, 1u);
  // Two-way pegging never rejects — it bounds the window by anchoring.
  auto twoway = SimulateTwoWayAttack(dt, 2 * tau_delta);
  EXPECT_EQ(twoway.rejections, 0u);
}

TEST(AttackSimTest, WindowSaturationSweepAsDelayGrows) {
  Timestamp dt = kMicrosPerSecond;
  Timestamp tau_delta = 500 * kMicrosPerMilli;
  Timestamp prev_twoway = 0;
  bool tledger_rejected_before = false;
  for (Timestamp delay = 0; delay <= 64 * kMicrosPerSecond;
       delay = delay == 0 ? kMicrosPerSecond : delay * 4) {
    auto twoway = SimulateTwoWayAttack(dt, delay);
    EXPECT_TRUE(twoway.bounded);
    EXPECT_GE(twoway.window, prev_twoway);  // monotone in the delay…
    EXPECT_LE(twoway.window, 2 * dt);       // …but saturated at 2·Δτ
    prev_twoway = twoway.window;

    auto tl = SimulateTLedgerAttack(dt, tau_delta, delay);
    EXPECT_TRUE(tl.bounded);
    EXPECT_LE(tl.window, tau_delta + dt);   // saturated at τ_Δ + Δτ
    // Once the delay exceeds τ_Δ the protocol starts bouncing, and keeps
    // bouncing for every longer stall (rejection is monotone).
    if (delay >= tau_delta) EXPECT_GT(tl.rejections, 0u);
    if (tledger_rejected_before) EXPECT_GT(tl.rejections, 0u);
    tledger_rejected_before = tl.rejections > 0;
  }
}

// The transport-level version of the stall: a Byzantine network delays the
// append exchange past τ_Δ. The client masks the delay by retrying (the
// server dedups the resubmission), but the LSP's attempt to peg the root
// at the journal's creation time is now stale and T-Ledger bounces it —
// the adversary cannot buy itself an unbounded tamper window.
TEST(AttackSimTest, TransportDelayInjectionIsBoundedByTLedger) {
  SimulatedClock clock(1000000);
  KeyPair tsa_key = KeyPair::FromSeedString("byz-time-tsa");
  TsaService tsa(tsa_key, &clock);
  TLedger::Options topt;
  topt.tau_delta = 500 * kMicrosPerMilli;
  topt.finalize_interval = kMicrosPerSecond;
  TLedger tledger(&tsa, &clock, KeyPair::FromSeedString("byz-time-tl"), topt);

  KeyPair lsp = KeyPair::FromSeedString("byz-time-lsp");
  KeyPair alice = KeyPair::FromSeedString("byz-time-alice");
  LedgerOptions lopt;
  lopt.fractal_height = 3;
  lopt.block_capacity = 4;
  Ledger ledger("lg://byz-time", lopt, &clock, lsp, nullptr);
  LocalTransport local(&ledger);
  ByzantineTransport byz(&local, 2026);
  byz.SetDelayClock(&clock, topt.tau_delta + 100 * kMicrosPerMilli);
  byz.InjectFault(RpcOp::kAppendTx, 0, FaultKind::kDelay);

  LedgerClient::Options copts;
  copts.lsp_key = lsp.public_key();
  copts.fractal_height = lopt.fractal_height;
  LedgerClient client(&byz, alice, copts);

  Timestamp tau_c = clock.Now();
  uint64_t jsn = 0;
  ASSERT_TRUE(client.AppendVerified(StringToBytes("doc"), {}, &jsn).ok());
  EXPECT_GT(byz.faults_injected(), 0u);
  // Pegging at the pre-delay creation time is rejected as stale…
  TLedgerReceipt receipt;
  EXPECT_TRUE(
      tledger.Submit(ledger.FamRoot(), tau_c, &receipt).IsTimestampRejected());
  EXPECT_EQ(tledger.rejected_count(), 1u);
  // …and re-pegging with a fresh τ_c succeeds, provably, within τ_Δ + Δτ.
  Timestamp retry_at = clock.Now();
  ASSERT_TRUE(tledger.Submit(ledger.FamRoot(), retry_at, &receipt).ok());
  clock.Advance(topt.finalize_interval);
  tledger.Tick();
  TimeProof proof;
  ASSERT_TRUE(tledger.GetTimeProof(receipt.index, &proof).ok());
  EXPECT_TRUE(
      TLedger::VerifyTimeProof(ledger.FamRoot(), proof, tsa.public_key()));
  EXPECT_LE(clock.Now() - retry_at, topt.tau_delta + topt.finalize_interval);
}

}  // namespace
}  // namespace ledgerdb
