#include <gtest/gtest.h>

#include "client/ledger_client.h"
#include "net/transport.h"

namespace ledgerdb {
namespace {

class ClientTest : public ::testing::Test {
 protected:
  ClientTest()
      : clock_(0),
        ca_(KeyPair::FromSeedString("cl-ca")),
        registry_(&ca_),
        lsp_(KeyPair::FromSeedString("cl-lsp")),
        alice_(KeyPair::FromSeedString("cl-alice")) {
    registry_.Register(ca_.Certify("lsp", lsp_.public_key(), Role::kLsp));
    registry_.Register(ca_.Certify("alice", alice_.public_key(), Role::kUser));
    LedgerOptions options;
    options.fractal_height = 3;
    options.block_capacity = 4;
    ledger_ = std::make_unique<Ledger>("lg://client", options, &clock_, lsp_,
                                       &registry_);
    transport_ = std::make_unique<LocalTransport>(ledger_.get());
    LedgerClient::Options copts;
    copts.lsp_key = lsp_.public_key();
    copts.fractal_height = options.fractal_height;
    client_ = std::make_unique<LedgerClient>(transport_.get(), alice_, copts);
  }

  SimulatedClock clock_;
  CertificateAuthority ca_;
  MemberRegistry registry_;
  KeyPair lsp_, alice_;
  std::unique_ptr<Ledger> ledger_;
  std::unique_ptr<LocalTransport> transport_;
  std::unique_ptr<LedgerClient> client_;
};

TEST_F(ClientTest, AppendVerifiedRetainsValidReceipts) {
  uint64_t jsn = 0;
  Receipt receipt;
  ASSERT_TRUE(client_->AppendVerified(StringToBytes("doc"), {}, &jsn, &receipt).ok());
  EXPECT_EQ(client_->receipts().size(), 1u);
  EXPECT_TRUE(receipt.Verify(ledger_->lsp_key()));
  EXPECT_TRUE(client_->CheckReceiptStillHolds(receipt).ok());
}

TEST_F(ClientTest, FetchAndVerifyJournal) {
  uint64_t jsn = 0;
  ASSERT_TRUE(client_->AppendVerified(StringToBytes("hello"), {}, &jsn).ok());
  ASSERT_TRUE(client_->RefreshTrustedRoots().ok());
  Journal journal;
  ASSERT_TRUE(client_->FetchAndVerifyJournal(jsn, &journal).ok());
  EXPECT_EQ(journal.payload, StringToBytes("hello"));
}

TEST_F(ClientTest, StaleRootRejectsNewJournals) {
  uint64_t j1 = 0, j2 = 0;
  ASSERT_TRUE(client_->AppendVerified(StringToBytes("one"), {}, &j1).ok());
  ASSERT_TRUE(client_->RefreshTrustedRoots().ok());
  ASSERT_TRUE(client_->AppendVerified(StringToBytes("two"), {}, &j2).ok());
  Journal journal;
  // The pinned root predates journal two: verification must fail closed
  // until the client refreshes its datum.
  EXPECT_TRUE(client_->FetchAndVerifyJournal(j2, &journal).IsVerificationFailed());
  ASSERT_TRUE(client_->RefreshTrustedRoots().ok());
  EXPECT_TRUE(client_->FetchAndVerifyJournal(j2, &journal).ok());
}

TEST_F(ClientTest, FetchAndVerifyLineage) {
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(client_
                    ->AppendVerified(StringToBytes("life-" + std::to_string(i)),
                                     {"asset"}, nullptr)
                    .ok());
  }
  ASSERT_TRUE(client_->RefreshTrustedRoots().ok());
  std::vector<Journal> lineage;
  ASSERT_TRUE(client_->FetchAndVerifyLineage("asset", &lineage).ok());
  EXPECT_EQ(lineage.size(), 5u);
  EXPECT_EQ(lineage[3].payload, StringToBytes("life-3"));
  EXPECT_TRUE(client_->FetchAndVerifyLineage("nope", &lineage).IsNotFound());
}

TEST_F(ClientTest, OccultedJournalStillVerifies) {
  KeyPair dba = KeyPair::FromSeedString("cl-dba");
  KeyPair regulator = KeyPair::FromSeedString("cl-reg");
  registry_.Register(ca_.Certify("dba", dba.public_key(), Role::kDba));
  registry_.Register(ca_.Certify("reg", regulator.public_key(), Role::kRegulator));
  uint64_t jsn = 0;
  ASSERT_TRUE(client_->AppendVerified(StringToBytes("pii"), {}, &jsn).ok());
  Digest req = Ledger::OccultRequestHash("lg://client", jsn);
  std::vector<Endorsement> sigs = {{dba.public_key(), dba.Sign(req)},
                                   {regulator.public_key(), regulator.Sign(req)}};
  ASSERT_TRUE(ledger_->Occult(jsn, sigs, nullptr).ok());
  ASSERT_TRUE(client_->RefreshTrustedRoots().ok());
  Journal journal;
  ASSERT_TRUE(client_->FetchAndVerifyJournal(jsn, &journal).ok());
  EXPECT_TRUE(journal.occulted);
  EXPECT_TRUE(journal.payload.empty());
}

// ---------------------------------------------------------------------------
// Proof wire formats: round trips and fuzz.
// ---------------------------------------------------------------------------

TEST_F(ClientTest, ProofWireFormatsRoundTrip) {
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(client_
                    ->AppendVerified(StringToBytes("p" + std::to_string(i)),
                                     {"c" + std::to_string(i % 3)}, nullptr)
                    .ok());
  }
  FamProof fam_proof;
  ASSERT_TRUE(ledger_->GetProof(5, &fam_proof).ok());
  FamProof fam_back;
  ASSERT_TRUE(FamProof::Deserialize(fam_proof.Serialize(), &fam_back));
  Journal journal;
  ASSERT_TRUE(ledger_->GetJournal(5, &journal).ok());
  EXPECT_TRUE(Ledger::VerifyJournalProof(journal, fam_back, ledger_->FamRoot()));

  ClueProof clue_proof;
  ASSERT_TRUE(ledger_->GetClueProof("c1", 0, 0, &clue_proof).ok());
  ClueProof clue_back;
  ASSERT_TRUE(ClueProof::Deserialize(clue_proof.Serialize(), &clue_back));
  EXPECT_EQ(clue_back.clue, "c1");
  EXPECT_EQ(clue_back.entry_count, clue_proof.entry_count);

  MptProof mpt_back;
  ASSERT_TRUE(MptProof::Deserialize(clue_proof.mpt.Serialize(), &mpt_back));
  EXPECT_EQ(mpt_back.nodes, clue_proof.mpt.nodes);
}

TEST_F(ClientTest, TimeProofWireFormatRoundTrip) {
  TsaService tsa(KeyPair::FromSeedString("cl-tsa"), &clock_);
  TLedger tledger(&tsa, &clock_, KeyPair::FromSeedString("cl-tl"), {});
  TLedgerReceipt receipt;
  Digest d = Sha256::Hash(std::string_view("root"));
  ASSERT_TRUE(tledger.Submit(d, clock_.Now(), &receipt).ok());
  tledger.ForceFinalize();
  TimeProof proof;
  ASSERT_TRUE(tledger.GetTimeProof(receipt.index, &proof).ok());
  TimeProof back;
  ASSERT_TRUE(TimeProof::Deserialize(proof.Serialize(), &back));
  EXPECT_TRUE(TLedger::VerifyTimeProof(d, back, tsa.public_key()));
}

TEST(ProofFuzzTest, ProofDecodersRejectJunkAndTruncation) {
  ShrubsAccumulator acc;
  for (uint64_t i = 0; i < 25; ++i) {
    Bytes b;
    PutU64(&b, i);
    acc.Append(Sha256::Hash(b));
  }
  MembershipProof proof;
  ASSERT_TRUE(acc.GetProof(7, &proof).ok());
  Bytes valid = proof.Serialize();
  MembershipProof out;
  ASSERT_TRUE(MembershipProof::Deserialize(valid, &out));

  Random rng(55);
  for (int trial = 0; trial < 200; ++trial) {
    Bytes junk = rng.NextBytes(rng.Uniform(2 * valid.size() + 2));
    MembershipProof sink;
    MembershipProof::Deserialize(junk, &sink);  // must not crash
  }
  for (size_t cut = 0; cut < valid.size(); cut += 3) {
    Bytes truncated(valid.begin(), valid.begin() + static_cast<long>(cut));
    MembershipProof sink;
    EXPECT_FALSE(MembershipProof::Deserialize(truncated, &sink));
  }
  Bytes extended = valid;
  extended.push_back(0);
  EXPECT_FALSE(MembershipProof::Deserialize(extended, &out));

  BatchProof batch;
  ASSERT_TRUE(acc.GetBatchProof({2, 3, 9}, &batch).ok());
  Bytes bvalid = batch.Serialize();
  BatchProof bout;
  ASSERT_TRUE(BatchProof::Deserialize(bvalid, &bout));
  for (int trial = 0; trial < 200; ++trial) {
    Bytes junk = rng.NextBytes(rng.Uniform(2 * bvalid.size() + 2));
    BatchProof sink;
    BatchProof::Deserialize(junk, &sink);
  }
}

}  // namespace
}  // namespace ledgerdb
