// Networked service plane tests: the socket wire protocol, LedgerServer
// admission control / deadlines / graceful drain, SocketTransport error
// mapping, per-request deadlines across every transport, frame fuzzing,
// and the seeded socket-fault matrix.
//
// Labeled `tsan`: the server is the first genuinely multi-threaded
// component with cross-thread handoff (event loop -> workers -> outboxes),
// so it runs under ThreadSanitizer in CI alongside the other tsan suites.
//
// Fuzz volume is bounded for tier-1 and overridable like the proof fuzzer:
// LEDGERDB_PROOF_FUZZ_ROUNDS / LEDGERDB_PROOF_FUZZ_SEED.

#include <gtest/gtest.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "client/ledger_client.h"
#include "common/random.h"
#include "common/retry.h"
#include "ledger/ledger.h"
#include "net/byzantine_transport.h"
#include "net/server.h"
#include "net/socket_fault.h"
#include "net/socket_transport.h"
#include "net/socket_util.h"
#include "net/wire.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "storage/checkpoint.h"

namespace ledgerdb {
namespace {

uint64_t EnvU64(const char* name, uint64_t fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::strtoull(v, nullptr, 10) : fallback;
}

uint64_t FuzzSeed() { return EnvU64("LEDGERDB_PROOF_FUZZ_SEED", 20260809); }
uint64_t FuzzRounds() { return EnvU64("LEDGERDB_PROOF_FUZZ_ROUNDS", 200); }

class NetServiceTest : public ::testing::Test {
 protected:
  NetServiceTest()
      : clock_(1000 * kMicrosPerSecond),
        ca_(KeyPair::FromSeedString("net-ca")),
        registry_(&ca_),
        lsp_(KeyPair::FromSeedString("net-lsp")),
        alice_(KeyPair::FromSeedString("net-alice")) {
    registry_.Register(ca_.Certify("lsp", lsp_.public_key(), Role::kLsp));
    registry_.Register(ca_.Certify("alice", alice_.public_key(), Role::kUser));
    options_.fractal_height = 4;
    options_.block_capacity = 4;
    ledger_ = std::make_unique<Ledger>("lg://net", options_, &clock_, lsp_,
                                       &registry_);
  }

  /// Short unique socket path (sun_path is ~108 bytes; TempDir + long test
  /// names do not fit).
  std::string SockPath(const std::string& tag) {
    return ::testing::TempDir() + "/lds_" + tag + ".sock";
  }

  KeyPair RegisterUser(const std::string& name) {
    KeyPair key = KeyPair::FromSeedString("net-" + name);
    registry_.Register(ca_.Certify(name, key.public_key(), Role::kUser));
    return key;
  }

  uint64_t AppendDirect(const std::string& payload,
                        const std::vector<std::string>& clues) {
    ClientTransaction tx;
    tx.ledger_uri = "lg://net";
    tx.clues = clues;
    tx.payload = StringToBytes(payload);
    tx.nonce = next_nonce_++;
    tx.client_ts = clock_.Now();
    tx.Sign(alice_);
    uint64_t jsn = 0;
    EXPECT_TRUE(ledger_->Append(tx, &jsn).ok());
    return jsn;
  }

  LedgerClient::Options ClientOptions() const {
    LedgerClient::Options copts;
    copts.lsp_key = lsp_.public_key();
    copts.fractal_height = options_.fractal_height;
    return copts;
  }

  /// Raw connected fd (hello NOT sent) for protocol-violation tests.
  int RawConnect(const std::string& address) {
    net::Address parsed;
    EXPECT_TRUE(net::ParseAddress(address, &parsed));
    int fd = -1;
    EXPECT_TRUE(net::ConnectWithTimeout(parsed, 2'000'000, &fd).ok());
    return fd;
  }

  /// Reads until the peer closes or `timeout_us` passes; true iff closed.
  bool DrainUntilClosed(int fd, uint64_t timeout_us) {
    uint64_t deadline = obs::NowUs() + timeout_us;
    uint8_t buf[4096];
    while (true) {
      size_t got = 0;
      Status s = net::RecvSome(fd, buf, sizeof(buf), deadline, &got);
      if (!s.ok()) return s.IsTransientIO();  // reset counts as closed
      if (got == 0) return true;              // EOF
    }
  }

  SimulatedClock clock_;
  CertificateAuthority ca_;
  MemberRegistry registry_;
  KeyPair lsp_, alice_;
  LedgerOptions options_;
  std::unique_ptr<Ledger> ledger_;
  uint64_t next_nonce_ = 0;
};

// ---------------------------------------------------------------------------
// Wire codec round trips and strictness
// ---------------------------------------------------------------------------

TEST_F(NetServiceTest, RequestFrameRoundTrip) {
  wire::RequestFrame req;
  req.op = RpcOp::kGetClueProof;
  req.request_id = 0x0123456789abcdefULL;
  req.body = StringToBytes("payload");
  wire::RequestFrame out;
  ASSERT_TRUE(wire::RequestFrame::Decode(req.Encode(), &out));
  EXPECT_EQ(out.op, req.op);
  EXPECT_EQ(out.request_id, req.request_id);
  EXPECT_EQ(out.body, req.body);

  // Truncation below the header fails; unknown op fails.
  Bytes enc = req.Encode();
  for (size_t len = 0; len < 9; ++len) {
    EXPECT_FALSE(wire::RequestFrame::Decode(
        Bytes(enc.begin(), enc.begin() + static_cast<ptrdiff_t>(len)), &out));
  }
  Bytes bad_op = enc;
  bad_op[0] = static_cast<uint8_t>(kNumRpcOps);
  EXPECT_FALSE(wire::RequestFrame::Decode(bad_op, &out));
}

TEST_F(NetServiceTest, ResponseFrameCarriesEveryStatusCode) {
  const Status statuses[] = {
      Status::OK(),
      Status::NotFound("x"),
      Status::InvalidArgument("x"),
      Status::VerificationFailed("x"),
      Status::PermissionDenied("x"),
      Status::Corruption("x"),
      Status::IOError("x"),
      Status::TransientIO("x"),
      Status::Unavailable("x"),
      Status::DeadlineExceeded("x"),
  };
  for (const Status& s : statuses) {
    wire::ResponseFrame resp =
        wire::ResponseFrame::From(RpcOp::kGetCommitment, 7, s);
    wire::ResponseFrame out;
    ASSERT_TRUE(wire::ResponseFrame::Decode(resp.Encode(), &out));
    Status back = out.ToStatus();
    EXPECT_EQ(back.code(), s.code()) << s.ToString();
    EXPECT_EQ(back.IsRetriable(), s.IsRetriable());
  }
  // An invalid status code byte must not decode.
  wire::ResponseFrame resp =
      wire::ResponseFrame::From(RpcOp::kGetCommitment, 7, Status::OK());
  Bytes enc = resp.Encode();
  enc[9] = 0xee;
  wire::ResponseFrame out;
  EXPECT_FALSE(wire::ResponseFrame::Decode(enc, &out));
}

TEST_F(NetServiceTest, BodyCodecsAreStrict) {
  uint64_t jsn = 0;
  Bytes enc = wire::EncodeJsnRequest(42);
  ASSERT_TRUE(wire::DecodeJsnRequest(enc, &jsn));
  EXPECT_EQ(jsn, 42u);
  enc.push_back(0);  // trailing byte
  EXPECT_FALSE(wire::DecodeJsnRequest(enc, &jsn));

  std::string clue;
  uint64_t a = 0, b = 0;
  enc = wire::EncodeClueWindowRequest("acct:1", 3, 9);
  ASSERT_TRUE(wire::DecodeClueWindowRequest(enc, &clue, &a, &b));
  EXPECT_EQ(clue, "acct:1");
  EXPECT_EQ(a, 3u);
  EXPECT_EQ(b, 9u);
  enc.pop_back();  // truncated
  EXPECT_FALSE(wire::DecodeClueWindowRequest(enc, &clue, &a, &b));

  std::vector<uint64_t> jsns = {1, 5, 9};
  std::vector<uint64_t> out;
  enc = wire::EncodeJsnList(jsns);
  ASSERT_TRUE(wire::DecodeJsnList(enc, &out));
  EXPECT_EQ(out, jsns);
  enc.push_back(0);
  EXPECT_FALSE(wire::DecodeJsnList(enc, &out));
}

TEST_F(NetServiceTest, ExtractFrameHandlesPartialAndOversized) {
  Bytes framed;
  wire::AppendFrame(&framed, StringToBytes("hello"));
  Bytes payload;
  size_t consumed = 0;
  // Every strict prefix is "incomplete", never an error.
  for (size_t len = 0; len < framed.size(); ++len) {
    EXPECT_EQ(wire::ExtractFrame(framed.data(), len, 1024, &payload,
                                 &consumed),
              0);
  }
  ASSERT_EQ(wire::ExtractFrame(framed.data(), framed.size(), 1024, &payload,
                               &consumed),
            1);
  EXPECT_EQ(payload, StringToBytes("hello"));
  EXPECT_EQ(consumed, framed.size());

  // Zero and oversized lengths are protocol violations.
  Bytes zero;
  PutU32(&zero, 0);
  EXPECT_EQ(wire::ExtractFrame(zero.data(), zero.size(), 1024, &payload,
                               &consumed),
            -1);
  Bytes big;
  PutU32(&big, 0xffffffffu);
  EXPECT_EQ(wire::ExtractFrame(big.data(), big.size(), 1024, &payload,
                               &consumed),
            -1);
}

// ---------------------------------------------------------------------------
// Socket round trips: every RPC matches LocalTransport bit-for-bit
// ---------------------------------------------------------------------------

TEST_F(NetServiceTest, AllRpcsMatchLocalTransport) {
  for (int i = 0; i < 6; ++i) {
    AppendDirect("doc-" + std::to_string(i), {"trail"});
  }
  LedgerServer server(ledger_.get(), {.unix_path = SockPath("rpc")});
  ASSERT_TRUE(server.Start().ok());

  LocalTransport local(ledger_.get());
  SocketTransport remote(server.address(), "lg://net");

  SignedCommitment ca, cb;
  ASSERT_TRUE(local.GetCommitment(&ca).ok());
  ASSERT_TRUE(remote.GetCommitment(&cb).ok());
  EXPECT_EQ(ca.Serialize(), cb.Serialize());

  uint64_t last = ledger_->NumJournals() - 1;
  Journal ja, jb;
  ASSERT_TRUE(local.GetJournal(last, &ja).ok());
  ASSERT_TRUE(remote.GetJournal(last, &jb).ok());
  EXPECT_EQ(ja.Serialize(), jb.Serialize());

  Receipt ra, rb;
  ASSERT_TRUE(local.GetReceipt(last, &ra).ok());
  ASSERT_TRUE(remote.GetReceipt(last, &rb).ok());
  EXPECT_EQ(ra.Serialize(), rb.Serialize());

  FamProof pa, pb;
  ASSERT_TRUE(local.GetProof(last, &pa).ok());
  ASSERT_TRUE(remote.GetProof(last, &pb).ok());
  EXPECT_EQ(pa.Serialize(), pb.Serialize());

  ClueProof cpa, cpb;
  ASSERT_TRUE(local.GetClueProof("trail", 0, 0, &cpa).ok());
  ASSERT_TRUE(remote.GetClueProof("trail", 0, 0, &cpb).ok());
  EXPECT_EQ(cpa.Serialize(), cpb.Serialize());

  std::vector<uint64_t> la, lb;
  ASSERT_TRUE(local.ListTx("trail", &la).ok());
  ASSERT_TRUE(remote.ListTx("trail", &lb).ok());
  EXPECT_EQ(la, lb);

  std::vector<JournalDelta> da, db;
  ASSERT_TRUE(local.GetDelta(0, ledger_->NumJournals(), &da).ok());
  ASSERT_TRUE(remote.GetDelta(0, ledger_->NumJournals(), &db).ok());
  ASSERT_EQ(da.size(), db.size());
  for (size_t i = 0; i < da.size(); ++i) {
    EXPECT_EQ(da[i].Serialize(), db[i].Serialize());
  }

  FamBatchProof ba, bb;
  ASSERT_TRUE(local.GetProofBatch(la, &ba).ok());
  ASSERT_TRUE(remote.GetProofBatch(la, &bb).ok());
  EXPECT_EQ(ba.Serialize(), bb.Serialize());

  ClueRangeResult cra, crb;
  ASSERT_TRUE(local.ProveClueRange("trail", 0, clock_.Now() + 1, &cra).ok());
  ASSERT_TRUE(remote.ProveClueRange("trail", 0, clock_.Now() + 1, &crb).ok());
  EXPECT_EQ(cra.Serialize(), crb.Serialize());

  // Errors pass through with their real codes (not transport errors).
  Journal missing;
  Status s = remote.GetJournal(10'000, &missing);
  EXPECT_TRUE(s.IsNotFound()) << s.ToString();
  EXPECT_TRUE(remote.connected());  // an error response is not a failure
  EXPECT_EQ(remote.connects(), 1u);
}

TEST_F(NetServiceTest, AppendOverSocketDedupsOnRetry) {
  LedgerServer server(ledger_.get(), {.unix_path = SockPath("dedup")});
  ASSERT_TRUE(server.Start().ok());
  SocketTransport remote(server.address(), "lg://net");

  ClientTransaction tx;
  tx.ledger_uri = "lg://net";
  tx.payload = StringToBytes("exactly-once");
  tx.nonce = 777;
  tx.client_ts = clock_.Now();
  tx.Sign(alice_);

  uint64_t before = ledger_->NumJournals();
  uint64_t jsn1 = 0, jsn2 = 0;
  ASSERT_TRUE(remote.AppendTx(tx, &jsn1).ok());
  ASSERT_TRUE(remote.AppendTx(tx, &jsn2).ok());  // replay: same journal
  EXPECT_EQ(jsn1, jsn2);
  EXPECT_EQ(ledger_->NumJournals(), before + 1);
}

TEST_F(NetServiceTest, VerifiedClientWorksOverSocket) {
  LedgerServer server(ledger_.get(), {.unix_path = SockPath("cli")});
  ASSERT_TRUE(server.Start().ok());
  SocketTransport remote(server.address(), "lg://net");

  LedgerClient client(&remote, alice_, ClientOptions());
  uint64_t jsn = 0;
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(client
                    .AppendVerified(StringToBytes("v" + std::to_string(i)),
                                    {"vt"}, &jsn)
                    .ok());
  }
  ASSERT_TRUE(client.RefreshTrustedRoots().ok());
  EXPECT_EQ(client.trusted_fam_root(), ledger_->FamRoot());

  Journal journal;
  ASSERT_TRUE(client.FetchAndVerifyJournal(jsn, &journal).ok());
  std::vector<Journal> lineage;
  ASSERT_TRUE(client.FetchAndVerifyLineage("vt", &lineage).ok());
  EXPECT_EQ(lineage.size(), 5u);
  std::vector<Journal> audited;
  ASSERT_TRUE(
      client.BatchAuditRange("vt", 0, clock_.Now() + 1, &audited).ok());
  EXPECT_EQ(audited.size(), 5u);
}

TEST_F(NetServiceTest, ConcurrentClientsAllSucceed) {
  LedgerServer::Options opts;
  opts.unix_path = SockPath("conc");
  opts.num_workers = 2;
  LedgerServer server(ledger_.get(), opts);
  ASSERT_TRUE(server.Start().ok());

  constexpr int kThreads = 4;
  constexpr int kAppends = 5;
  std::vector<KeyPair> keys;
  for (int t = 0; t < kThreads; ++t) {
    keys.push_back(RegisterUser("conc-" + std::to_string(t)));
  }
  uint64_t before = ledger_->NumJournals();
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      SocketTransport remote(server.address(), "lg://net");
      LedgerClient client(&remote, keys[t], ClientOptions());
      for (int i = 0; i < kAppends; ++i) {
        uint64_t jsn = 0;
        if (!client
                 .AppendVerified(StringToBytes(std::to_string(t) + "-" +
                                               std::to_string(i)),
                                 {"conc"}, &jsn)
                 .ok()) {
          ++failures;
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(ledger_->NumJournals(), before + kThreads * kAppends);
  EXPECT_EQ(server.stats().shed.load(), 0u);
}

// ---------------------------------------------------------------------------
// Admission control: overload sheds fast with Unavailable
// ---------------------------------------------------------------------------

TEST_F(NetServiceTest, OverloadShedsFastWithUnavailable) {
  LedgerServer::Options opts;
  opts.unix_path = SockPath("shed");
  opts.num_workers = 1;
  opts.queue_depth = 1;
  opts.debug_service_delay_us = 100'000;
  LedgerServer server(ledger_.get(), opts);
  ASSERT_TRUE(server.Start().ok());

  constexpr int kThreads = 6;
  std::atomic<int> ok{0}, unavailable{0}, other{0};
  std::atomic<uint64_t> max_shed_latency_us{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      SocketTransport remote(server.address(), "lg://net");
      SignedCommitment commitment;
      uint64_t t0 = obs::NowUs();
      Status s = remote.GetCommitment(&commitment);
      uint64_t dt = obs::NowUs() - t0;
      if (s.ok()) {
        ++ok;
      } else if (s.IsUnavailable()) {
        ++unavailable;
        uint64_t prev = max_shed_latency_us.load();
        while (dt > prev &&
               !max_shed_latency_us.compare_exchange_weak(prev, dt)) {
        }
      } else {
        ++other;
      }
    });
  }
  for (std::thread& th : threads) th.join();

  EXPECT_GT(ok.load(), 0);
  EXPECT_GT(unavailable.load(), 0);
  EXPECT_EQ(other.load(), 0);
  EXPECT_EQ(server.stats().shed.load(),
            static_cast<uint64_t>(unavailable.load()));
  // A shed never waits for the ledger: it must return well under one
  // service time (100 ms), not after queueing behind it.
  EXPECT_LT(max_shed_latency_us.load(), 90'000u);
  // Shed is deliberate load-shedding, not a transient blip: NOT retriable.
  EXPECT_FALSE(Status::Unavailable("shed").IsRetriable());
}

TEST_F(NetServiceTest, QueuedRequestPastDeadlineAnsweredDeadlineExceeded) {
  LedgerServer::Options opts;
  opts.unix_path = SockPath("dl");
  opts.num_workers = 1;
  opts.queue_depth = 8;
  opts.debug_service_delay_us = 80'000;
  opts.request_timeout_us = 40'000;  // expires while queued behind the first
  LedgerServer server(ledger_.get(), opts);
  ASSERT_TRUE(server.Start().ok());

  constexpr int kThreads = 4;
  std::atomic<int> ok{0}, deadline{0}, other{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      SocketTransport remote(server.address(), "lg://net");
      SignedCommitment commitment;
      Status s = remote.GetCommitment(&commitment);
      if (s.ok()) {
        ++ok;
      } else if (s.IsDeadlineExceeded()) {
        ++deadline;
      } else {
        ++other;
      }
    });
  }
  for (std::thread& th : threads) th.join();

  EXPECT_GT(ok.load(), 0);
  EXPECT_GT(deadline.load(), 0);
  EXPECT_EQ(other.load(), 0);
  EXPECT_EQ(server.stats().deadline_expired.load(),
            static_cast<uint64_t>(deadline.load()));
  // Server-side expiry IS retriable — the client may try again.
  EXPECT_TRUE(Status::DeadlineExceeded("queued").IsRetriable());
}

// ---------------------------------------------------------------------------
// Frame errors: malformed input closes the connection, never the server
// ---------------------------------------------------------------------------

TEST_F(NetServiceTest, JunkHelloClosesConnection) {
  LedgerServer server(ledger_.get(), {.unix_path = SockPath("hello")});
  ASSERT_TRUE(server.Start().ok());

  int fd = RawConnect(server.address());
  Bytes junk = StringToBytes("GET / HTTP/1.1\r\n\r\n");
  ASSERT_TRUE(net::SendAll(fd, junk.data(), junk.size(), 0).ok());
  EXPECT_TRUE(DrainUntilClosed(fd, 2'000'000));
  close(fd);
  EXPECT_GE(server.stats().frame_errors.load(), 1u);

  // The server survives: a healthy client is still served.
  SocketTransport remote(server.address(), "lg://net");
  SignedCommitment commitment;
  EXPECT_TRUE(remote.GetCommitment(&commitment).ok());
}

TEST_F(NetServiceTest, OversizedFrameLengthClosesConnection) {
  LedgerServer::Options opts;
  opts.unix_path = SockPath("big");
  opts.max_frame_bytes = 4096;
  LedgerServer server(ledger_.get(), opts);
  ASSERT_TRUE(server.Start().ok());

  int fd = RawConnect(server.address());
  Bytes hello = wire::EncodeHello();
  ASSERT_TRUE(net::SendAll(fd, hello.data(), hello.size(), 0).ok());
  Bytes huge;
  PutU32(&huge, 0xffffffffu);  // 4 GiB frame announcement
  ASSERT_TRUE(net::SendAll(fd, huge.data(), huge.size(), 0).ok());
  EXPECT_TRUE(DrainUntilClosed(fd, 2'000'000));
  close(fd);
  EXPECT_GE(server.stats().frame_errors.load(), 1u);

  SocketTransport remote(server.address(), "lg://net");
  SignedCommitment commitment;
  EXPECT_TRUE(remote.GetCommitment(&commitment).ok());
}

TEST_F(NetServiceTest, MalformedBodyGetsInvalidArgumentNotClose) {
  LedgerServer server(ledger_.get(), {.unix_path = SockPath("body")});
  ASSERT_TRUE(server.Start().ok());
  SocketTransport remote(server.address(), "lg://net");

  // A valid frame whose op-specific body is junk must produce an explicit
  // InvalidArgument response on a connection that stays usable.
  SignedCommitment commitment;
  ASSERT_TRUE(remote.GetCommitment(&commitment).ok());

  int fd = RawConnect(server.address());
  Bytes hello = wire::EncodeHello();
  ASSERT_TRUE(net::SendAll(fd, hello.data(), hello.size(), 0).ok());
  wire::RequestFrame req;
  req.op = RpcOp::kGetJournal;
  req.request_id = 1;
  req.body = StringToBytes("bad");  // not a u64
  Bytes framed;
  wire::AppendFrame(&framed, req.Encode());
  ASSERT_TRUE(net::SendAll(fd, framed.data(), framed.size(), 0).ok());

  Bytes inbuf;
  uint8_t buf[4096];
  uint64_t deadline = obs::NowUs() + 2'000'000;
  wire::ResponseFrame resp;
  while (true) {
    Bytes payload;
    size_t consumed = 0;
    int rc = wire::ExtractFrame(inbuf.data(), inbuf.size(),
                                wire::kDefaultMaxFrameBytes, &payload,
                                &consumed);
    ASSERT_GE(rc, 0);
    if (rc > 0) {
      ASSERT_TRUE(wire::ResponseFrame::Decode(payload, &resp));
      break;
    }
    size_t got = 0;
    ASSERT_TRUE(net::RecvSome(fd, buf, sizeof(buf), deadline, &got).ok());
    ASSERT_GT(got, 0u) << "server closed instead of answering";
    inbuf.insert(inbuf.end(), buf, buf + got);
  }
  EXPECT_TRUE(resp.ToStatus().IsInvalidArgument());
  close(fd);
}

// ---------------------------------------------------------------------------
// Graceful drain
// ---------------------------------------------------------------------------

TEST_F(NetServiceTest, GracefulDrainUnderLoadAndBitIdenticalRecovery) {
  // File-backed ledger so we can prove the post-drain state replays
  // bit-identically — acknowledged writes survive, nothing half-applied.
  std::string dir = ::testing::TempDir();
  std::string jpath = dir + "/drain_journals.log";
  std::string bpath = dir + "/drain_blocks.log";
  for (const std::string& p : {jpath, bpath}) {
    std::remove(p.c_str());
    std::remove((p + ".wm").c_str());
    std::remove((p + ".quarantine").c_str());
  }

  Digest fam_root, clue_root, state_root;
  uint64_t journal_count = 0;
  std::vector<uint64_t> acked_jsns;
  std::mutex acked_mu;
  {
    std::unique_ptr<FileStreamStore> jfile, bfile;
    ASSERT_TRUE(FileStreamStore::Open(jpath, &jfile).ok());
    ASSERT_TRUE(FileStreamStore::Open(bpath, &bfile).ok());
    Ledger ledger("lg://drain", options_, &clock_, lsp_, &registry_,
                  {jfile.get(), bfile.get()});

    LedgerServer::Options opts;
    opts.unix_path = SockPath("drain");
    opts.num_workers = 2;
    opts.debug_service_delay_us = 5'000;  // keep requests in flight at Stop
    LedgerServer server(&ledger, opts);
    ASSERT_TRUE(server.Start().ok());

    constexpr int kThreads = 3;
    std::vector<KeyPair> keys;
    for (int t = 0; t < kThreads; ++t) {
      keys.push_back(RegisterUser("drain-" + std::to_string(t)));
    }
    std::atomic<int> unexplained{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        SocketTransport::Options topts;
        topts.request_deadline_us = 2'000'000;
        SocketTransport remote(server.address(), "lg://drain", topts);
        for (int i = 0; i < 50; ++i) {
          ClientTransaction tx;
          tx.ledger_uri = "lg://drain";
          tx.payload = StringToBytes(std::to_string(t) + ":" +
                                     std::to_string(i));
          tx.nonce = static_cast<uint64_t>(i);
          tx.client_ts = clock_.Now();
          tx.Sign(keys[t]);
          uint64_t jsn = 0;
          Status s = remote.AppendTx(tx, &jsn);
          if (s.ok()) {
            std::lock_guard<std::mutex> lock(acked_mu);
            acked_jsns.push_back(jsn);
          } else if (!s.IsUnavailable() && !s.IsTransientIO() &&
                     !s.IsDeadlineExceeded()) {
            ++unexplained;  // silent corruption or a weird code: fail below
          }
        }
      });
    }

    std::this_thread::sleep_for(std::chrono::milliseconds(60));
    uint64_t t0 = obs::NowUs();
    server.Stop();  // drains while the append threads are still firing
    uint64_t stop_us = obs::NowUs() - t0;
    for (std::thread& th : threads) th.join();

    EXPECT_EQ(unexplained.load(), 0);
    EXPECT_GT(acked_jsns.size(), 0u);
    // Admitted work completed (or failed explicitly) within the drain
    // budget plus the flush allowance — Stop() never hangs on stragglers.
    EXPECT_LT(stop_us, opts.drain_deadline_us + 1'500'000);
    EXPECT_EQ(server.stats().drain_failed.load(), 0u);

    // Every acknowledged append is actually in the ledger.
    for (uint64_t jsn : acked_jsns) {
      Journal journal;
      EXPECT_TRUE(ledger.GetJournal(jsn, &journal).ok()) << "jsn " << jsn;
    }
    ledger.SealBlock();
    fam_root = ledger.FamRoot();
    clue_root = ledger.ClueRoot();
    state_root = ledger.StateRoot();
    journal_count = ledger.NumJournals();
  }  // server, ledger and files all torn down

  std::unique_ptr<FileStreamStore> jfile, bfile;
  ASSERT_TRUE(FileStreamStore::Open(jpath, &jfile).ok());
  ASSERT_TRUE(FileStreamStore::Open(bpath, &bfile).ok());
  std::unique_ptr<Ledger> recovered;
  ASSERT_TRUE(Ledger::Recover("lg://drain", options_, &clock_, lsp_,
                              &registry_, {jfile.get(), bfile.get()},
                              &recovered)
                  .ok());
  EXPECT_EQ(recovered->NumJournals(), journal_count);
  EXPECT_EQ(recovered->FamRoot(), fam_root);
  EXPECT_EQ(recovered->ClueRoot(), clue_root);
  EXPECT_EQ(recovered->StateRoot(), state_root);
  for (uint64_t jsn : acked_jsns) {
    Journal journal;
    EXPECT_TRUE(recovered->GetJournal(jsn, &journal).ok()) << "jsn " << jsn;
  }
}

TEST_F(NetServiceTest, DrainThenCheckpointedRestartRecoversBitIdentically) {
  // Full service lifecycle: serve over a socket, drain gracefully, write a
  // verified checkpoint, restart — the restarted server must come back via
  // the checkpoint (not full replay), bit-identical, and keep serving.
  std::string dir = ::testing::TempDir();
  std::string jpath = dir + "/ckre_journals.log";
  std::string bpath = dir + "/ckre_blocks.log";
  std::string cbase = dir + "/ckre_ckpt";
  for (const std::string& p : {jpath, bpath}) {
    std::remove(p.c_str());
    std::remove((p + ".wm").c_str());
    std::remove((p + ".quarantine").c_str());
  }
  for (const std::string& p : {cbase + ".ckpt.0", cbase + ".snap.0",
                               cbase + ".ckpt.1", cbase + ".snap.1"}) {
    std::remove(p.c_str());
  }

  Digest fam_root, clue_root, state_root;
  uint64_t journal_count = 0, watermark = 0;
  Bytes last_receipt;
  {
    std::unique_ptr<FileStreamStore> jfile, bfile;
    ASSERT_TRUE(FileStreamStore::Open(jpath, &jfile).ok());
    ASSERT_TRUE(FileStreamStore::Open(bpath, &bfile).ok());
    CheckpointStore ckpt(Env::Default(), cbase);
    Ledger ledger("lg://ckre", options_, &clock_, lsp_, &registry_,
                  {jfile.get(), bfile.get(), &ckpt});

    LedgerServer server(&ledger, {.unix_path = SockPath("ckre")});
    ASSERT_TRUE(server.Start().ok());
    SocketTransport remote(server.address(), "lg://ckre");
    KeyPair user = RegisterUser("ckre-user");
    for (int i = 0; i < 9; ++i) {
      ClientTransaction tx;
      tx.ledger_uri = "lg://ckre";
      tx.clues = {"trail-" + std::to_string(i % 2)};
      tx.payload = StringToBytes("ckre-" + std::to_string(i));
      tx.nonce = static_cast<uint64_t>(i);
      tx.client_ts = clock_.Now();
      tx.Sign(user);
      uint64_t jsn = 0;
      ASSERT_TRUE(remote.AppendTx(tx, &jsn).ok());
    }
    server.Stop();  // graceful drain: no requests in flight afterwards
    ASSERT_TRUE(ledger.WriteCheckpoint(nullptr).ok());
    ledger.SealBlock();
    fam_root = ledger.FamRoot();
    clue_root = ledger.ClueRoot();
    state_root = ledger.StateRoot();
    journal_count = ledger.NumJournals();
    Receipt receipt;
    ASSERT_TRUE(ledger.GetReceipt(journal_count - 1, &receipt).ok());
    last_receipt = receipt.Serialize();
  }

  // Restart: recovery must ride the checkpoint and land bit-identical.
  std::unique_ptr<FileStreamStore> jfile, bfile;
  ASSERT_TRUE(FileStreamStore::Open(jpath, &jfile).ok());
  ASSERT_TRUE(FileStreamStore::Open(bpath, &bfile).ok());
  CheckpointStore ckpt(Env::Default(), cbase);
  std::unique_ptr<Ledger> recovered;
  RecoveryInfo info;
  ASSERT_TRUE(Ledger::Recover("lg://ckre", options_, &clock_, lsp_,
                              &registry_, {jfile.get(), bfile.get(), &ckpt},
                              &recovered, &info)
                  .ok());
  EXPECT_TRUE(info.used_checkpoint);
  watermark = info.checkpoint_watermark;
  EXPECT_GT(watermark, 0u);
  EXPECT_EQ(recovered->NumJournals(), journal_count);
  EXPECT_EQ(recovered->FamRoot(), fam_root);
  EXPECT_EQ(recovered->ClueRoot(), clue_root);
  EXPECT_EQ(recovered->StateRoot(), state_root);

  // The restarted server answers from the recovered state: same receipt
  // for pre-restart journals, and new appends still commit.
  LedgerServer server2(recovered.get(), {.unix_path = SockPath("ckre2")});
  ASSERT_TRUE(server2.Start().ok());
  SocketTransport remote2(server2.address(), "lg://ckre");
  Receipt receipt;
  ASSERT_TRUE(remote2.GetReceipt(journal_count - 1, &receipt).ok());
  EXPECT_EQ(receipt.Serialize(), last_receipt);
  FamProof proof;
  Journal journal;
  ASSERT_TRUE(remote2.GetProof(1, &proof).ok());
  ASSERT_TRUE(remote2.GetJournal(1, &journal).ok());
  EXPECT_TRUE(Ledger::VerifyJournalProof(journal, proof, recovered->FamRoot()));
  KeyPair user = KeyPair::FromSeedString("net-ckre-user");
  ClientTransaction tx;
  tx.ledger_uri = "lg://ckre";
  tx.clues = {"trail-0"};
  tx.payload = StringToBytes("post-restart");
  tx.nonce = 100;
  tx.client_ts = clock_.Now();
  tx.Sign(user);
  uint64_t jsn = 0;
  ASSERT_TRUE(remote2.AppendTx(tx, &jsn).ok());
  EXPECT_EQ(jsn, journal_count);
  server2.Stop();
}

TEST_F(NetServiceTest, RequestsDuringDrainAreShedNotHung) {
  LedgerServer::Options opts;
  opts.unix_path = SockPath("drsh");
  LedgerServer server(ledger_.get(), opts);
  ASSERT_TRUE(server.Start().ok());

  SocketTransport remote(server.address(), "lg://net");
  SignedCommitment commitment;
  ASSERT_TRUE(remote.GetCommitment(&commitment).ok());

  server.Stop();
  // The connection was closed by the drain; a request now fails fast with
  // a transport error (connect refused / EOF), never a hang.
  uint64_t t0 = obs::NowUs();
  Status s = remote.GetCommitment(&commitment);
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsTransientIO() || s.IsUnavailable() ||
              s.IsDeadlineExceeded())
      << s.ToString();
  EXPECT_LT(obs::NowUs() - t0, 3'000'000u);
}

// ---------------------------------------------------------------------------
// Per-request deadlines across every transport
// ---------------------------------------------------------------------------

TEST_F(NetServiceTest, LocalTransportHonorsRequestDeadline) {
  LocalTransport local(ledger_.get());
  local.SetSimulatedLatencyUs(10'000);

  SignedCommitment commitment;
  local.set_request_deadline_us(5'000);
  Status s = local.GetCommitment(&commitment);
  EXPECT_TRUE(s.IsDeadlineExceeded()) << s.ToString();
  EXPECT_TRUE(s.IsRetriable());

  local.set_request_deadline_us(20'000);
  EXPECT_TRUE(local.GetCommitment(&commitment).ok());
  local.set_request_deadline_us(0);  // 0 = no deadline
  EXPECT_TRUE(local.GetCommitment(&commitment).ok());
}

TEST_F(NetServiceTest, ByzantineTransportPropagatesDeadlineToInner) {
  LocalTransport local(ledger_.get());
  local.SetSimulatedLatencyUs(10'000);
  ByzantineTransport byz(&local, /*seed=*/3);

  // The decorator forwards the deadline option to the wrapped transport.
  byz.set_request_deadline_us(5'000);
  SignedCommitment commitment;
  Status s = byz.GetCommitment(&commitment);
  EXPECT_TRUE(s.IsDeadlineExceeded()) << s.ToString();

  byz.set_request_deadline_us(0);
  EXPECT_TRUE(byz.GetCommitment(&commitment).ok());
}

TEST_F(NetServiceTest, SocketTransportHonorsRequestDeadline) {
  LedgerServer::Options opts;
  opts.unix_path = SockPath("sdl");
  opts.num_workers = 1;
  opts.debug_service_delay_us = 200'000;
  LedgerServer server(ledger_.get(), opts);
  ASSERT_TRUE(server.Start().ok());

  SocketTransport remote(server.address(), "lg://net");
  remote.set_request_deadline_us(50'000);
  SignedCommitment commitment;
  uint64_t t0 = obs::NowUs();
  Status s = remote.GetCommitment(&commitment);
  uint64_t dt = obs::NowUs() - t0;
  EXPECT_TRUE(s.IsDeadlineExceeded()) << s.ToString();
  EXPECT_LT(dt, 150'000u);  // gave up at its own deadline, not the server's
  EXPECT_FALSE(remote.connected());  // late responses must not desync

  remote.set_request_deadline_us(0);
  EXPECT_TRUE(remote.GetCommitment(&commitment).ok());
}

// ---------------------------------------------------------------------------
// Frame fuzz: decoders and the live server survive arbitrary bytes
// ---------------------------------------------------------------------------

TEST_F(NetServiceTest, FrameDecodersSurviveBitFlips) {
  wire::RequestFrame req;
  req.op = RpcOp::kProveClueRange;
  req.request_id = 99;
  req.body = wire::EncodeClueWindowRequest("clue", 1, 2);
  Bytes renc = req.Encode();

  wire::ResponseFrame resp =
      wire::ResponseFrame::From(RpcOp::kGetProof, 5, Status::NotFound("n"));
  resp.body = StringToBytes("whatever");
  Bytes senc = resp.Encode();

  for (size_t i = 0; i < renc.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      Bytes mutated = renc;
      mutated[i] ^= static_cast<uint8_t>(1u << bit);
      wire::RequestFrame out;
      wire::RequestFrame::Decode(mutated, &out);  // must not crash
    }
  }
  for (size_t i = 0; i < senc.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      Bytes mutated = senc;
      mutated[i] ^= static_cast<uint8_t>(1u << bit);
      wire::ResponseFrame out;
      if (wire::ResponseFrame::Decode(mutated, &out)) {
        out.ToStatus();  // decoded frames must yield a valid Status
      }
    }
  }
}

TEST_F(NetServiceTest, DecodersSurviveSeededJunk) {
  Random rng(FuzzSeed());
  uint64_t rounds = FuzzRounds();
  for (uint64_t i = 0; i < rounds; ++i) {
    Bytes junk = rng.NextBytes(1 + rng.Uniform(256));
    wire::RequestFrame req;
    wire::RequestFrame::Decode(junk, &req);
    wire::ResponseFrame resp;
    wire::ResponseFrame::Decode(junk, &resp);
    Bytes payload;
    size_t consumed = 0;
    wire::ExtractFrame(junk.data(), junk.size(), 4096, &payload, &consumed);
    uint64_t jsn;
    wire::DecodeJsnRequest(junk, &jsn);
    std::string clue;
    uint64_t a, b;
    wire::DecodeClueWindowRequest(junk, &clue, &a, &b);
    std::vector<uint64_t> jsns;
    wire::DecodeJsnList(junk, &jsns);
    std::vector<JournalDelta> deltas;
    wire::DecodeDeltas(junk, &deltas);
  }
}

TEST_F(NetServiceTest, LiveServerSurvivesJunkStreams) {
  LedgerServer server(ledger_.get(), {.unix_path = SockPath("fuzz")});
  ASSERT_TRUE(server.Start().ok());

  Random rng(FuzzSeed() ^ 0xf00d);
  uint64_t rounds = std::min<uint64_t>(FuzzRounds(), 64);
  for (uint64_t i = 0; i < rounds; ++i) {
    int fd = RawConnect(server.address());
    ASSERT_GE(fd, 0);
    // Half the rounds speak a valid hello first so the junk lands in the
    // frame parser rather than the handshake check.
    if (rng.Uniform(2) == 0) {
      Bytes hello = wire::EncodeHello();
      if (!net::SendAll(fd, hello.data(), hello.size(), 0).ok()) {
        close(fd);
        continue;
      }
    }
    Bytes junk = rng.NextBytes(1 + rng.Uniform(512));
    (void)net::SendAll(fd, junk.data(), junk.size(), 0);
    shutdown(fd, SHUT_WR);
    // The server must close (or answer) promptly — never hang the fuzzer.
    EXPECT_TRUE(DrainUntilClosed(fd, 3'000'000)) << "round " << i;
    close(fd);
  }

  // After the whole barrage, the server still serves a healthy client.
  SocketTransport remote(server.address(), "lg://net");
  SignedCommitment commitment;
  ASSERT_TRUE(remote.GetCommitment(&commitment).ok());
  EXPECT_TRUE(commitment.Verify(lsp_.public_key()));
}

// ---------------------------------------------------------------------------
// Socket fault matrix: every fault ends in a clean retriable error or a
// verified-correct response — no hangs, no silent corruption
// ---------------------------------------------------------------------------

TEST_F(NetServiceTest, SocketFaultMatrix) {
  LedgerServer server(ledger_.get(), {.unix_path = SockPath("fmsrv")});
  ASSERT_TRUE(server.Start().ok());
  AppendDirect("matrix-doc", {"fm"});

  const SocketFaultKind kinds[] = {
      SocketFaultKind::kNone,          SocketFaultKind::kReset,
      SocketFaultKind::kStall,         SocketFaultKind::kShortChunks,
      SocketFaultKind::kMidFrameClose, SocketFaultKind::kOversizedFrame,
  };
  int cell = 0;
  for (SocketFaultKind kind : kinds) {
    SCOPED_TRACE(SocketFaultKindName(kind));
    SocketFaultProxy proxy(SockPath("fmp" + std::to_string(cell)),
                           server.address(), /*seed=*/FuzzSeed() + cell);
    ++cell;
    ASSERT_TRUE(proxy.Start().ok());
    proxy.ScheduleFault(0, kind);  // first connection faulted; retries clean

    SocketTransport::Options topts;
    topts.request_deadline_us = 300'000;  // bounds kStall deterministically
    SocketTransport remote(proxy.address(), "lg://net", topts);

    // First attempt: either success (kNone, kShortChunks) or a clean
    // retriable transport error. Anything else is a matrix failure.
    SignedCommitment commitment;
    uint64_t t0 = obs::NowUs();
    Status first = remote.GetCommitment(&commitment);
    uint64_t dt = obs::NowUs() - t0;
    EXPECT_LT(dt, 2'000'000u) << "fault hung the client";
    if (!first.ok()) {
      EXPECT_TRUE(first.IsRetriable()) << first.ToString();
    }

    // Through the retry loop the cell must converge to a verified-correct
    // response: the faulted connection is abandoned, the reconnect is
    // honest (only conn 0 is scheduled).
    RetryPolicy policy;
    policy.max_attempts = 4;
    Status final = RetryTransient(policy, [&] {
      SignedCommitment c;
      Status s = remote.GetCommitment(&c);
      if (s.ok()) commitment = c;
      return s;
    });
    ASSERT_TRUE(final.ok()) << final.ToString();
    EXPECT_TRUE(commitment.Verify(lsp_.public_key()));
    EXPECT_EQ(commitment.journal_count, ledger_->NumJournals());
    proxy.Stop();
  }
}

TEST_F(NetServiceTest, FaultedAppendCommitsExactlyOnce) {
  LedgerServer server(ledger_.get(), {.unix_path = SockPath("fa")});
  ASSERT_TRUE(server.Start().ok());
  SocketFaultProxy proxy(SockPath("fap"), server.address(),
                         /*seed=*/FuzzSeed());
  ASSERT_TRUE(proxy.Start().ok());
  // The response (not the request) is cut: the server HAS committed, the
  // client cannot know — the retry must converge via (signer, nonce) dedup.
  proxy.ScheduleFault(0, SocketFaultKind::kMidFrameClose);

  SocketTransport remote(proxy.address(), "lg://net");
  ClientTransaction tx;
  tx.ledger_uri = "lg://net";
  tx.payload = StringToBytes("cut-response");
  tx.nonce = 4242;
  tx.client_ts = clock_.Now();
  tx.Sign(alice_);

  uint64_t before = ledger_->NumJournals();
  RetryPolicy policy;
  policy.max_attempts = 4;
  uint64_t jsn = 0;
  RetryStats stats;
  Status s = RetryTransient(policy, [&] { return remote.AppendTx(tx, &jsn); },
                            &stats);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_GE(stats.attempts, 2);  // the fault really fired
  EXPECT_EQ(ledger_->NumJournals(), before + 1);  // exactly once
  Journal journal;
  ASSERT_TRUE(ledger_->GetJournal(jsn, &journal).ok());
  EXPECT_EQ(journal.payload, StringToBytes("cut-response"));
  proxy.Stop();
}

// ---------------------------------------------------------------------------
// Cross-process tracing and the per-request event log
// ---------------------------------------------------------------------------

TEST_F(NetServiceTest, TracedRequestFrameRoundTripAndStrictness) {
  wire::RequestFrame req;
  req.op = RpcOp::kAppendTx;
  req.request_id = 77;
  req.trace_id = 0xdeadbeefULL;
  req.parent_span = 0xdeadbeefULL;
  req.body = StringToBytes("traced");
  Bytes enc = req.Encode();
  EXPECT_EQ(enc[0] & wire::kOpTraceFlag, wire::kOpTraceFlag);

  wire::RequestFrame out;
  ASSERT_TRUE(wire::RequestFrame::Decode(enc, &out));
  EXPECT_EQ(out.op, req.op);
  EXPECT_EQ(out.request_id, req.request_id);
  EXPECT_EQ(out.trace_id, req.trace_id);
  EXPECT_EQ(out.parent_span, req.parent_span);
  EXPECT_EQ(out.body, req.body);

  // trace_id = 0 encodes the legacy layout, byte for byte: old servers
  // and new servers parse the same frame identically.
  wire::RequestFrame legacy = req;
  legacy.trace_id = 0;
  legacy.parent_span = 0;
  Bytes legacy_enc = legacy.Encode();
  EXPECT_EQ(legacy_enc.size(), 9 + req.body.size());
  EXPECT_EQ(legacy_enc[0], static_cast<uint8_t>(RpcOp::kAppendTx));
  ASSERT_TRUE(wire::RequestFrame::Decode(legacy_enc, &out));
  EXPECT_EQ(out.trace_id, 0u);
  EXPECT_EQ(out.parent_span, 0u);
  EXPECT_EQ(out.body, req.body);

  // Flag set but header truncated: rejected, never read as body bytes.
  for (size_t len = 9; len < 25; ++len) {
    EXPECT_FALSE(wire::RequestFrame::Decode(
        Bytes(enc.begin(), enc.begin() + static_cast<ptrdiff_t>(len)), &out))
        << len;
  }
  // Flagged frame carrying trace_id 0 is a protocol violation (Encode
  // never produces it).
  Bytes zero_trace = enc;
  for (size_t i = 9; i < 17; ++i) zero_trace[i] = 0;
  EXPECT_FALSE(wire::RequestFrame::Decode(zero_trace, &out));
}

TEST_F(NetServiceTest, TraceStitchesClientAndServerSpans) {
  AppendDirect("traced-target", {"trace"});
  LedgerServer server(ledger_.get(), {.unix_path = SockPath("tr")});
  ASSERT_TRUE(server.Start().ok());

  obs::SpanTracer::Default().Clear();
  SocketTransport::Options topts;
  topts.trace_sample_every = 1;  // every call is a trace root
  SocketTransport remote(server.address(), "lg://net", topts);

  uint64_t t0 = obs::NowUs();
  SignedCommitment commitment;
  ASSERT_TRUE(remote.GetCommitment(&commitment).ok());
  uint64_t client_observed_us = obs::NowUs() - t0;
  uint64_t trace_id = remote.last_trace_id();
  ASSERT_NE(trace_id, 0u);

  // The client span exists immediately; the server records queue/execute
  // before responding, so they are also visible. The flush span fires when
  // the event loop sees the response bytes leave — poll briefly.
  bool saw_client = false, saw_queue = false, saw_execute = false,
       saw_flush = false;
  uint64_t queue_us = 0, exec_us = 0;
  uint64_t deadline = obs::NowUs() + 2'000'000;
  do {
    saw_client = saw_queue = saw_execute = saw_flush = false;
    for (const obs::SpanRecord& span :
         obs::SpanTracer::Default().Snapshot()) {
      if (span.trace_id != trace_id) continue;
      std::string stage = span.stage;
      if (stage == "client_rpc") {
        saw_client = true;
        EXPECT_EQ(span.parent_span, 0u);  // trace root
      } else if (stage == "server_queue") {
        saw_queue = true;
        queue_us = span.dur_us;
        EXPECT_EQ(span.parent_span, trace_id);
      } else if (stage == "server_execute") {
        saw_execute = true;
        exec_us = span.dur_us;
        EXPECT_EQ(span.parent_span, trace_id);
      } else if (stage == "server_flush") {
        saw_flush = true;
        EXPECT_EQ(span.parent_span, trace_id);
      }
    }
    if (saw_client && saw_queue && saw_execute && saw_flush) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  } while (obs::NowUs() < deadline);
  EXPECT_TRUE(saw_client);
  EXPECT_TRUE(saw_queue);
  EXPECT_TRUE(saw_execute);
  EXPECT_TRUE(saw_flush);

  // Server-side accounting nests inside what the client observed: both
  // sides read the same monotonic clock, and queue-wait + execution are a
  // strict subset of the client's round trip.
  EXPECT_LE(queue_us + exec_us, client_observed_us);

  // The exporter carries the trace fields.
  std::string json =
      obs::SpanRecordsToJson(obs::SpanTracer::Default().Snapshot());
  EXPECT_NE(json.find("\"trace_id\": " + std::to_string(trace_id)),
            std::string::npos);
  server.Stop();
}

TEST_F(NetServiceTest, UntracedClientsAreServedUnchanged) {
  AppendDirect("legacy-target", {"legacy"});
  LedgerServer server(ledger_.get(), {.unix_path = SockPath("lg")});
  ASSERT_TRUE(server.Start().ok());

  // Default transport options: tracing off, frames in the legacy layout.
  SocketTransport remote(server.address(), "lg://net");
  SignedCommitment commitment;
  ASSERT_TRUE(remote.GetCommitment(&commitment).ok());
  EXPECT_EQ(remote.last_trace_id(), 0u);

  // A hand-built legacy frame (no trace flag) over a raw socket is served
  // exactly like before the trace header existed.
  int fd = RawConnect(server.address());
  Bytes hello = wire::EncodeHello();
  ASSERT_TRUE(net::SendAll(fd, hello.data(), hello.size(),
                           obs::NowUs() + 2'000'000)
                  .ok());
  wire::RequestFrame req;
  req.op = RpcOp::kGetCommitment;
  req.request_id = 1;
  Bytes frame;
  wire::AppendFrame(&frame, req.Encode());
  ASSERT_TRUE(net::SendAll(fd, frame.data(), frame.size(),
                           obs::NowUs() + 2'000'000)
                  .ok());
  Bytes inbuf;
  uint8_t buf[4096];
  wire::ResponseFrame resp;
  uint64_t deadline = obs::NowUs() + 2'000'000;
  while (true) {
    Bytes payload;
    size_t consumed = 0;
    int rc = wire::ExtractFrame(inbuf.data(), inbuf.size(),
                                wire::kDefaultMaxFrameBytes, &payload,
                                &consumed);
    ASSERT_GE(rc, 0);
    if (rc > 0) {
      ASSERT_TRUE(wire::ResponseFrame::Decode(payload, &resp));
      break;
    }
    size_t got = 0;
    ASSERT_TRUE(net::RecvSome(fd, buf, sizeof(buf), deadline, &got).ok());
    ASSERT_GT(got, 0u);
    inbuf.insert(inbuf.end(), buf, buf + got);
  }
  EXPECT_EQ(resp.code, static_cast<uint8_t>(Status::Code::kOk));
  EXPECT_EQ(resp.request_id, 1u);
  close(fd);
  server.Stop();
}

TEST_F(NetServiceTest, RequestLogRecordsCompletionsAndSheds) {
  obs::RequestLog::Default().Clear();
  LedgerServer::Options sopts;
  sopts.unix_path = SockPath("rl");
  sopts.num_workers = 1;
  sopts.queue_depth = 1;
  sopts.debug_service_delay_us = 20'000;
  sopts.request_timeout_us = 30'000'000;
  sopts.slow_request_us = 1;  // everything executed is flagged slow
  LedgerServer server(ledger_.get(), sopts);
  ASSERT_TRUE(server.Start().ok());

  // Overload a 1-deep queue so at least one request sheds.
  std::atomic<int> ok{0}, shed{0};
  std::vector<std::thread> threads;
  for (int c = 0; c < 6; ++c) {
    threads.emplace_back([&] {
      SocketTransport remote(server.address(), "lg://net");
      SignedCommitment commitment;
      Status s = remote.GetCommitment(&commitment);
      if (s.ok()) ++ok;
      if (s.IsUnavailable()) ++shed;
    });
  }
  for (auto& t : threads) t.join();
  server.Stop();
  ASSERT_GT(ok.load(), 0);
  ASSERT_GT(shed.load(), 0);

  std::vector<obs::RequestRecord> records =
      obs::RequestLog::Default().Snapshot();
  int logged_ok = 0, logged_shed = 0, logged_slow = 0;
  for (const obs::RequestRecord& rec : records) {
    ASSERT_NE(rec.op, nullptr);
    EXPECT_STREQ(rec.op, "GetCommitment");
    if (rec.shed) {
      ++logged_shed;
      EXPECT_EQ(rec.status, static_cast<uint8_t>(Status::Code::kUnavailable));
      EXPECT_EQ(rec.exec_us, 0u);
    } else {
      ++logged_ok;
      EXPECT_GE(rec.exec_us, sopts.debug_service_delay_us);
    }
    if (rec.slow) ++logged_slow;
  }
  EXPECT_EQ(logged_ok, ok.load());
  EXPECT_EQ(logged_shed, shed.load());
  EXPECT_GE(logged_slow, ok.load());  // 1 us threshold: every executed one

  // The slow view and the JSON exporter agree with the flags.
  EXPECT_EQ(obs::RequestLog::Default().SlowSnapshot().size(),
            static_cast<size_t>(logged_slow));
  std::string json = obs::RequestRecordsToJson(records);
  EXPECT_NE(json.find("\"shed\": true"), std::string::npos);
  EXPECT_NE(json.find("\"op\": \"GetCommitment\""), std::string::npos);
}

}  // namespace
}  // namespace ledgerdb
