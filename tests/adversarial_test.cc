#include <gtest/gtest.h>

#include "audit/dasein_auditor.h"
#include "ledger/ledger.h"

namespace ledgerdb {
namespace {

/// Adversarial tests exercising the §II-B threat model end to end:
/// threat-A (tamper-on-receive), threat-B (tamper/forge at rest), and
/// threat-C (LSP-client collusion against a third-party auditor).
class AdversarialTest : public ::testing::Test {
 protected:
  AdversarialTest()
      : clock_(1000 * kMicrosPerSecond),
        ca_(KeyPair::FromSeedString("adv-ca")),
        registry_(&ca_),
        lsp_(KeyPair::FromSeedString("adv-lsp")),
        alice_(KeyPair::FromSeedString("adv-alice")),
        mallory_(KeyPair::FromSeedString("adv-mallory")),
        tsa_(KeyPair::FromSeedString("adv-tsa"), &clock_) {
    registry_.Register(ca_.Certify("lsp", lsp_.public_key(), Role::kLsp));
    registry_.Register(ca_.Certify("alice", alice_.public_key(), Role::kUser));
    registry_.Register(ca_.Certify("mallory", mallory_.public_key(), Role::kUser));
    options_.fractal_height = 3;
    options_.block_capacity = 4;
  }

  ClientTransaction MakeTx(const KeyPair& signer, const std::string& payload) {
    ClientTransaction tx;
    tx.ledger_uri = "lg://adv";
    tx.payload = StringToBytes(payload);
    tx.nonce = nonce_++;
    tx.client_ts = clock_.Now();
    tx.Sign(signer);
    return tx;
  }

  SimulatedClock clock_;
  CertificateAuthority ca_;
  MemberRegistry registry_;
  KeyPair lsp_, alice_, mallory_;
  TsaService tsa_;
  LedgerOptions options_;
  uint64_t nonce_ = 0;
};

// ---------------------------------------------------------------------------
// threat-A: the server (or a MITM) tampers with the incoming transaction.
// ---------------------------------------------------------------------------

TEST_F(AdversarialTest, ThreatA_TamperedRequestRejectedAtCommit) {
  Ledger ledger("lg://adv", options_, &clock_, lsp_, &registry_);
  ClientTransaction tx = MakeTx(alice_, "pay bob 10");
  // The adversary rewrites the payload in flight; π_c no longer matches.
  tx.payload = StringToBytes("pay mallory 10000");
  uint64_t jsn;
  EXPECT_TRUE(ledger.Append(tx, &jsn).IsVerificationFailed());
}

TEST_F(AdversarialTest, ThreatA_ReceiptBindsWhatWasActuallyCommitted) {
  // Even if a malicious server committed something else, the receipt's
  // request-hash would not match the client's own transaction.
  Ledger ledger("lg://adv", options_, &clock_, lsp_, &registry_);
  ClientTransaction honest = MakeTx(alice_, "pay bob 10");
  uint64_t jsn = 0;
  ASSERT_TRUE(ledger.Append(honest, &jsn).ok());
  Receipt receipt;
  ASSERT_TRUE(ledger.GetReceipt(jsn, &receipt).ok());
  // Client-side check: the receipt must commit to *my* request hash.
  EXPECT_EQ(receipt.request_hash, honest.RequestHash());
  ClientTransaction different = MakeTx(alice_, "pay bob 11");
  EXPECT_NE(receipt.request_hash, different.RequestHash());
}

// ---------------------------------------------------------------------------
// threat-B: tampering with journals at rest / forging timestamps.
// ---------------------------------------------------------------------------

TEST_F(AdversarialTest, ThreatB_AtRestTamperBreaksEveryProofPath) {
  Ledger ledger("lg://adv", options_, &clock_, lsp_, &registry_);
  uint64_t jsn = 0;
  ASSERT_TRUE(ledger.Append(MakeTx(alice_, "original contract"), &jsn).ok());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(ledger.Append(MakeTx(alice_, "noise"), nullptr).ok());
  }
  Receipt receipt;
  ASSERT_TRUE(ledger.GetReceipt(jsn, &receipt).ok());

  // The adversary presents an altered journal to a verifier holding the
  // honest root (e.g. from a prior TSA anchor or the client's receipt).
  Journal forged;
  ASSERT_TRUE(ledger.GetJournal(jsn, &forged).ok());
  forged.payload = StringToBytes("altered contract");
  forged.payload_digest = Sha256::Hash(forged.payload);

  FamProof proof;
  ASSERT_TRUE(ledger.GetProof(jsn, &proof).ok());
  EXPECT_FALSE(Ledger::VerifyJournalProof(forged, proof, ledger.FamRoot()));
  // And the receipt pins the original tx-hash.
  EXPECT_NE(forged.TxHash(), receipt.tx_hash);
}

TEST_F(AdversarialTest, ThreatB_ForgedTimestampDetectedByTsaSignature) {
  Ledger ledger("lg://adv", options_, &clock_, lsp_, &registry_);
  ledger.AttachDirectTsa(&tsa_);
  ASSERT_TRUE(ledger.Append(MakeTx(alice_, "x"), nullptr).ok());
  ASSERT_TRUE(ledger.AnchorTime(nullptr).ok());
  TimeEvidence evidence = ledger.time_journals()[0].evidence;
  // The LSP backdates the attestation by an hour.
  evidence.attestation.timestamp -= 3600LL * kMicrosPerSecond;
  EXPECT_FALSE(evidence.attestation.Verify(tsa_.public_key()));
}

// ---------------------------------------------------------------------------
// threat-C: the LSP colludes with a client and rewrites history, re-signing
// everything the coalition controls. The external auditor holding only the
// TSA's keys and an honest participant's receipt must still detect it.
// ---------------------------------------------------------------------------

TEST_F(AdversarialTest, ThreatC_RewrittenLedgerContradictsTsaEvidence) {
  // Honest timeline.
  Ledger honest("lg://adv", options_, &clock_, lsp_, &registry_);
  honest.AttachDirectTsa(&tsa_);
  std::vector<std::string> payloads = {"a", "b", "mallory owes alice 100", "d"};
  for (const auto& p : payloads) {
    const KeyPair& signer = (p[0] == 'm') ? mallory_ : alice_;
    ASSERT_TRUE(honest.Append(MakeTx(signer, p), nullptr).ok());
  }
  ASSERT_TRUE(honest.AnchorTime(nullptr).ok());
  TimeEvidence tsa_evidence = honest.time_journals()[0].evidence;

  // Collusion: LSP + mallory rebuild the ledger with mallory's journal
  // replaced (mallory happily re-signs; the LSP re-signs receipts).
  nonce_ = 0;
  SimulatedClock replay_clock(1000 * kMicrosPerSecond);
  Ledger forged("lg://adv", options_, &replay_clock, lsp_, &registry_);
  for (const auto& p : payloads) {
    std::string payload = (p[0] == 'm') ? std::string("alice owes mallory 100") : p;
    const KeyPair& signer = (p[0] == 'm') ? mallory_ : alice_;
    ClientTransaction tx;
    tx.ledger_uri = "lg://adv";
    tx.payload = StringToBytes(payload);
    tx.nonce = nonce_++;
    tx.client_ts = replay_clock.Now();
    tx.Sign(signer);
    ASSERT_TRUE(forged.Append(tx, nullptr).ok());
  }

  // The auditor binds the TSA-attested digest to the forged ledger's
  // actual prefix: mismatch.
  Digest forged_prefix_root;
  ASSERT_TRUE(
      forged.FamRootAtCount(tsa_evidence.covered_jsn_count, &forged_prefix_root)
          .ok());
  EXPECT_NE(forged_prefix_root, tsa_evidence.attestation.digest);
  EXPECT_TRUE(tsa_evidence.attestation.Verify(tsa_.public_key()));
}

TEST_F(AdversarialTest, ThreatC_HonestClientReceiptExposesRewrite) {
  Ledger honest("lg://adv", options_, &clock_, lsp_, &registry_);
  uint64_t jsn = 0;
  ASSERT_TRUE(honest.Append(MakeTx(alice_, "alice's evidence"), &jsn).ok());
  Receipt alice_receipt;
  ASSERT_TRUE(honest.GetReceipt(jsn, &alice_receipt).ok());

  // Later the LSP presents a rewritten journal at that jsn.
  Journal rewritten;
  ASSERT_TRUE(honest.GetJournal(jsn, &rewritten).ok());
  rewritten.payload = StringToBytes("alice's evidence (doctored)");
  rewritten.payload_digest = Sha256::Hash(rewritten.payload);
  rewritten.client_key = mallory_.public_key();
  rewritten.request_hash = Sha256::Hash(rewritten.payload);
  rewritten.client_sig = mallory_.Sign(rewritten.request_hash);

  // Alice's externally-held receipt pins the original tx-hash; the forged
  // journal cannot reproduce it.
  EXPECT_TRUE(alice_receipt.Verify(honest.lsp_key()));
  EXPECT_NE(rewritten.TxHash(), alice_receipt.tx_hash);
}

// ---------------------------------------------------------------------------
// Property sweep: ANY single-byte corruption of ANY persisted journal is
// caught at recovery (digest check, structural decode, or fam/block root
// mismatch).
// ---------------------------------------------------------------------------

class CorruptionSweepTest : public ::testing::TestWithParam<int> {};

TEST_P(CorruptionSweepTest, SingleByteFlipAlwaysDetected) {
  SimulatedClock clock(0);
  CertificateAuthority ca(KeyPair::FromSeedString("sweep-ca"));
  MemberRegistry registry(&ca);
  KeyPair lsp = KeyPair::FromSeedString("sweep-lsp");
  KeyPair user = KeyPair::FromSeedString("sweep-user");
  registry.Register(ca.Certify("lsp", lsp.public_key(), Role::kLsp));
  registry.Register(ca.Certify("user", user.public_key(), Role::kUser));
  LedgerOptions options;
  options.fractal_height = 3;
  options.block_capacity = 4;

  MemoryStreamStore journals, blocks;
  LedgerStorage storage{&journals, &blocks};
  {
    Ledger ledger("lg://sweep", options, &clock, lsp, &registry, storage);
    for (int i = 0; i < 8; ++i) {
      ClientTransaction tx;
      tx.ledger_uri = "lg://sweep";
      tx.payload = StringToBytes("record-" + std::to_string(i));
      tx.nonce = i;
      tx.Sign(user);
      uint64_t jsn;
      ASSERT_TRUE(ledger.Append(tx, &jsn).ok());
    }
    ledger.SealBlock();
  }

  // Corrupt one byte, position chosen by the parameter.
  uint64_t record = GetParam() % 9;  // 9 records incl. genesis
  Bytes raw;
  ASSERT_TRUE(journals.Read(record, &raw).ok());
  size_t pos = (static_cast<size_t>(GetParam()) * 2654435761u) % raw.size();
  raw[pos] ^= static_cast<uint8_t>(1 + (GetParam() % 255));
  ASSERT_TRUE(journals.Overwrite(record, Slice(raw)).ok());

  std::unique_ptr<Ledger> recovered;
  Status s = Ledger::Recover("lg://sweep", options, &clock, lsp, &registry,
                             storage, &recovered);
  EXPECT_TRUE(s.IsCorruption()) << "param=" << GetParam()
                                << " status=" << s.ToString();
}

INSTANTIATE_TEST_SUITE_P(Positions, CorruptionSweepTest,
                         ::testing::Range(0, 24));

}  // namespace
}  // namespace ledgerdb
