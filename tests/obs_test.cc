#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace ledgerdb::obs {
namespace {

// ---------------------------------------------------------------------------
// Counter / Gauge
// ---------------------------------------------------------------------------

TEST(CounterTest, IncAndValue) {
  Counter c;
  EXPECT_EQ(c.Value(), 0u);
  c.Inc();
  c.Inc(41);
  EXPECT_EQ(c.Value(), 42u);
  c.Reset();
  EXPECT_EQ(c.Value(), 0u);
}

TEST(CounterTest, ConcurrentIncrementsSumExactly) {
  Counter c;
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (uint64_t i = 0; i < kPerThread; ++i) c.Inc();
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(c.Value(), kThreads * kPerThread);
}

TEST(GaugeTest, AddSubSet) {
  Gauge g;
  g.Add(10);
  g.Sub(3);
  EXPECT_EQ(g.Value(), 7);
  g.Set(-5);
  EXPECT_EQ(g.Value(), -5);
  g.Reset();
  EXPECT_EQ(g.Value(), 0);
}

TEST(GaugeTest, ConcurrentAddSubBalancesToZero) {
  Gauge g;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&g] {
      for (int i = 0; i < kPerThread; ++i) {
        g.Add(3);
        g.Sub(3);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(g.Value(), 0);
}

// ---------------------------------------------------------------------------
// Histogram bucket math
// ---------------------------------------------------------------------------

TEST(HistogramBucketTest, SmallValuesGetExactBuckets) {
  // Values below 8 map to their own bucket: lower == upper == value.
  for (uint64_t v = 0; v < 8; ++v) {
    size_t b = Histogram::BucketOf(v);
    EXPECT_EQ(b, v);
    EXPECT_EQ(Histogram::BucketLower(b), v);
    EXPECT_EQ(Histogram::BucketUpper(b), v);
  }
}

TEST(HistogramBucketTest, BoundsBracketTheValue) {
  // Every value must land inside [BucketLower, BucketUpper] of its bucket.
  std::vector<uint64_t> probes;
  for (uint64_t v = 0; v < 4096; ++v) probes.push_back(v);
  for (int shift = 12; shift < 63; ++shift) {
    uint64_t base = uint64_t{1} << shift;
    probes.push_back(base - 1);
    probes.push_back(base);
    probes.push_back(base + 1);
    probes.push_back(base + base / 2);
  }
  probes.push_back(UINT64_MAX);
  for (uint64_t v : probes) {
    size_t b = Histogram::BucketOf(v);
    ASSERT_LT(b, Histogram::kBuckets) << "value " << v;
    if (b + 1 < Histogram::kBuckets) {
      EXPECT_LE(Histogram::BucketLower(b), v) << "value " << v;
      EXPECT_GE(Histogram::BucketUpper(b), v) << "value " << v;
    } else {
      // Overflow bucket: only the lower bound is meaningful.
      EXPECT_LE(Histogram::BucketLower(b), v) << "value " << v;
    }
  }
}

TEST(HistogramBucketTest, BucketOfIsMonotone) {
  size_t prev = 0;
  for (uint64_t v = 0; v < 1 << 16; ++v) {
    size_t b = Histogram::BucketOf(v);
    EXPECT_GE(b, prev) << "value " << v;
    prev = b;
  }
}

TEST(HistogramBucketTest, BucketEdgesAreContiguous) {
  // Upper bound of bucket b plus one must be the lower bound of bucket
  // b+1 — no gaps, no overlaps. Stop at the bucket whose upper bound is
  // already UINT64_MAX (the +1 would wrap).
  for (size_t b = 0; b + 2 < Histogram::kBuckets; ++b) {
    if (Histogram::BucketUpper(b) == UINT64_MAX) break;
    EXPECT_EQ(Histogram::BucketUpper(b) + 1, Histogram::BucketLower(b + 1))
        << "bucket " << b;
  }
}

TEST(HistogramBucketTest, RelativeErrorBounded) {
  // 4 sub-buckets per octave gives <= 25% relative bucket width.
  for (uint64_t v = 8; v < 1 << 20; v = v + v / 7 + 1) {
    size_t b = Histogram::BucketOf(v);
    if (b + 1 >= Histogram::kBuckets) break;
    uint64_t lo = Histogram::BucketLower(b);
    uint64_t hi = Histogram::BucketUpper(b);
    EXPECT_LE(static_cast<double>(hi - lo),
              0.25 * static_cast<double>(lo) + 1.0)
        << "value " << v;
  }
}

// ---------------------------------------------------------------------------
// Histogram observe / quantiles
// ---------------------------------------------------------------------------

HistogramSnapshot Snap(const Histogram& h, const std::string& name = "h") {
  HistogramSnapshot s;
  s.name = name;
  s.count = h.Count();
  s.sum = h.Sum();
  s.max = h.Max();
  for (size_t b = 0; b < Histogram::kBuckets; ++b) {
    uint64_t n = h.BucketCount(b);
    if (n != 0) s.buckets.push_back({static_cast<uint32_t>(b), n});
  }
  return s;
}

TEST(HistogramTest, CountSumMax) {
  Histogram h;
  h.Observe(5);
  h.Observe(100);
  h.Observe(3);
  EXPECT_EQ(h.Count(), 3u);
  EXPECT_EQ(h.Sum(), 108u);
  EXPECT_EQ(h.Max(), 100u);
  h.Reset();
  EXPECT_EQ(h.Count(), 0u);
  EXPECT_EQ(h.Sum(), 0u);
  EXPECT_EQ(h.Max(), 0u);
}

TEST(HistogramTest, QuantilesExactForSmallValues) {
  // Values < 8 live in exact single-value buckets, so quantiles of a
  // uniform small-value population are exact.
  Histogram h;
  for (uint64_t v = 0; v < 8; ++v) h.Observe(v);
  HistogramSnapshot s = Snap(h);
  EXPECT_DOUBLE_EQ(s.Quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(s.Quantile(1.0), 7.0);
  EXPECT_NEAR(s.Quantile(0.5), 3.5, 0.5);
}

TEST(HistogramTest, QuantileNeverExceedsObservedMax) {
  Histogram h;
  h.Observe(550);  // single sample in a wide bucket
  HistogramSnapshot s = Snap(h);
  EXPECT_LE(s.p50(), 550.0);
  EXPECT_LE(s.p99(), 550.0);
  EXPECT_DOUBLE_EQ(s.Quantile(1.0), 550.0);
}

TEST(HistogramTest, QuantileEmptyIsZero) {
  Histogram h;
  HistogramSnapshot s = Snap(h);
  EXPECT_DOUBLE_EQ(s.Quantile(0.5), 0.0);
}

TEST(HistogramTest, QuantileWithinBucketRelativeError) {
  // 10k uniform samples in [0, 10000): p50 must sit near 5000 within one
  // bucket width (<= 25% relative error).
  Histogram h;
  for (uint64_t v = 0; v < 10000; ++v) h.Observe(v);
  HistogramSnapshot s = Snap(h);
  EXPECT_NEAR(s.Quantile(0.5), 5000.0, 5000.0 * 0.25);
  EXPECT_NEAR(s.Quantile(0.9), 9000.0, 9000.0 * 0.25);
}

TEST(HistogramTest, P999SeparatesTheExtremeTail) {
  // 999 fast ops and one 100x outlier: p99 stays at the body, p99.9
  // reaches into the outlier's bucket — the quantile SLO dashboards use
  // to catch rare stalls that p99 averages away.
  Histogram h;
  for (int i = 0; i < 999; ++i) h.Observe(100);
  h.Observe(10'000);
  HistogramSnapshot s = Snap(h);
  EXPECT_NEAR(s.p99(), 100.0, 100.0 * 0.25);
  EXPECT_GT(s.p999(), 1000.0);
  EXPECT_LE(s.p999(), 10'000.0);  // clamped to the observed max
  EXPECT_DOUBLE_EQ(s.p999(), s.Quantile(0.999));
}

TEST(HistogramTest, ConcurrentObserveCountsExactly) {
  Histogram h;
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        h.Observe(static_cast<uint64_t>(t) * 1000 + (i & 511));
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(h.Count(), kThreads * kPerThread);
  uint64_t bucket_total = 0;
  for (size_t b = 0; b < Histogram::kBuckets; ++b) {
    bucket_total += h.BucketCount(b);
  }
  EXPECT_EQ(bucket_total, kThreads * kPerThread);
  EXPECT_GE(h.Max(), 7000u);
}

// ---------------------------------------------------------------------------
// Snapshot merge
// ---------------------------------------------------------------------------

TEST(SnapshotTest, HistogramMergePreservesTotals) {
  Histogram a, b;
  for (uint64_t v = 0; v < 100; ++v) a.Observe(v);
  for (uint64_t v = 100; v < 300; ++v) b.Observe(v);
  HistogramSnapshot sa = Snap(a);
  HistogramSnapshot sb = Snap(b);
  sa.MergeFrom(sb);
  EXPECT_EQ(sa.count, 300u);
  EXPECT_EQ(sa.sum, a.Sum() + b.Sum());
  EXPECT_EQ(sa.max, 299u);
  uint64_t bucket_total = 0;
  for (const auto& [index, n] : sa.buckets) bucket_total += n;
  EXPECT_EQ(bucket_total, 300u);
}

TEST(SnapshotTest, RegistryMergeEqualsSums) {
  MetricsRegistry r1, r2;
  r1.GetCounter("ledgerdb_test_a_total")->Inc(5);
  r2.GetCounter("ledgerdb_test_a_total")->Inc(7);
  r2.GetCounter("ledgerdb_test_b_total")->Inc(1);
  r1.GetGauge("ledgerdb_test_depth_count")->Add(3);
  r2.GetGauge("ledgerdb_test_depth_count")->Add(-1);
  r1.GetHistogram("ledgerdb_test_lat_us")->Observe(10);
  r2.GetHistogram("ledgerdb_test_lat_us")->Observe(20);

  MetricsSnapshot merged = r1.Snapshot();
  merged.MergeFrom(r2.Snapshot());

  auto counter = [&](const std::string& name) -> uint64_t {
    for (const auto& [n, v] : merged.counters) {
      if (n == name) return v;
    }
    return 0;
  };
  EXPECT_EQ(counter("ledgerdb_test_a_total"), 12u);
  EXPECT_EQ(counter("ledgerdb_test_b_total"), 1u);
  ASSERT_EQ(merged.gauges.size(), 1u);
  EXPECT_EQ(merged.gauges[0].second, 2);
  ASSERT_EQ(merged.histograms.size(), 1u);
  EXPECT_EQ(merged.histograms[0].count, 2u);
  EXPECT_EQ(merged.histograms[0].sum, 30u);
  EXPECT_EQ(merged.histograms[0].max, 20u);
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

TEST(RegistryTest, SameNameReturnsSamePointer) {
  MetricsRegistry r;
  Counter* a = r.GetCounter("ledgerdb_test_x_total");
  Counter* b = r.GetCounter("ledgerdb_test_x_total");
  EXPECT_EQ(a, b);
  EXPECT_TRUE(r.Conflicts().empty());
}

TEST(RegistryTest, KindMismatchIsRecordedAndServedDummy) {
  MetricsRegistry r;
  Counter* c = r.GetCounter("ledgerdb_test_x_total");
  c->Inc(3);
  Gauge* g = r.GetGauge("ledgerdb_test_x_total");  // wrong kind
  ASSERT_NE(g, nullptr);
  g->Add(100);  // lands on the dummy, never in snapshots
  std::vector<std::string> conflicts = r.Conflicts();
  ASSERT_EQ(conflicts.size(), 1u);
  EXPECT_EQ(conflicts[0], "ledgerdb_test_x_total");
  MetricsSnapshot snap = r.Snapshot();
  ASSERT_EQ(snap.counters.size(), 1u);
  EXPECT_EQ(snap.counters[0].second, 3u);
  EXPECT_TRUE(snap.gauges.empty());
}

TEST(RegistryTest, LabeledCountersAreDistinctSeries) {
  MetricsRegistry r;
  r.GetCounter("ledgerdb_test_faults_total", "kind", "drop")->Inc(2);
  r.GetCounter("ledgerdb_test_faults_total", "kind", "delay")->Inc(5);
  MetricsSnapshot snap = r.Snapshot();
  ASSERT_EQ(snap.counters.size(), 2u);
  EXPECT_EQ(snap.counters[0].first, "ledgerdb_test_faults_total{kind=\"delay\"}");
  EXPECT_EQ(snap.counters[0].second, 5u);
  EXPECT_EQ(snap.counters[1].first, "ledgerdb_test_faults_total{kind=\"drop\"}");
  EXPECT_EQ(snap.counters[1].second, 2u);
}

TEST(RegistryTest, ResetAllZeroesEverything) {
  MetricsRegistry r;
  r.GetCounter("ledgerdb_test_a_total")->Inc(9);
  r.GetGauge("ledgerdb_test_d_count")->Add(4);
  r.GetHistogram("ledgerdb_test_l_us")->Observe(55);
  r.ResetAll();
  MetricsSnapshot snap = r.Snapshot();
  EXPECT_EQ(snap.counters[0].second, 0u);
  EXPECT_EQ(snap.gauges[0].second, 0);
  EXPECT_EQ(snap.histograms[0].count, 0u);
}

TEST(RegistryTest, ConcurrentRegistrationAndUse) {
  MetricsRegistry r;
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&r] {
      // All threads race on registration of the same three names.
      Counter* c = r.GetCounter("ledgerdb_race_hits_total");
      Histogram* h = r.GetHistogram("ledgerdb_race_lat_us");
      Gauge* g = r.GetGauge("ledgerdb_race_depth_count");
      for (uint64_t i = 0; i < kPerThread; ++i) {
        c->Inc();
        h->Observe(i & 255);
        g->Add(1);
        g->Sub(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  MetricsSnapshot snap = r.Snapshot();
  ASSERT_EQ(snap.counters.size(), 1u);
  EXPECT_EQ(snap.counters[0].second, kThreads * kPerThread);
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].count, kThreads * kPerThread);
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_EQ(snap.gauges[0].second, 0);
  EXPECT_TRUE(r.Conflicts().empty());
}

// ---------------------------------------------------------------------------
// Encoders
// ---------------------------------------------------------------------------

TEST(EncodingTest, JsonContainsAllSections) {
  MetricsRegistry r;
  r.GetCounter("ledgerdb_test_a_total")->Inc(7);
  r.GetGauge("ledgerdb_test_d_count")->Set(2);
  r.GetHistogram("ledgerdb_test_l_us")->Observe(42);
  std::string json = r.Snapshot().ToJson();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"ledgerdb_test_a_total\": 7"), std::string::npos);
  EXPECT_NE(json.find("\"ledgerdb_test_d_count\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"count\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"sum\": 42"), std::string::npos);
}

TEST(EncodingTest, PrometheusExposesTypesAndLabels) {
  MetricsRegistry r;
  r.GetCounter("ledgerdb_test_faults_total", "kind", "drop")->Inc(2);
  r.GetGauge("ledgerdb_test_d_count")->Set(5);
  r.GetHistogram("ledgerdb_test_l_us")->Observe(42);
  std::string prom = r.Snapshot().ToPrometheus();
  EXPECT_NE(prom.find("# TYPE ledgerdb_test_faults_total counter"),
            std::string::npos);
  EXPECT_NE(prom.find("ledgerdb_test_faults_total{kind=\"drop\"} 2"),
            std::string::npos);
  EXPECT_NE(prom.find("# TYPE ledgerdb_test_d_count gauge"),
            std::string::npos);
  EXPECT_NE(prom.find("# TYPE ledgerdb_test_l_us summary"),
            std::string::npos);
  EXPECT_NE(prom.find("ledgerdb_test_l_us{quantile=\"0.5\"}"),
            std::string::npos);
  EXPECT_NE(prom.find("ledgerdb_test_l_us_count 1"), std::string::npos);
}

TEST(EncodingTest, EmptySnapshotIsWellFormed) {
  MetricsRegistry r;
  MetricsSnapshot snap = r.Snapshot();
  EXPECT_TRUE(snap.empty());
  std::string json = snap.ToJson();
  EXPECT_NE(json.find("\"counters\": {}"), std::string::npos);
  EXPECT_EQ(snap.ToPrometheus(), "");
}

// ---------------------------------------------------------------------------
// Span tracer
// ---------------------------------------------------------------------------

TEST(SpanTracerTest, RecordsEverySpanAtSampleOne) {
  SpanTracer tracer;
  tracer.SetSampleEvery(1);
  for (int i = 0; i < 10; ++i) {
    tracer.Record(stages::kCommit.name, 1000 + i, 5);
  }
  std::vector<SpanRecord> spans = tracer.Snapshot();
  ASSERT_EQ(spans.size(), 10u);
  for (const SpanRecord& s : spans) {
    EXPECT_STREQ(s.stage, "commit");
    EXPECT_EQ(s.dur_us, 5u);
  }
  // Oldest first.
  EXPECT_EQ(spans.front().start_us, 1000u);
  EXPECT_EQ(spans.back().start_us, 1009u);
}

TEST(SpanTracerTest, SamplingKeepsOneInN) {
  SpanTracer tracer;
  tracer.SetSampleEvery(4);
  for (int i = 0; i < 100; ++i) {
    tracer.Record(stages::kSeal.name, i, 1);
  }
  size_t n = tracer.Snapshot().size();
  EXPECT_EQ(n, 25u);
}

TEST(SpanTracerTest, ZeroDisablesRing) {
  SpanTracer tracer;
  tracer.SetSampleEvery(0);
  for (int i = 0; i < 100; ++i) {
    tracer.Record(stages::kSeal.name, i, 1);
  }
  EXPECT_TRUE(tracer.Snapshot().empty());
}

TEST(SpanTracerTest, RingWrapsKeepingMostRecent) {
  SpanTracer tracer;
  tracer.SetSampleEvery(1);
  constexpr size_t kTotal = SpanTracer::kRingCapacity + 100;
  for (size_t i = 0; i < kTotal; ++i) {
    tracer.Record(stages::kPrevalidate.name, i, 1);
  }
  std::vector<SpanRecord> spans = tracer.Snapshot();
  ASSERT_EQ(spans.size(), SpanTracer::kRingCapacity);
  EXPECT_EQ(spans.back().start_us, kTotal - 1);
  EXPECT_EQ(spans.front().start_us, kTotal - SpanTracer::kRingCapacity);
}

TEST(SpanTracerTest, ClearEmptiesRings) {
  SpanTracer tracer;
  tracer.SetSampleEvery(1);
  tracer.Record(stages::kCommit.name, 1, 1);
  tracer.Clear();
  EXPECT_TRUE(tracer.Snapshot().empty());
}

TEST(SpanTracerTest, ConcurrentRecordFromManyThreads) {
  SpanTracer tracer;
  tracer.SetSampleEvery(1);
  // A thread that finishes early donates its ring to the free list, so in
  // the worst case every record lands in ONE recycled ring; keep the total
  // under kRingCapacity so even that case drops nothing.
  constexpr int kThreads = 8;
  constexpr int kPerThread = 100;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tracer] {
      for (int i = 0; i < kPerThread; ++i) {
        tracer.Record(stages::kSigBatch.name, static_cast<uint64_t>(i), 2);
      }
    });
  }
  for (auto& th : threads) th.join();
  std::vector<SpanRecord> spans = tracer.Snapshot();
  EXPECT_EQ(spans.size(), static_cast<size_t>(kThreads) * kPerThread);
}

TEST(SpanTest, ObsSpanFeedsHistogramAndRing) {
  // Uses the process-default tracer (ObsSpan always routes there), but a
  // locally owned histogram so counts are deterministic.
  Histogram hist;
  SpanTracer::Default().Clear();
  SpanTracer::Default().SetSampleEvery(1);
  ASSERT_TRUE(Enabled());
  { ObsSpan span(stages::kProofBuild, &hist); }
  EXPECT_EQ(hist.Count(), 1u);
  std::vector<SpanRecord> spans = SpanTracer::Default().Snapshot();
  bool found = false;
  for (const SpanRecord& s : spans) {
    if (s.stage == std::string("proof_build")) found = true;
  }
  EXPECT_TRUE(found);
  SpanTracer::Default().Clear();
  SpanTracer::Default().SetSampleEvery(16);
}

TEST(SpanTest, DisabledSpanIsInert) {
  Histogram hist;
  SpanTracer::Default().Clear();
  SetEnabled(false);
  { ObsSpan span(stages::kProofBuild, &hist); }
  SetEnabled(true);
  EXPECT_EQ(hist.Count(), 0u);
  EXPECT_TRUE(SpanTracer::Default().Snapshot().empty());
}

// ---------------------------------------------------------------------------
// Kill switch
// ---------------------------------------------------------------------------

TEST(EnabledTest, RuntimeToggle) {
  ASSERT_TRUE(Enabled());
  SetEnabled(false);
  EXPECT_FALSE(Enabled());
  SetEnabled(true);
  EXPECT_TRUE(Enabled());
}

}  // namespace
}  // namespace ledgerdb::obs
