// Tracing-overhead smoke (perf tier): the instrumented Ledger::Append hot
// path must stay within 5% of its observability-disabled self. The obs hot
// path is one relaxed atomic add per counter hit and two clock reads per
// span; ECDSA verification (~100 us/append) dominates, so 5% is a wide
// margin — a regression here means instrumentation landed on the hot path
// in a form far heavier than designed (e.g. a registry lookup per call).
//
// Methodology: runtime kill switch (obs::SetEnabled) flipped between
// interleaved trials in one binary, min-of-k per arm to shed scheduler
// noise, up to 3 verdict rounds before failing. Sanitizer builds distort
// the atomic/clock cost model and are skipped; LEDGERDB_OBS_OFF builds
// compile both arms to identical code, so the comparison is vacuous and
// skipped too.

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <string>
#include <vector>

#include "ledger/ledger.h"
#include "obs/metrics.h"

#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
#define LEDGERDB_UNDER_SANITIZER 1
#endif
#if defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer) || \
    __has_feature(undefined_behavior_sanitizer)
#define LEDGERDB_UNDER_SANITIZER 1
#endif
#endif

namespace ledgerdb {
namespace {

class ObsOverheadTest : public ::testing::Test {
 protected:
  ObsOverheadTest()
      : clock_(1700000000LL * kMicrosPerSecond),
        ca_(KeyPair::FromSeedString("ca")),
        registry_(&ca_),
        lsp_key_(KeyPair::FromSeedString("lsp")),
        alice_(KeyPair::FromSeedString("alice")) {
    EXPECT_TRUE(registry_
                    .Register(ca_.Certify("lsp", lsp_key_.public_key(),
                                          Role::kLsp))
                    .ok());
    EXPECT_TRUE(registry_
                    .Register(ca_.Certify("alice", alice_.public_key(),
                                          Role::kUser))
                    .ok());
    LedgerOptions options;
    options.fractal_height = 8;
    options.block_capacity = 64;
    ledger_ = std::make_unique<Ledger>("lg://overhead", options, &clock_,
                                       lsp_key_, &registry_);
  }

  /// Wall time in seconds for `n` fresh appends (transactions are built
  /// and signed outside the timed region).
  double TimeAppends(int n) {
    std::vector<ClientTransaction> txs;
    txs.reserve(n);
    for (int i = 0; i < n; ++i) {
      ClientTransaction tx;
      tx.ledger_uri = "lg://overhead";
      tx.payload = StringToBytes("overhead-probe-" + std::to_string(nonce_));
      tx.nonce = nonce_++;
      tx.client_ts = clock_.Now();
      tx.Sign(alice_);
      txs.push_back(std::move(tx));
    }
    auto start = std::chrono::steady_clock::now();
    for (ClientTransaction& tx : txs) {
      uint64_t jsn = 0;
      Status s = ledger_->Append(tx, &jsn);
      EXPECT_TRUE(s.ok()) << s.message();
    }
    auto end = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(end - start).count();
  }

  /// Min-of-k append time with the obs runtime switch in `enabled` state.
  double MinTrial(bool enabled, int k, int appends_per_trial) {
    double best = 1e9;
    for (int i = 0; i < k; ++i) {
      obs::SetEnabled(enabled);
      double t = TimeAppends(appends_per_trial);
      if (t < best) best = t;
    }
    obs::SetEnabled(true);
    return best;
  }

  SimulatedClock clock_;
  CertificateAuthority ca_;
  MemberRegistry registry_;
  KeyPair lsp_key_, alice_;
  std::unique_ptr<Ledger> ledger_;
  uint64_t nonce_ = 0;
};

TEST_F(ObsOverheadTest, InstrumentedAppendWithinFivePercent) {
#if defined(LEDGERDB_UNDER_SANITIZER)
  GTEST_SKIP() << "sanitizer build: timing comparison not meaningful";
#elif defined(LEDGERDB_OBS_OFF)
  GTEST_SKIP() << "LEDGERDB_OBS_OFF build: both arms compile identically";
#else
  constexpr int kAppendsPerTrial = 192;
  constexpr int kTrialsPerArm = 3;
  constexpr int kRounds = 3;
  constexpr double kMaxRatio = 1.05;

  TimeAppends(32);  // warm caches / first-block paths outside the verdict

  double last_ratio = 0.0;
  for (int round = 0; round < kRounds; ++round) {
    // Interleave arms within the round so drift (thermal, other tenants)
    // hits both equally.
    double on_s = MinTrial(/*enabled=*/true, kTrialsPerArm, kAppendsPerTrial);
    double off_s =
        MinTrial(/*enabled=*/false, kTrialsPerArm, kAppendsPerTrial);
    last_ratio = on_s / off_s;
    if (last_ratio <= kMaxRatio) {
      SUCCEED() << "round " << round << ": on=" << on_s * 1e6 / kAppendsPerTrial
                << "us/append off=" << off_s * 1e6 / kAppendsPerTrial
                << "us/append ratio=" << last_ratio;
      return;
    }
  }
  FAIL() << "instrumentation overhead ratio " << last_ratio << " exceeds "
         << kMaxRatio << " across " << kRounds << " rounds";
#endif
}

}  // namespace
}  // namespace ledgerdb
