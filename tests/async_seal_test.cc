// Concurrency tests for asynchronous block sealing: the committer hands
// each block boundary to a per-shard sealer lane (Ledger::SealJob →
// CompleteSeal) and keeps appending, so sealing races
//   * the committer itself (ApplyCommitted appending past the boundary),
//   * readers — GetProof / GetReceipt / ListTx / SealBacklog — that run
//     while the sealer backlog is still draining.
// The invariants checked here:
//   * receipts obtained while the sealer raced resolve to sealed blocks
//     and verify against the LSP key,
//   * the final ledgers are bit-identical (fam/clue/state roots, group
//     commitment) to a serial replay with inline sealing,
//   * the full Dasein audit passes and every shard recovers from its
//     streams with the same block structure.
// Runs under ThreadSanitizer via the `tsan` CTest label.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "audit/dasein_auditor.h"
#include "ledger/sharded.h"

namespace ledgerdb {
namespace {

constexpr size_t kShards = 4;
constexpr size_t kWriters = 4;
constexpr size_t kReaders = 4;
constexpr size_t kRounds = 3;
constexpr size_t kTxPerWriterPerRound = 96;
constexpr size_t kCluesPerWriter = 8;
constexpr size_t kBlockCapacity = 8;

class AsyncSealTest : public ::testing::Test {
 protected:
  AsyncSealTest()
      : clock_(0),
        ca_(KeyPair::FromSeedString("as-ca")),
        registry_(&ca_),
        lsp_(KeyPair::FromSeedString("as-lsp")) {
    registry_.Register(ca_.Certify("lsp", lsp_.public_key(), Role::kLsp));
    for (size_t w = 0; w < kWriters; ++w) {
      users_.push_back(KeyPair::FromSeedString("as-user-" + std::to_string(w)));
      registry_.Register(ca_.Certify("user-" + std::to_string(w),
                                     users_.back().public_key(), Role::kUser));
    }
    options_.fractal_height = 8;
    // Small blocks: every round crosses many boundaries, so the sealer
    // lane always has work racing the committer and the readers.
    options_.block_capacity = kBlockCapacity;
  }

  ClientTransaction MakeTx(size_t writer, size_t seq) {
    ClientTransaction tx;
    tx.ledger_uri = "lg://async-seal";
    tx.clues = {"w" + std::to_string(writer) + "-clue-" +
                std::to_string(seq % kCluesPerWriter)};
    tx.payload = StringToBytes("w" + std::to_string(writer) + "-seq-" +
                               std::to_string(seq));
    tx.nonce = writer * 1000000 + seq;
    tx.Sign(users_[writer]);
    return tx;
  }

  SimulatedClock clock_;
  CertificateAuthority ca_;
  MemberRegistry registry_;
  KeyPair lsp_;
  std::vector<KeyPair> users_;
  LedgerOptions options_;
};

TEST_F(AsyncSealTest, ReadersRaceBackgroundSealerAcrossBoundaries) {
  std::vector<std::unique_ptr<MemoryStreamStore>> stores;
  std::vector<LedgerStorage> storage;
  for (size_t s = 0; s < kShards; ++s) {
    stores.push_back(std::make_unique<MemoryStreamStore>());
    stores.push_back(std::make_unique<MemoryStreamStore>());
    storage.push_back({stores[2 * s].get(), stores[2 * s + 1].get()});
  }
  ShardedLedgerGroup group("lg://async-seal", kShards, options_, &clock_,
                           lsp_, &registry_, std::move(storage));
  group.StartParallelAppend(4);

  // Pre-sign everything; keep alive for replay at the end.
  std::vector<std::vector<std::vector<ClientTransaction>>> txs(kRounds);
  for (size_t r = 0; r < kRounds; ++r) {
    txs[r].resize(kWriters);
    for (size_t w = 0; w < kWriters; ++w) {
      txs[r][w].reserve(kTxPerWriterPerRound);
      for (size_t i = 0; i < kTxPerWriterPerRound; ++i) {
        txs[r][w].push_back(MakeTx(w, r * kTxPerWriterPerRound + i));
      }
    }
  }

  for (size_t r = 0; r < kRounds; ++r) {
    // Writers: concurrent AppendBatch; the committer lanes cross block
    // boundaries mid-batch, scheduling seal jobs that race the ongoing
    // appends on the per-shard sealer lanes.
    std::vector<std::vector<ShardedLedgerGroup::Location>> locations(kWriters);
    std::vector<Status> batch_status(kWriters);
    std::vector<std::thread> writers;
    for (size_t w = 0; w < kWriters; ++w) {
      writers.emplace_back([&, w] {
        batch_status[w] = group.AppendBatch(txs[r][w], &locations[w], nullptr);
      });
    }
    for (std::thread& t : writers) t.join();
    for (size_t w = 0; w < kWriters; ++w) {
      ASSERT_TRUE(batch_status[w].ok()) << batch_status[w].ToString();
      ASSERT_EQ(locations[w].size(), kTxPerWriterPerRound);
    }

    // Readers: every append has resolved (shard journal state is
    // quiescent) but the sealer backlog may still be draining — proofs,
    // receipts and clue lookups race the background CompleteSeal calls.
    std::vector<std::thread> readers;
    for (size_t reader = 0; reader < kReaders; ++reader) {
      readers.emplace_back([&, reader] {
        for (size_t w = 0; w < kWriters; ++w) {
          for (size_t i = reader; i < locations[w].size(); i += kReaders) {
            const ShardedLedgerGroup::Location& loc = locations[w][i];
            FamProof proof;
            ASSERT_TRUE(group.GetProof(loc, &proof).ok());
            (void)group.shard(loc.shard)->SealBacklog();
            // Receipts only for journals inside completed boundaries:
            // GetReceipt blocks on the in-flight seal future for the
            // journal's block (receipts are block-granular), and must
            // never observe a half-sealed block.
            uint64_t journals = group.shard(loc.shard)->NumJournals();
            if (loc.jsn < (journals / kBlockCapacity) * kBlockCapacity) {
              Receipt receipt;
              ASSERT_TRUE(group.GetReceipt(loc, &receipt).ok());
              ASSERT_TRUE(receipt.Verify(lsp_.public_key()));
              ASSERT_EQ(receipt.jsn, loc.jsn);
            }
            if (i % 16 == reader) {
              std::string clue = "w" + std::to_string(w) + "-clue-" +
                                 std::to_string(i % kCluesPerWriter);
              std::vector<uint64_t> jsns;
              size_t shard = 0;
              ASSERT_TRUE(group.ListTx(clue, &jsns, &shard).ok());
            }
          }
        }
      });
    }
    for (std::thread& t : readers) t.join();
  }

  group.StopParallelAppend();

  // Enough boundaries actually went through the async sealer.
  for (size_t s = 0; s < kShards; ++s) {
    EXPECT_GE(group.shard(s)->blocks().size(), 3u) << "shard " << s;
  }
  EXPECT_EQ(group.TotalJournals(),
            kRounds * kWriters * kTxPerWriterPerRound + kShards);

  // --- Serial replay with inline sealing: bit-identical roots. ----------
  std::unordered_map<std::string, const ClientTransaction*> by_request_hash;
  for (size_t r = 0; r < kRounds; ++r) {
    for (size_t w = 0; w < kWriters; ++w) {
      for (const ClientTransaction& tx : txs[r][w]) {
        by_request_hash[tx.RequestHash().ToHex()] = &tx;
      }
    }
  }
  GroupCommitment replay_commitment;
  for (size_t s = 0; s < kShards; ++s) {
    const Ledger* shard = group.shard(s);
    Ledger reference("lg://async-seal", options_, &clock_, lsp_, &registry_);
    for (uint64_t jsn = 1; jsn < shard->NumJournals(); ++jsn) {
      Journal journal;
      ASSERT_TRUE(shard->GetJournal(jsn, &journal).ok());
      auto it = by_request_hash.find(journal.request_hash.ToHex());
      ASSERT_NE(it, by_request_hash.end());
      uint64_t ref_jsn = 0;
      ASSERT_TRUE(reference.Append(*it->second, &ref_jsn).ok());
      ASSERT_EQ(ref_jsn, jsn);
    }
    EXPECT_EQ(reference.FamRoot(), shard->FamRoot()) << "shard " << s;
    EXPECT_EQ(reference.ClueRoot(), shard->ClueRoot()) << "shard " << s;
    EXPECT_EQ(reference.StateRoot(), shard->StateRoot()) << "shard " << s;
    // Async-sealed block headers match the inline-sealed reference chain.
    const std::vector<BlockHeader>& sealed = shard->blocks();
    const std::vector<BlockHeader>& ref_blocks = reference.blocks();
    ASSERT_EQ(sealed.size(), ref_blocks.size()) << "shard " << s;
    for (size_t b = 0; b < sealed.size(); ++b) {
      EXPECT_EQ(sealed[b].Hash(), ref_blocks[b].Hash())
          << "shard " << s << " block " << b;
    }
    replay_commitment.shard_roots.push_back(reference.FamRoot());
  }
  EXPECT_EQ(replay_commitment.Combined(), group.Commitment().Combined());

  // --- Dasein audit over each shard (sealing the partial tail first). ---
  for (size_t s = 0; s < kShards; ++s) {
    Ledger* shard = group.shard(s);
    Receipt receipt;
    ASSERT_TRUE(shard->GetReceipt(shard->NumJournals() - 1, &receipt).ok());
    DaseinAuditor::Context context;
    context.ledger = shard;
    context.members = &registry_;
    AuditReport report;
    Status audit = DaseinAuditor(context).Audit(receipt, {}, &report);
    ASSERT_TRUE(audit.ok()) << audit.ToString() << " — "
                            << report.failure_reason;
    EXPECT_TRUE(report.passed) << report.failure_reason;
  }

  // --- Recovery: streams written by the racing sealer rebuild the same
  // ledger, blocks included. --------------------------------------------
  for (size_t s = 0; s < kShards; ++s) {
    std::unique_ptr<Ledger> recovered;
    Status recover = Ledger::Recover(
        "lg://async-seal", options_, &clock_, lsp_, &registry_,
        {stores[2 * s].get(), stores[2 * s + 1].get()}, &recovered);
    ASSERT_TRUE(recover.ok()) << "shard " << s << ": " << recover.ToString();
    EXPECT_EQ(recovered->NumJournals(), group.shard(s)->NumJournals());
    EXPECT_EQ(recovered->FamRoot(), group.shard(s)->FamRoot());
    EXPECT_EQ(recovered->ClueRoot(), group.shard(s)->ClueRoot());
    EXPECT_EQ(recovered->StateRoot(), group.shard(s)->StateRoot());
    EXPECT_EQ(recovered->blocks().size(), group.shard(s)->blocks().size());
  }
}

TEST_F(AsyncSealTest, StopDrainsSealerAndInlineSealingResumes) {
  ShardedLedgerGroup group("lg://async-seal", kShards, options_, &clock_,
                           lsp_, &registry_);
  std::vector<ClientTransaction> txs;
  for (size_t i = 0; i < 4 * kBlockCapacity * kShards; ++i) {
    txs.push_back(MakeTx(i % kWriters, i));
  }
  std::vector<ShardedLedgerGroup::Location> locations;
  ASSERT_TRUE(group.AppendBatch(txs, &locations, nullptr).ok());
  group.StopParallelAppend();
  // Stop waited out the sealer backlog: no seal is in flight.
  for (size_t s = 0; s < kShards; ++s) {
    EXPECT_EQ(group.shard(s)->SealBacklog(), 0u);
    EXPECT_TRUE(group.shard(s)->WaitForSeals().ok());
  }
  // The scheduler is detached: the serial path seals inline again.
  ShardedLedgerGroup::Location loc;
  size_t before = 0;
  for (size_t s = 0; s < kShards; ++s) before += group.shard(s)->blocks().size();
  for (size_t i = 0; i < kBlockCapacity * kShards; ++i) {
    ASSERT_TRUE(group.Append(MakeTx(0, 100000 + i), &loc).ok());
  }
  size_t after = 0;
  for (size_t s = 0; s < kShards; ++s) after += group.shard(s)->blocks().size();
  EXPECT_GT(after, before);
}

}  // namespace
}  // namespace ledgerdb
