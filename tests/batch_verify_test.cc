// Batch ECDSA verification: Montgomery batch inversion, wNAF dual-scalar
// ladders, VerifyBatch accept/reject equivalence with the scalar path, and
// the batched ledger prevalidation built on top of them.

#include <gtest/gtest.h>

#include <vector>

#include "common/random.h"
#include "crypto/ecdsa.h"
#include "crypto/secp256k1.h"
#include "crypto/u256.h"
#include "ledger/ledger.h"
#include "ledger/sharded.h"

namespace ledgerdb {
namespace {

using secp256k1::kN;
using secp256k1::kP;

U256 RandomScalar(Random* rng, const U256& m) {
  for (;;) {
    Bytes raw = rng->NextBytes(32);
    U256 v = U256::FromBigEndian(raw.data());
    if (!v.IsZero() && Compare(v, m) < 0) return v;
  }
}

// ---------------------------------------------------------------------------
// Montgomery batch inversion (ModInverseBatch / FeInvBatch)
// ---------------------------------------------------------------------------

TEST(BatchInverseTest, EmptySpanIsNoop) {
  ModInverseBatch(nullptr, 0, kN);
  secp256k1::FeInvBatch(nullptr, 0);
}

TEST(BatchInverseTest, SingleElementMatchesScalar) {
  Random rng(7);
  U256 a = RandomScalar(&rng, kN);
  U256 batch = a;
  ModInverseBatch(&batch, 1, kN);
  EXPECT_EQ(batch, ModInverse(a, kN));

  U256 f = RandomScalar(&rng, kP);
  U256 fbatch = f;
  secp256k1::FeInvBatch(&fbatch, 1);
  EXPECT_EQ(fbatch, secp256k1::FeInv(f));
}

TEST(BatchInverseTest, ZeroElementSkippedWithoutCorruptingNeighbors) {
  Random rng(11);
  std::vector<U256> elems(9);
  std::vector<U256> originals(9);
  for (size_t i = 0; i < elems.size(); ++i) {
    elems[i] = RandomScalar(&rng, kN);
    originals[i] = elems[i];
  }
  elems[0] = originals[0] = U256();  // zero at the edge
  elems[4] = originals[4] = U256();  // zero in the middle
  ModInverseBatch(elems.data(), elems.size(), kN);
  for (size_t i = 0; i < elems.size(); ++i) {
    if (originals[i].IsZero()) {
      EXPECT_TRUE(elems[i].IsZero()) << "index " << i;
    } else {
      EXPECT_EQ(elems[i], ModInverse(originals[i], kN)) << "index " << i;
      EXPECT_EQ(MulMod(elems[i], originals[i], kN), U256(1)) << "index " << i;
    }
  }
}

TEST(BatchInverseTest, AllZeroSpan) {
  std::vector<U256> elems(5);
  ModInverseBatch(elems.data(), elems.size(), kN);
  for (const U256& e : elems) EXPECT_TRUE(e.IsZero());
}

TEST(BatchInverseTest, ThousandElementsCrossCheckedAgainstScalar) {
  Random rng(13);
  const size_t n = 1000;
  std::vector<U256> scalars(n), fields(n);
  std::vector<U256> scalars_in(n), fields_in(n);
  for (size_t i = 0; i < n; ++i) {
    scalars[i] = scalars_in[i] = RandomScalar(&rng, kN);
    fields[i] = fields_in[i] = RandomScalar(&rng, kP);
  }
  ModInverseBatch(scalars.data(), n, kN);
  secp256k1::FeInvBatch(fields.data(), n);
  for (size_t i = 0; i < n; ++i) {
    ASSERT_EQ(scalars[i], ModInverse(scalars_in[i], kN)) << "index " << i;
    ASSERT_EQ(fields[i], secp256k1::FeInv(fields_in[i])) << "index " << i;
  }
}

// ---------------------------------------------------------------------------
// Fast scalar-lane arithmetic: Sqr, NMulMod, NInvBatch
// ---------------------------------------------------------------------------

TEST(ScalarLaneTest, SqrMatchesMulOnRandomAndEdgeValues) {
  Random rng(43);
  std::vector<U256> cases = {U256(), U256(1), U256(0xffffffffffffffffULL),
                             kN, kP,
                             U256(~0ULL, ~0ULL, ~0ULL, ~0ULL)};
  for (int i = 0; i < 256; ++i) {
    Bytes raw = rng.NextBytes(32);
    cases.push_back(U256::FromBigEndian(raw.data()));
  }
  for (const U256& a : cases) {
    U256 mlo, mhi, slo, shi;
    Mul(a, a, &mlo, &mhi);
    Sqr(a, &slo, &shi);
    ASSERT_EQ(slo, mlo);
    ASSERT_EQ(shi, mhi);
  }
}

TEST(ScalarLaneTest, NMulModMatchesGenericMulMod) {
  Random rng(47);
  for (int i = 0; i < 512; ++i) {
    Bytes ra = rng.NextBytes(32);
    Bytes rb = rng.NextBytes(32);
    // Unreduced inputs (any 256-bit value) must still reduce correctly.
    U256 a = U256::FromBigEndian(ra.data());
    U256 b = U256::FromBigEndian(rb.data());
    ASSERT_EQ(secp256k1::NMulMod(a, b), MulMod(a, b, kN));
  }
  // n-1 squared and values straddling n.
  U256 nm1;
  Sub(kN, U256(1), &nm1);
  EXPECT_EQ(secp256k1::NMulMod(nm1, nm1), MulMod(nm1, nm1, kN));
  EXPECT_EQ(secp256k1::NMulMod(kN, nm1), MulMod(kN, nm1, kN));
  EXPECT_EQ(secp256k1::NMulMod(U256(), nm1), U256());
}

TEST(ScalarLaneTest, NInvBatchMatchesScalarWithZeroIsolation) {
  Random rng(53);
  const size_t n = 257;
  std::vector<U256> elems(n), in(n);
  for (size_t i = 0; i < n; ++i) elems[i] = in[i] = RandomScalar(&rng, kN);
  elems[0] = in[0] = U256();
  elems[100] = in[100] = U256();
  secp256k1::NInvBatch(elems.data(), n);
  for (size_t i = 0; i < n; ++i) {
    if (in[i].IsZero()) {
      ASSERT_TRUE(elems[i].IsZero()) << "index " << i;
    } else {
      ASSERT_EQ(elems[i], ModInverse(in[i], kN)) << "index " << i;
    }
  }
}

// ---------------------------------------------------------------------------
// GLV endomorphism decomposition
// ---------------------------------------------------------------------------

TEST(GlvSplitTest, RecombinesToOriginalScalar) {
  // lambda must match SplitScalar's internal constant; recombination
  // k1 + k2·λ ≡ k (mod n) proves both the decomposition identity and the
  // sign folding.
  const U256 lambda{0xdf02967c1b23bd72ULL, 0x122e22ea20816678ULL,
                    0xa5261c028812645aULL, 0x5363ad4cc05c30e0ULL};
  Random rng(59);
  std::vector<U256> cases = {U256(), U256(1), U256(2)};
  U256 nm1;
  Sub(kN, U256(1), &nm1);
  cases.push_back(nm1);
  for (int i = 0; i < 128; ++i) cases.push_back(RandomScalar(&rng, kN));
  for (const U256& k : cases) {
    U256 k1, k2;
    bool neg1 = false, neg2 = false;
    secp256k1::SplitScalar(k, &k1, &neg1, &k2, &neg2);
    // Components must be short enough to halve the ladder: < 2^130.
    ASSERT_EQ(k1.limb[3], 0u);
    ASSERT_EQ(k2.limb[3], 0u);
    ASSERT_LE(k1.limb[2], 3u);
    ASSERT_LE(k2.limb[2], 3u);
    U256 t1 = neg1 ? SubMod(U256(), k1, kN) : k1;
    U256 t2 = MulMod(neg2 ? SubMod(U256(), k2, kN) : k2, lambda, kN);
    ASSERT_EQ(AddMod(t1, t2, kN), Compare(k, kN) >= 0 ? SubMod(k, kN, kN) : k)
        << "k1.neg=" << neg1 << " k2.neg=" << neg2;
  }
}

TEST(GlvSplitTest, EndomorphismActsAsLambdaOnCurve) {
  // λ·P computed by generic scalar multiplication must equal (β·x, y).
  const U256 lambda{0xdf02967c1b23bd72ULL, 0x122e22ea20816678ULL,
                    0xa5261c028812645aULL, 0x5363ad4cc05c30e0ULL};
  const U256 beta{0xc1396c28719501eeULL, 0x9cf0497512f58995ULL,
                  0x6e64479eac3434e9ULL, 0x7ae96a2b657c0710ULL};
  Random rng(61);
  for (int i = 0; i < 8; ++i) {
    KeyPair kp = KeyPair::Generate(&rng);
    secp256k1::AffinePoint p = kp.public_key().point();
    secp256k1::AffinePoint lp = secp256k1::ScalarMul(lambda, p).ToAffine();
    EXPECT_EQ(lp.x, secp256k1::FeMul(beta, p.x));
    EXPECT_EQ(lp.y, p.y);
    // The context's λQ table is exactly the endomorphism image.
    secp256k1::VerifyContext ctx = secp256k1::VerifyContext::For(p);
    for (int j = 0; j < 4; ++j) {
      EXPECT_EQ(ctx.lam_odd[j].x, secp256k1::FeMul(beta, ctx.q_odd[j].x));
      EXPECT_EQ(ctx.lam_odd[j].y, ctx.q_odd[j].y);
      EXPECT_TRUE(ctx.lam_odd[j].IsOnCurve());
    }
  }
}

// ---------------------------------------------------------------------------
// wNAF Strauss–Shamir ladder vs the reference interleaved ladder
// ---------------------------------------------------------------------------

TEST(WNafLadderTest, MatchesInterleavedOnRandomScalars) {
  Random rng(17);
  KeyPair kp = KeyPair::Generate(&rng);
  const secp256k1::AffinePoint q = kp.public_key().point();
  const secp256k1::VerifyContext ctx = secp256k1::VerifyContext::For(q);
  for (int iter = 0; iter < 32; ++iter) {
    U256 k1 = RandomScalar(&rng, kN);
    U256 k2 = RandomScalar(&rng, kN);
    secp256k1::AffinePoint ref =
        secp256k1::DoubleScalarMulInterleaved(k1, k2, q).ToAffine();
    EXPECT_EQ(secp256k1::DoubleScalarMul(k1, k2, q).ToAffine(), ref);
    EXPECT_EQ(secp256k1::DoubleScalarMul(k1, k2, ctx).ToAffine(), ref);
  }
}

TEST(WNafLadderTest, EdgeScalars) {
  Random rng(19);
  KeyPair kp = KeyPair::Generate(&rng);
  const secp256k1::AffinePoint q = kp.public_key().point();
  U256 n_minus_1;
  Sub(kN, U256(1), &n_minus_1);
  const U256 cases[] = {U256(), U256(1), U256(2), U256(7), n_minus_1};
  for (const U256& k1 : cases) {
    for (const U256& k2 : cases) {
      secp256k1::AffinePoint ref =
          secp256k1::DoubleScalarMulInterleaved(k1, k2, q).ToAffine();
      EXPECT_EQ(secp256k1::DoubleScalarMul(k1, k2, q).ToAffine(), ref);
    }
  }
}

TEST(WNafLadderTest, ForBatchMatchesFor) {
  Random rng(23);
  const size_t n = 6;
  std::vector<secp256k1::AffinePoint> qs(n);
  for (size_t i = 0; i < n; ++i) {
    qs[i] = KeyPair::Generate(&rng).public_key().point();
  }
  std::vector<secp256k1::VerifyContext> batch(n);
  secp256k1::VerifyContext::ForBatch(qs.data(), n, batch.data());
  for (size_t i = 0; i < n; ++i) {
    secp256k1::VerifyContext single = secp256k1::VerifyContext::For(qs[i]);
    for (int t = 0; t < 4; ++t) {
      EXPECT_EQ(batch[i].q_odd[t], single.q_odd[t]) << i << "/" << t;
      EXPECT_TRUE(batch[i].q_odd[t].IsOnCurve()) << i << "/" << t;
    }
    EXPECT_EQ(batch[i].g_plus_q, single.g_plus_q) << i;
  }
}

TEST(WNafLadderTest, BatchToAffineMatchesToAffine) {
  Random rng(29);
  std::vector<secp256k1::JacobianPoint> pts;
  for (int i = 0; i < 8; ++i) {
    U256 k = RandomScalar(&rng, kN);
    pts.push_back(secp256k1::ScalarMulBase(k));
  }
  pts.push_back(secp256k1::JacobianPoint());  // infinity mid-batch
  std::vector<secp256k1::AffinePoint> affine(pts.size());
  secp256k1::BatchToAffine(pts.data(), pts.size(), affine.data());
  for (size_t i = 0; i < pts.size(); ++i) {
    EXPECT_EQ(affine[i], pts[i].ToAffine()) << "index " << i;
  }
}

// ---------------------------------------------------------------------------
// VerifyBatch: bit-identical accept/reject vs one-by-one VerifySignature
// ---------------------------------------------------------------------------

struct SignedMessage {
  PublicKey key;
  Digest message;
  Signature sig;
};

SignedMessage MakeSigned(Random* rng, const KeyPair& kp, int salt) {
  SignedMessage sm;
  sm.key = kp.public_key();
  sm.message = Sha256::Hash(std::string("msg-") + std::to_string(salt) +
                            std::to_string(rng->Next()));
  sm.sig = kp.Sign(sm.message);
  return sm;
}

TEST(VerifyBatchTest, MixedChunkMatchesScalarVerification) {
  Random rng(31);
  KeyPair alice = KeyPair::Generate(&rng);
  KeyPair bob = KeyPair::Generate(&rng);

  std::vector<SignedMessage> sms;
  // [0] valid.
  sms.push_back(MakeSigned(&rng, alice, 0));
  // [1] corrupted r.
  sms.push_back(MakeSigned(&rng, alice, 1));
  sms[1].sig.r = AddMod(sms[1].sig.r, U256(1), kN);
  // [2] corrupted s.
  sms.push_back(MakeSigned(&rng, alice, 2));
  sms[2].sig.s = AddMod(sms[2].sig.s, U256(1), kN);
  // [3] high-s variant (n - s): valid ECDSA, accepted by the scalar path.
  sms.push_back(MakeSigned(&rng, alice, 3));
  Sub(kN, sms[3].sig.s, &sms[3].sig.s);
  // [4] wrong key.
  sms.push_back(MakeSigned(&rng, alice, 4));
  sms[4].key = bob.public_key();
  // [5] zero r (malformed).
  sms.push_back(MakeSigned(&rng, alice, 5));
  sms[5].sig.r = U256();
  // [6] zero s (malformed, must be excluded from the shared inversion).
  sms.push_back(MakeSigned(&rng, alice, 6));
  sms[6].sig.s = U256();
  // [7] s >= n (malformed).
  sms.push_back(MakeSigned(&rng, alice, 7));
  sms[7].sig.s = kN;
  // [8] another valid one at the tail, from a different signer.
  sms.push_back(MakeSigned(&rng, bob, 8));

  const secp256k1::VerifyContext alice_ctx =
      secp256k1::VerifyContext::For(alice.public_key().point());

  std::vector<VerifyJob> jobs(sms.size());
  for (size_t i = 0; i < sms.size(); ++i) {
    jobs[i].key = &sms[i].key;
    jobs[i].message = &sms[i].message;
    jobs[i].sig = &sms[i].sig;
    // Mix cached and uncached contexts inside one chunk.
    if (sms[i].key == alice.public_key()) jobs[i].ctx = &alice_ctx;
  }
  std::vector<uint8_t> batch = VerifyBatch(jobs);

  ASSERT_EQ(batch.size(), sms.size());
  for (size_t i = 0; i < sms.size(); ++i) {
    bool scalar = VerifySignature(sms[i].key, sms[i].message, sms[i].sig);
    EXPECT_EQ(batch[i] != 0, scalar) << "index " << i;
  }
  // Spot-check the expected verdicts so the equivalence test cannot pass
  // vacuously.
  EXPECT_TRUE(batch[0]);
  EXPECT_FALSE(batch[1]);
  EXPECT_FALSE(batch[2]);
  EXPECT_TRUE(batch[3]);  // high-s accepted, same as scalar path
  EXPECT_FALSE(batch[4]);
  EXPECT_FALSE(batch[5]);
  EXPECT_FALSE(batch[6]);
  EXPECT_FALSE(batch[7]);
  EXPECT_TRUE(batch[8]);
}

TEST(VerifyBatchTest, EmptyAndSingle) {
  EXPECT_TRUE(VerifyBatch({}).empty());

  Random rng(37);
  KeyPair kp = KeyPair::Generate(&rng);
  SignedMessage sm = MakeSigned(&rng, kp, 0);
  VerifyJob job;
  job.key = &sm.key;
  job.message = &sm.message;
  job.sig = &sm.sig;
  std::vector<uint8_t> out = VerifyBatch(std::span<const VerifyJob>(&job, 1));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_TRUE(out[0]);
}

TEST(VerifyBatchTest, LargeChunkAgainstScalar) {
  Random rng(41);
  std::vector<KeyPair> keys;
  for (int i = 0; i < 4; ++i) keys.push_back(KeyPair::Generate(&rng));
  std::vector<SignedMessage> sms;
  for (int i = 0; i < 96; ++i) {
    sms.push_back(MakeSigned(&rng, keys[i % keys.size()], i));
    if (i % 7 == 3) sms.back().sig.s = AddMod(sms.back().sig.s, U256(1), kN);
    if (i % 11 == 5) sms.back().message = Sha256::Hash(std::string("other"));
  }
  std::vector<VerifyJob> jobs(sms.size());
  for (size_t i = 0; i < sms.size(); ++i) {
    jobs[i].key = &sms[i].key;
    jobs[i].message = &sms[i].message;
    jobs[i].sig = &sms[i].sig;
  }
  std::vector<uint8_t> batch = VerifyBatch(jobs);
  for (size_t i = 0; i < sms.size(); ++i) {
    EXPECT_EQ(batch[i] != 0,
              VerifySignature(sms[i].key, sms[i].message, sms[i].sig))
        << "index " << i;
  }
}

// ---------------------------------------------------------------------------
// Ledger::PrevalidateBatch and the pipelined append on top of VerifyBatch
// ---------------------------------------------------------------------------

struct LedgerFixture {
  SimulatedClock clock{0};
  CertificateAuthority ca{KeyPair::FromSeedString("bv-ca")};
  MemberRegistry registry{&ca};
  KeyPair lsp{KeyPair::FromSeedString("bv-lsp")};
  KeyPair user{KeyPair::FromSeedString("bv-user")};
  KeyPair stranger{KeyPair::FromSeedString("bv-stranger")};
  LedgerOptions options;

  LedgerFixture() {
    registry.Register(ca.Certify("lsp", lsp.public_key(), Role::kLsp));
    registry.Register(ca.Certify("user", user.public_key(), Role::kUser));
  }

  ClientTransaction MakeTx(uint64_t i, const KeyPair& signer) {
    ClientTransaction tx;
    tx.ledger_uri = "lg://batch-verify";
    tx.clues = {"clue-" + std::to_string(i % 8)};
    tx.payload = Bytes(64, static_cast<uint8_t>(i));
    tx.nonce = i;
    tx.Sign(signer);
    return tx;
  }
};

TEST(PrevalidateBatchTest, MatchesScalarPrevalidateWithFailureIsolation) {
  LedgerFixture fx;
  Ledger ledger("lg://batch-verify", fx.options, &fx.clock, fx.lsp,
                &fx.registry);

  std::vector<ClientTransaction> txs;
  for (uint64_t i = 0; i < 20; ++i) txs.push_back(fx.MakeTx(i, fx.user));
  txs[3].payload.push_back(0xAA);   // breaks π_c (payload signed earlier)
  txs[7] = fx.MakeTx(7, fx.stranger);  // valid signature, unregistered
  txs[11].ledger_uri = "lg://other";   // wrong ledger
  ClientTransaction bad_sig = fx.MakeTx(12, fx.user);
  bad_sig.client_sig.s = U256();       // malformed signature
  txs[12] = bad_sig;

  std::vector<const ClientTransaction*> ptrs(txs.size());
  for (size_t i = 0; i < txs.size(); ++i) ptrs[i] = &txs[i];
  std::vector<Ledger::PrevalidatedTx> outs(txs.size());
  std::vector<Status> statuses(txs.size());
  ledger.PrevalidateBatch(ptrs, outs.data(), statuses.data());

  for (size_t i = 0; i < txs.size(); ++i) {
    Ledger::PrevalidatedTx scalar_out;
    Status scalar = ledger.Prevalidate(txs[i], &scalar_out);
    EXPECT_EQ(statuses[i].code(), scalar.code()) << "index " << i;
    EXPECT_EQ(statuses[i].message(), scalar.message()) << "index " << i;
    if (scalar.ok()) {
      EXPECT_EQ(outs[i].journal.request_hash, scalar_out.journal.request_hash);
      EXPECT_EQ(outs[i].journal.payload_digest,
                scalar_out.journal.payload_digest);
    }
  }
  EXPECT_TRUE(statuses[0].ok());
  EXPECT_TRUE(statuses[3].IsVerificationFailed());
  EXPECT_TRUE(statuses[7].IsPermissionDenied());
  EXPECT_TRUE(statuses[11].IsInvalidArgument());
  EXPECT_TRUE(statuses[12].IsVerificationFailed());
}

TEST(PrevalidateBatchTest, PipelinedAppendBatchIsolatesInvalidSignatures) {
  LedgerFixture fx;
  ShardedLedgerGroup group("lg://batch-verify", 2, fx.options, &fx.clock,
                           fx.lsp, &fx.registry);

  std::vector<ClientTransaction> txs;
  for (uint64_t i = 0; i < 200; ++i) txs.push_back(fx.MakeTx(i, fx.user));
  // Poison a few spread across prevalidation chunks.
  for (uint64_t i : {5ul, 64ul, 130ul, 199ul}) {
    txs[i].payload.push_back(0xFF);
  }

  std::vector<ShardedLedgerGroup::Location> locations;
  std::vector<Status> statuses;
  Status overall = group.AppendBatch(txs, &locations, &statuses);
  group.StopParallelAppend();
  EXPECT_FALSE(overall.ok());

  size_t committed = 0;
  for (size_t i = 0; i < txs.size(); ++i) {
    bool poisoned = i == 5 || i == 64 || i == 130 || i == 199;
    EXPECT_EQ(statuses[i].ok(), !poisoned) << "index " << i;
    if (statuses[i].ok()) ++committed;
  }
  // 196 commits + 2 genesis journals; every valid tx landed despite the
  // corrupt chunk-mates.
  EXPECT_EQ(group.TotalJournals(), committed + 2);
}

}  // namespace
}  // namespace ledgerdb
