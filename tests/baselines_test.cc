#include <gtest/gtest.h>

#include "baselines/fabric_sim.h"
#include "baselines/qldb_sim.h"
#include "common/random.h"

namespace ledgerdb {
namespace {

// ---------------------------------------------------------------------------
// FabricSim
// ---------------------------------------------------------------------------

class FabricSimTest : public ::testing::Test {
 protected:
  FabricSimTest() : fabric_(FabricOptions{}) {}

  FabricSim fabric_;
};

TEST_F(FabricSimTest, InvokeAndGetState) {
  uint64_t seq;
  SimCost cost;
  ASSERT_TRUE(fabric_.Invoke("doc-1", StringToBytes("v1"), &seq, &cost).ok());
  EXPECT_EQ(seq, 0u);
  EXPECT_GT(cost.modeled, 0);
  Bytes value;
  ASSERT_TRUE(fabric_.GetState("doc-1", &value, &cost).ok());
  EXPECT_EQ(value, StringToBytes("v1"));
  EXPECT_TRUE(fabric_.GetState("missing", &value, &cost).IsNotFound());
}

TEST_F(FabricSimTest, LatestWriteWins) {
  SimCost cost;
  ASSERT_TRUE(fabric_.Invoke("k", StringToBytes("v1"), nullptr, &cost).ok());
  ASSERT_TRUE(fabric_.Invoke("k", StringToBytes("v2"), nullptr, &cost).ok());
  Bytes value;
  ASSERT_TRUE(fabric_.GetState("k", &value, &cost).ok());
  EXPECT_EQ(value, StringToBytes("v2"));
}

TEST_F(FabricSimTest, VerifyStateChecksEndorsements) {
  SimCost cost;
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(
        fabric_.Invoke("k" + std::to_string(i), StringToBytes("v"), nullptr, &cost).ok());
  }
  bool valid = false;
  ASSERT_TRUE(fabric_.VerifyState("k3", StringToBytes("v"), &valid, &cost).ok());
  EXPECT_TRUE(valid);
  ASSERT_TRUE(fabric_.VerifyState("k3", StringToBytes("forged"), &valid, &cost).ok());
  EXPECT_FALSE(valid);
}

TEST_F(FabricSimTest, VerifyKeyHistory) {
  SimCost cost;
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(fabric_.Invoke("asset", StringToBytes("v" + std::to_string(i)),
                               nullptr, &cost)
                    .ok());
  }
  bool valid = false;
  size_t versions = 0;
  // Uncommitted tail versions cannot verify yet.
  ASSERT_TRUE(fabric_.VerifyKeyHistory("asset", &valid, &versions, &cost).ok());
  EXPECT_FALSE(valid);
  fabric_.Commit();  // batch timeout cuts the partial block
  ASSERT_TRUE(fabric_.VerifyKeyHistory("asset", &valid, &versions, &cost).ok());
  EXPECT_TRUE(valid);
  EXPECT_EQ(versions, 20u);
}

TEST_F(FabricSimTest, OrderingDelayDominatesInvoke) {
  // The modeled latency reflects Fabric's consensus path, matching the
  // paper's ~1.2 s application latency scale.
  SimCost invoke_cost, query_cost;
  ASSERT_TRUE(fabric_.Invoke("k", StringToBytes("v"), nullptr, &invoke_cost).ok());
  Bytes value;
  ASSERT_TRUE(fabric_.GetState("k", &value, &query_cost).ok());
  EXPECT_GT(invoke_cost.modeled, 10 * query_cost.modeled);
}

// ---------------------------------------------------------------------------
// QldbSim
// ---------------------------------------------------------------------------

class QldbSimTest : public ::testing::Test {
 protected:
  QldbSimTest() : qldb_(QldbOptions{}), client_(KeyPair::FromSeedString("qldb-client")) {}

  QldbSim qldb_;
  KeyPair client_;
};

TEST_F(QldbSimTest, InsertRetrieveRoundTrip) {
  SimCost cost;
  ASSERT_TRUE(qldb_.Insert("doc", StringToBytes("data"), client_, &cost).ok());
  Bytes data;
  ASSERT_TRUE(qldb_.Retrieve("doc", &data, &cost).ok());
  EXPECT_EQ(data, StringToBytes("data"));
  EXPECT_TRUE(qldb_.Retrieve("none", &data, &cost).IsNotFound());
}

TEST_F(QldbSimTest, VerifyDocument) {
  SimCost cost;
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(qldb_.Insert("d" + std::to_string(i), StringToBytes("x"),
                             client_, &cost)
                    .ok());
  }
  bool valid = false;
  ASSERT_TRUE(qldb_.VerifyDocument("d7", &valid, &cost).ok());
  EXPECT_TRUE(valid);
}

TEST_F(QldbSimTest, LineageChainVerifies) {
  SimCost cost;
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(
        qldb_.Insert("asset", StringToBytes("v" + std::to_string(i)), client_, &cost).ok());
  }
  bool valid = false;
  size_t versions = 0;
  ASSERT_TRUE(
      qldb_.VerifyLineage("asset", client_.public_key(), &valid, &versions, &cost).ok());
  EXPECT_TRUE(valid);
  EXPECT_EQ(versions, 10u);
}

TEST_F(QldbSimTest, LineageRejectsWrongSigner) {
  SimCost cost;
  ASSERT_TRUE(qldb_.Insert("asset", StringToBytes("v"), client_, &cost).ok());
  KeyPair other = KeyPair::FromSeedString("other");
  bool valid = true;
  size_t versions = 0;
  ASSERT_TRUE(
      qldb_.VerifyLineage("asset", other.public_key(), &valid, &versions, &cost).ok());
  EXPECT_FALSE(valid);
}

TEST_F(QldbSimTest, VerifyCostGrowsWithLedgerSize) {
  // The tim-model defect the paper attributes to QLDB: verification cost
  // scales with total ledger volume, not with the target document.
  SimCost small_cost;
  ASSERT_TRUE(qldb_.Insert("target", StringToBytes("v"), client_, nullptr).ok());
  bool valid;
  ASSERT_TRUE(qldb_.VerifyDocument("target", &valid, &small_cost).ok());

  for (int i = 0; i < 2000; ++i) {
    ASSERT_TRUE(qldb_.Insert("bulk" + std::to_string(i), StringToBytes("x"),
                             client_, nullptr)
                    .ok());
  }
  SimCost big_cost;
  ASSERT_TRUE(qldb_.VerifyDocument("target", &valid, &big_cost).ok());
  EXPECT_GT(big_cost.modeled, small_cost.modeled);
}

TEST_F(QldbSimTest, LineageCostLinearInVersions) {
  SimCost cost5, cost100;
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(qldb_.Insert("k100", StringToBytes("v"), client_, nullptr).ok());
    if (i < 5) {
      ASSERT_TRUE(qldb_.Insert("k5", StringToBytes("v"), client_, nullptr).ok());
    }
  }
  bool valid;
  size_t versions;
  ASSERT_TRUE(qldb_.VerifyLineage("k5", client_.public_key(), &valid, &versions, &cost5).ok());
  ASSERT_TRUE(
      qldb_.VerifyLineage("k100", client_.public_key(), &valid, &versions, &cost100).ok());
  // Roughly 20x more work for 20x the versions (Table II's shape).
  EXPECT_GT(cost100.modeled, 10 * cost5.modeled);
}

}  // namespace
}  // namespace ledgerdb
