#include <gtest/gtest.h>

#include "common/bytes.h"
#include "crypto/ecdsa.h"
#include "crypto/hash.h"
#include "crypto/secp256k1.h"
#include "crypto/u256.h"

namespace ledgerdb {
namespace {

// ---------------------------------------------------------------------------
// SHA-256 (FIPS 180-4 vectors)
// ---------------------------------------------------------------------------

TEST(Sha256Test, EmptyString) {
  EXPECT_EQ(Sha256::Hash(std::string_view("")).ToHex(),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256Test, Abc) {
  EXPECT_EQ(Sha256::Hash(std::string_view("abc")).ToHex(),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256Test, TwoBlockMessage) {
  EXPECT_EQ(
      Sha256::Hash(std::string_view(
                       "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))
          .ToHex(),
      "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256Test, MillionA) {
  Sha256 h;
  std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.Update(Slice(chunk));
  EXPECT_EQ(h.Finish().ToHex(),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256Test, IncrementalMatchesOneShot) {
  Bytes data = StringToBytes("the quick brown fox jumps over the lazy dog");
  for (size_t split = 0; split <= data.size(); ++split) {
    Sha256 h;
    h.Update(data.data(), split);
    h.Update(data.data() + split, data.size() - split);
    EXPECT_EQ(h.Finish(), Sha256::Hash(data)) << "split=" << split;
  }
}

// ---------------------------------------------------------------------------
// SHA3-256 (FIPS 202 vectors)
// ---------------------------------------------------------------------------

TEST(Sha3Test, EmptyString) {
  EXPECT_EQ(Sha3_256::Hash(std::string_view("")).ToHex(),
            "a7ffc6f8bf1ed76651c14756a061d662f580ff4de43b49fa82d80a4b80f8434a");
}

TEST(Sha3Test, Abc) {
  EXPECT_EQ(Sha3_256::Hash(std::string_view("abc")).ToHex(),
            "3a985da74fe225b2045c172d6bd390bd855f086e3e9d525b46bfe24511431532");
}

TEST(Sha3Test, LongerThanRate) {
  // 200 'a' bytes spans more than one 136-byte Keccak block.
  std::string msg(200, 'a');
  // Reference value from the Python hashlib sha3_256 implementation.
  EXPECT_EQ(Sha3_256::Hash(std::string_view(msg)).ToHex(),
            "cce34485baf2bf2aca99b94833892a4f52896d3d153f7b840cc4f9fe695f1387");
}

// ---------------------------------------------------------------------------
// HMAC-SHA256 (RFC 4231 vectors)
// ---------------------------------------------------------------------------

TEST(HmacTest, Rfc4231Case1) {
  Bytes key(20, 0x0b);
  Bytes msg = StringToBytes("Hi There");
  EXPECT_EQ(HmacSha256(Slice(key), Slice(msg)).ToHex(),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(HmacTest, Rfc4231Case2) {
  Bytes key = StringToBytes("Jefe");
  Bytes msg = StringToBytes("what do ya want for nothing?");
  EXPECT_EQ(HmacSha256(Slice(key), Slice(msg)).ToHex(),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(HmacTest, LongKeyIsHashedFirst) {
  Bytes key(131, 0xaa);
  Bytes msg = StringToBytes("Test Using Larger Than Block-Size Key - Hash Key First");
  EXPECT_EQ(HmacSha256(Slice(key), Slice(msg)).ToHex(),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

// ---------------------------------------------------------------------------
// Merkle hash domain separation
// ---------------------------------------------------------------------------

TEST(MerkleHashTest, LeafAndNodeDomainsDiffer) {
  Digest d = Sha256::Hash(std::string_view("payload"));
  EXPECT_NE(HashMerkleLeaf(d), d);
  EXPECT_NE(HashMerkleNode(d, d), HashMerkleLeaf(d));
  EXPECT_NE(HashChain(d, d), HashMerkleNode(d, d));
}

TEST(MerkleHashTest, NodeHashOrderSensitive) {
  Digest a = Sha256::Hash(std::string_view("a"));
  Digest b = Sha256::Hash(std::string_view("b"));
  EXPECT_NE(HashMerkleNode(a, b), HashMerkleNode(b, a));
}

// ---------------------------------------------------------------------------
// U256 arithmetic
// ---------------------------------------------------------------------------

TEST(U256Test, BigEndianRoundTrip) {
  Bytes raw(32);
  for (int i = 0; i < 32; ++i) raw[i] = static_cast<uint8_t>(i + 1);
  U256 v = U256::FromBigEndian(raw.data());
  EXPECT_EQ(v.ToBytes(), raw);
}

TEST(U256Test, AddSubInverse) {
  U256 a(0xffffffffffffffffULL, 2, 3, 4);
  U256 b(5, 6, 7, 8);
  U256 sum, back;
  EXPECT_EQ(Add(a, b, &sum), 0u);
  EXPECT_EQ(Sub(sum, b, &back), 0u);
  EXPECT_EQ(back, a);
}

TEST(U256Test, AddCarryPropagates) {
  U256 a(0xffffffffffffffffULL, 0xffffffffffffffffULL, 0xffffffffffffffffULL,
         0xffffffffffffffffULL);
  U256 one(1);
  U256 sum;
  EXPECT_EQ(Add(a, one, &sum), 1u);
  EXPECT_TRUE(sum.IsZero());
}

TEST(U256Test, MulSmall) {
  U256 lo, hi;
  Mul(U256(7), U256(6), &lo, &hi);
  EXPECT_EQ(lo, U256(42));
  EXPECT_TRUE(hi.IsZero());
}

TEST(U256Test, MulWide) {
  // (2^128) * (2^128) = 2^256 -> hi = 1, lo = 0.
  U256 a(0, 0, 1, 0);
  U256 lo, hi;
  Mul(a, a, &lo, &hi);
  EXPECT_TRUE(lo.IsZero());
  EXPECT_EQ(hi, U256(1));
}

TEST(U256Test, ReduceWideMatchesKnownValue) {
  // 2^256 mod n = 2^256 - n (since n has the top bit set).
  U256 lo, hi(1);
  U256 expected;
  Sub(U256(), secp256k1::kN, &expected);  // 0 - n underflows to 2^256 - n.
  EXPECT_EQ(ReduceWide(lo, hi, secp256k1::kN), expected);
}

TEST(U256Test, ModInverseRoundTrip) {
  Random rng(42);
  for (int i = 0; i < 16; ++i) {
    Bytes raw = rng.NextBytes(32);
    U256 a = U256::FromBigEndian(raw.data());
    a = ReduceWide(a, U256(), secp256k1::kN);
    if (a.IsZero()) continue;
    U256 inv = ModInverse(a, secp256k1::kN);
    EXPECT_EQ(MulMod(a, inv, secp256k1::kN), U256(1));
  }
}

TEST(U256Test, ModInverseFieldPrime) {
  Random rng(7);
  for (int i = 0; i < 16; ++i) {
    Bytes raw = rng.NextBytes(32);
    U256 a = U256::FromBigEndian(raw.data());
    a = ReduceWide(a, U256(), secp256k1::kP);
    if (a.IsZero()) continue;
    U256 inv = ModInverse(a, secp256k1::kP);
    EXPECT_EQ(MulMod(a, inv, secp256k1::kP), U256(1));
  }
}

// ---------------------------------------------------------------------------
// secp256k1 group operations
// ---------------------------------------------------------------------------

TEST(Secp256k1Test, GeneratorOnCurve) {
  EXPECT_TRUE(secp256k1::AffinePoint::Generator().IsOnCurve());
}

TEST(Secp256k1Test, TwoGKnownValue) {
  auto g = secp256k1::AffinePoint::Generator();
  auto two_g =
      secp256k1::Double(secp256k1::JacobianPoint::FromAffine(g)).ToAffine();
  EXPECT_TRUE(two_g.IsOnCurve());
  EXPECT_EQ(ToHex(two_g.x.ToBytes()),
            "c6047f9441ed7d6d3045406e95c07cd85c778e4b8cef3ca7abac09b95c709ee5");
  EXPECT_EQ(ToHex(two_g.y.ToBytes()),
            "1ae168fea63dc339a3c58419466ceaeef7f632653266d0e1236431a950cfe52a");
}

TEST(Secp256k1Test, AddMatchesDouble) {
  auto g = secp256k1::AffinePoint::Generator();
  auto jg = secp256k1::JacobianPoint::FromAffine(g);
  auto via_add = secp256k1::Add(jg, jg).ToAffine();
  auto via_double = secp256k1::Double(jg).ToAffine();
  EXPECT_EQ(via_add, via_double);
}

TEST(Secp256k1Test, ScalarMulByOrderIsInfinity) {
  auto g = secp256k1::AffinePoint::Generator();
  auto result = secp256k1::ScalarMul(secp256k1::kN, g);
  EXPECT_TRUE(result.infinity);
}

TEST(Secp256k1Test, ScalarMulDistributes) {
  // (a+b)G == aG + bG for random scalars.
  Random rng(99);
  for (int i = 0; i < 4; ++i) {
    Bytes ra = rng.NextBytes(32), rb = rng.NextBytes(32);
    U256 a = ReduceWide(U256::FromBigEndian(ra.data()), U256(), secp256k1::kN);
    U256 b = ReduceWide(U256::FromBigEndian(rb.data()), U256(), secp256k1::kN);
    U256 ab = AddMod(a, b, secp256k1::kN);
    auto g = secp256k1::AffinePoint::Generator();
    auto lhs = secp256k1::ScalarMul(ab, g).ToAffine();
    auto rhs = secp256k1::Add(secp256k1::ScalarMul(a, g),
                              secp256k1::ScalarMul(b, g))
                   .ToAffine();
    EXPECT_EQ(lhs, rhs);
  }
}

TEST(Secp256k1Test, ScalarMulBaseMatchesGenericLadder) {
  Random rng(314);
  auto g = secp256k1::AffinePoint::Generator();
  // Edge scalars plus random ones.
  std::vector<U256> scalars = {U256(1), U256(2), U256(15), U256(16),
                               Shr1(secp256k1::kN)};
  for (int i = 0; i < 8; ++i) {
    Bytes raw = rng.NextBytes(32);
    scalars.push_back(
        ReduceWide(U256::FromBigEndian(raw.data()), U256(), secp256k1::kN));
  }
  for (const U256& k : scalars) {
    auto expect = secp256k1::ScalarMul(k, g).ToAffine();
    auto fast = secp256k1::ScalarMulBase(k).ToAffine();
    EXPECT_EQ(fast, expect);
  }
  EXPECT_TRUE(secp256k1::ScalarMulBase(U256()).infinity);
}

TEST(Secp256k1Test, DoubleScalarMulMatchesSeparate) {
  Random rng(123);
  KeyPair kp = KeyPair::Generate(&rng);
  Bytes r1 = rng.NextBytes(32), r2 = rng.NextBytes(32);
  U256 k1 = ReduceWide(U256::FromBigEndian(r1.data()), U256(), secp256k1::kN);
  U256 k2 = ReduceWide(U256::FromBigEndian(r2.data()), U256(), secp256k1::kN);
  auto g = secp256k1::AffinePoint::Generator();
  auto combined =
      secp256k1::DoubleScalarMul(k1, k2, kp.public_key().point()).ToAffine();
  auto separate = secp256k1::Add(secp256k1::ScalarMul(k1, g),
                                 secp256k1::ScalarMul(k2, kp.public_key().point()))
                      .ToAffine();
  EXPECT_EQ(combined, separate);
}

// ---------------------------------------------------------------------------
// ECDSA
// ---------------------------------------------------------------------------

TEST(EcdsaTest, SignVerifyRoundTrip) {
  Random rng(1);
  KeyPair kp = KeyPair::Generate(&rng);
  Digest msg = Sha256::Hash(std::string_view("hello ledger"));
  Signature sig = kp.Sign(msg);
  EXPECT_TRUE(VerifySignature(kp.public_key(), msg, sig));
}

TEST(EcdsaTest, RejectsWrongMessage) {
  Random rng(2);
  KeyPair kp = KeyPair::Generate(&rng);
  Signature sig = kp.Sign(Sha256::Hash(std::string_view("msg-a")));
  EXPECT_FALSE(VerifySignature(kp.public_key(), Sha256::Hash(std::string_view("msg-b")), sig));
}

TEST(EcdsaTest, RejectsWrongKey) {
  Random rng(3);
  KeyPair kp1 = KeyPair::Generate(&rng);
  KeyPair kp2 = KeyPair::Generate(&rng);
  Digest msg = Sha256::Hash(std::string_view("msg"));
  Signature sig = kp1.Sign(msg);
  EXPECT_FALSE(VerifySignature(kp2.public_key(), msg, sig));
}

TEST(EcdsaTest, RejectsTamperedSignature) {
  Random rng(4);
  KeyPair kp = KeyPair::Generate(&rng);
  Digest msg = Sha256::Hash(std::string_view("msg"));
  Signature sig = kp.Sign(msg);
  Signature bad = sig;
  bad.s.limb[0] ^= 1;
  EXPECT_FALSE(VerifySignature(kp.public_key(), msg, bad));
  bad = sig;
  bad.r.limb[2] ^= 0x10;
  EXPECT_FALSE(VerifySignature(kp.public_key(), msg, bad));
}

TEST(EcdsaTest, RejectsZeroSignatureComponents) {
  Random rng(5);
  KeyPair kp = KeyPair::Generate(&rng);
  Digest msg = Sha256::Hash(std::string_view("msg"));
  Signature sig = kp.Sign(msg);
  Signature bad = sig;
  bad.r = U256();
  EXPECT_FALSE(VerifySignature(kp.public_key(), msg, bad));
  bad = sig;
  bad.s = U256();
  EXPECT_FALSE(VerifySignature(kp.public_key(), msg, bad));
}

TEST(EcdsaTest, DeterministicSignatures) {
  KeyPair kp = KeyPair::FromSeedString("alice");
  Digest msg = Sha256::Hash(std::string_view("determinism"));
  Signature s1 = kp.Sign(msg);
  Signature s2 = kp.Sign(msg);
  EXPECT_EQ(s1.Serialize(), s2.Serialize());
}

TEST(EcdsaTest, LowSNormalization) {
  // s must always be <= n/2 after normalization.
  U256 half = Shr1(secp256k1::kN);
  Random rng(6);
  KeyPair kp = KeyPair::Generate(&rng);
  for (int i = 0; i < 8; ++i) {
    Digest msg = Sha256::Hash(rng.NextBytes(16));
    Signature sig = kp.Sign(msg);
    EXPECT_LE(Compare(sig.s, half), 0);
    EXPECT_TRUE(VerifySignature(kp.public_key(), msg, sig));
  }
}

TEST(EcdsaTest, SerializationRoundTrip) {
  KeyPair kp = KeyPair::FromSeedString("bob");
  Digest msg = Sha256::Hash(std::string_view("serialize"));
  Signature sig = kp.Sign(msg);

  Bytes key_raw = kp.public_key().Serialize();
  PublicKey key2;
  ASSERT_TRUE(PublicKey::Deserialize(key_raw, &key2));
  EXPECT_EQ(key2, kp.public_key());

  Bytes sig_raw = sig.Serialize();
  Signature sig2;
  ASSERT_TRUE(Signature::Deserialize(sig_raw, &sig2));
  EXPECT_TRUE(VerifySignature(key2, msg, sig2));
}

TEST(EcdsaTest, DeserializeRejectsOffCurveKey) {
  Bytes raw(64, 0x01);
  PublicKey key;
  EXPECT_FALSE(PublicKey::Deserialize(raw, &key));
}

TEST(EcdsaTest, ManyKeysRoundTrip) {
  Random rng(77);
  for (int i = 0; i < 8; ++i) {
    KeyPair kp = KeyPair::Generate(&rng);
    ASSERT_TRUE(kp.valid());
    EXPECT_TRUE(kp.public_key().point().IsOnCurve());
    Digest msg = Sha256::Hash(rng.NextBytes(64));
    EXPECT_TRUE(VerifySignature(kp.public_key(), msg, kp.Sign(msg)));
  }
}

}  // namespace
}  // namespace ledgerdb
