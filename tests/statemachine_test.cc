#include <gtest/gtest.h>

#include <map>

#include "audit/dasein_auditor.h"
#include "ledger/ledger.h"

namespace ledgerdb {
namespace {

/// Randomized state-machine test: applies a random operation sequence
/// (appends with clues, block seals, occults, purges, time anchors,
/// erasure reorganization, and mid-sequence crash/recovery) to a
/// persistent ledger, mirroring every effect in a plain reference model.
/// After every operation a set of invariants must hold; after the
/// sequence, the full Dasein audit must pass.
class StateMachineTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  struct ModelJournal {
    std::string payload;
    std::vector<std::string> clues;
    bool occulted = false;
    bool internal = false;  // LSP-authored (genesis/time/purge/...)
  };

  StateMachineTest()
      : rng_(GetParam()),
        clock_(0),
        ca_(KeyPair::FromSeedString("sm-ca")),
        registry_(&ca_),
        lsp_(KeyPair::FromSeedString("sm-lsp")),
        user_(KeyPair::FromSeedString("sm-user")),
        dba_(KeyPair::FromSeedString("sm-dba")),
        regulator_(KeyPair::FromSeedString("sm-reg")),
        tsa_(KeyPair::FromSeedString("sm-tsa"), &clock_) {
    registry_.Register(ca_.Certify("lsp", lsp_.public_key(), Role::kLsp));
    registry_.Register(ca_.Certify("user", user_.public_key(), Role::kUser));
    registry_.Register(ca_.Certify("dba", dba_.public_key(), Role::kDba));
    registry_.Register(ca_.Certify("reg", regulator_.public_key(), Role::kRegulator));
    options_.fractal_height = 3;
    options_.block_capacity = 5;
    ledger_ = std::make_unique<Ledger>("lg://sm", options_, &clock_, lsp_,
                                       &registry_, Storage());
    ledger_->AttachDirectTsa(&tsa_);
    model_[0] = {"", {}, false, true};  // genesis
  }

  LedgerStorage Storage() { return {&journal_stream_, &block_stream_}; }

  void OpAppend() {
    ClientTransaction tx;
    tx.ledger_uri = "lg://sm";
    std::vector<std::string> clues;
    if (rng_.Uniform(2) == 0) {
      clues.push_back("clue-" + std::to_string(rng_.Uniform(5)));
    }
    tx.clues = clues;
    tx.payload = StringToBytes("payload-" + std::to_string(op_counter_));
    tx.nonce = op_counter_;
    tx.client_ts = clock_.Now();
    tx.Sign(user_);
    uint64_t jsn = 0;
    ASSERT_TRUE(ledger_->Append(tx, &jsn).ok());
    model_[jsn] = {"payload-" + std::to_string(op_counter_), clues, false, false};
    for (const std::string& clue : clues) clue_model_[clue].push_back(jsn);
  }

  void OpOccult() {
    // Pick a random live normal journal.
    std::vector<uint64_t> candidates;
    for (const auto& [jsn, mj] : model_) {
      if (!mj.internal && !mj.occulted && jsn >= purged_boundary_) {
        candidates.push_back(jsn);
      }
    }
    if (candidates.empty()) return;
    uint64_t target = candidates[rng_.Uniform(candidates.size())];
    Digest req = Ledger::OccultRequestHash("lg://sm", target);
    std::vector<Endorsement> sigs = {{dba_.public_key(), dba_.Sign(req)},
                                     {regulator_.public_key(), regulator_.Sign(req)}};
    uint64_t oj = 0;
    ASSERT_TRUE(ledger_->Occult(target, sigs, &oj).ok());
    model_[target].occulted = true;
    model_[oj] = {"", {}, false, true};
  }

  void OpPurge() {
    uint64_t limit = ledger_->NumJournals();
    if (limit <= purged_boundary_ + 3) return;
    uint64_t point = purged_boundary_ + 1 + rng_.Uniform(limit - purged_boundary_ - 1);
    Digest req = Ledger::PurgeRequestHash("lg://sm", point);
    std::vector<Endorsement> sigs = {{dba_.public_key(), dba_.Sign(req)},
                                     {user_.public_key(), user_.Sign(req)}};
    Status s = ledger_->Purge(point, sigs, {}, nullptr);
    ASSERT_TRUE(s.ok()) << s.ToString();
    for (uint64_t jsn = purged_boundary_; jsn < point; ++jsn) model_.erase(jsn);
    purged_boundary_ = point;
    // The purge appended a pseudo-genesis + purge journal.
    model_[ledger_->NumJournals() - 2] = {"", {}, false, true};
    model_[ledger_->NumJournals() - 1] = {"", {}, false, true};
  }

  void OpAnchor() {
    uint64_t tj = 0;
    ASSERT_TRUE(ledger_->AnchorTime(&tj).ok());
    model_[tj] = {"", {}, false, true};
  }

  void OpRecover() {
    ledger_->SealBlock();
    Digest fam_root = ledger_->FamRoot();
    Digest clue_root = ledger_->ClueRoot();
    ledger_.reset();  // crash
    std::unique_ptr<Ledger> recovered;
    Status s = Ledger::Recover("lg://sm", options_, &clock_, lsp_, &registry_,
                               Storage(), &recovered);
    ASSERT_TRUE(s.ok()) << s.ToString();
    ledger_ = std::move(recovered);
    ledger_->AttachDirectTsa(&tsa_);
    EXPECT_EQ(ledger_->FamRoot(), fam_root);
    EXPECT_EQ(ledger_->ClueRoot(), clue_root);
  }

  void CheckInvariants() {
    // Model equivalence on a random sample of journals.
    for (int i = 0; i < 5; ++i) {
      if (ledger_->NumJournals() == 0) break;
      uint64_t jsn = rng_.Uniform(ledger_->NumJournals());
      Journal journal;
      Status s = ledger_->GetJournal(jsn, &journal);
      auto it = model_.find(jsn);
      if (it == model_.end()) {
        EXPECT_TRUE(s.IsNotFound()) << "jsn " << jsn << " should be purged";
        continue;
      }
      ASSERT_TRUE(s.ok()) << "jsn " << jsn << ": " << s.ToString();
      if (!it->second.internal) {
        EXPECT_EQ(journal.occulted, it->second.occulted) << jsn;
        if (!it->second.occulted) {
          EXPECT_EQ(journal.payload, StringToBytes(it->second.payload)) << jsn;
        } else {
          EXPECT_TRUE(journal.payload.empty()) << jsn;
        }
      }
      // Every resolvable journal proves against the live root.
      FamProof proof;
      ASSERT_TRUE(ledger_->GetProof(jsn, &proof).ok());
      EXPECT_TRUE(Ledger::VerifyJournalProof(journal, proof, ledger_->FamRoot()))
          << jsn;
    }
    // Clue postings match the model.
    for (const auto& [clue, jsns] : clue_model_) {
      std::vector<uint64_t> listed;
      ASSERT_TRUE(ledger_->ListTx(clue, &listed).ok()) << clue;
      EXPECT_EQ(listed, jsns) << clue;
    }
  }

  Random rng_;
  SimulatedClock clock_;
  CertificateAuthority ca_;
  MemberRegistry registry_;
  KeyPair lsp_, user_, dba_, regulator_;
  TsaService tsa_;
  LedgerOptions options_;
  MemoryStreamStore journal_stream_, block_stream_;
  std::unique_ptr<Ledger> ledger_;
  std::map<uint64_t, ModelJournal> model_;
  std::map<std::string, std::vector<uint64_t>> clue_model_;
  uint64_t purged_boundary_ = 0;
  uint64_t op_counter_ = 0;
};

TEST_P(StateMachineTest, RandomOperationSequenceHoldsInvariants) {
  const int kOps = 120;
  for (int op = 0; op < kOps; ++op) {
    ++op_counter_;
    clock_.Advance(rng_.Range(1, 2000) * kMicrosPerMilli);
    switch (rng_.Uniform(12)) {
      case 0:
        OpOccult();
        break;
      case 1:
        if (op > 20) OpPurge();
        break;
      case 2:
        OpAnchor();
        break;
      case 3:
        ledger_->SealBlock();
        break;
      case 4:
        ledger_->ReorganizeOcculted();
        break;
      case 5:
        if (op > 10) OpRecover();
        break;
      default:
        OpAppend();
        break;
    }
    if (op % 10 == 0) CheckInvariants();
  }
  CheckInvariants();

  // The full Dasein audit passes at the end of every random history.
  ledger_->ReorganizeOcculted();
  Receipt receipt;
  ASSERT_TRUE(ledger_->GetReceipt(ledger_->NumJournals() - 1, &receipt).ok());
  DaseinAuditor::Context context;
  context.ledger = ledger_.get();
  context.members = &registry_;
  context.tsa_key = tsa_.public_key();
  AuditReport report;
  Status s = DaseinAuditor(context).Audit(receipt, {}, &report);
  ASSERT_TRUE(s.ok()) << report.failure_reason;
  EXPECT_TRUE(report.passed);
}

INSTANTIATE_TEST_SUITE_P(Seeds, StateMachineTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13));

}  // namespace
}  // namespace ledgerdb
