#include <gtest/gtest.h>

#include "common/bytes.h"
#include "common/clock.h"
#include "common/random.h"
#include "common/retry.h"
#include "common/status.h"

namespace ledgerdb {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCodesAndMessages) {
  Status s = Status::VerificationFailed("root mismatch");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsVerificationFailed());
  EXPECT_EQ(s.ToString(), "VerificationFailed: root mismatch");

  EXPECT_TRUE(Status::NotFound().IsNotFound());
  EXPECT_TRUE(Status::Corruption().IsCorruption());
  EXPECT_TRUE(Status::InvalidArgument().IsInvalidArgument());
  EXPECT_TRUE(Status::PermissionDenied().IsPermissionDenied());
  EXPECT_TRUE(Status::OutOfRange().IsOutOfRange());
  EXPECT_TRUE(Status::AlreadyExists().IsAlreadyExists());
  EXPECT_TRUE(Status::IOError().IsIOError());
  EXPECT_TRUE(Status::NotSupported().IsNotSupported());
  EXPECT_TRUE(Status::TimestampRejected().IsTimestampRejected());
}

TEST(StatusTest, ReturnIfErrorMacro) {
  auto inner = []() { return Status::NotFound("x"); };
  auto outer = [&]() -> Status {
    LEDGERDB_RETURN_IF_ERROR(inner());
    return Status::OK();
  };
  EXPECT_TRUE(outer().IsNotFound());
}

TEST(BytesTest, HexRoundTrip) {
  Bytes data = {0x00, 0x01, 0xab, 0xff};
  std::string hex = ToHex(data);
  EXPECT_EQ(hex, "0001abff");
  Bytes back;
  ASSERT_TRUE(FromHex(hex, &back));
  EXPECT_EQ(back, data);
}

TEST(BytesTest, FromHexRejectsMalformed) {
  Bytes out;
  EXPECT_FALSE(FromHex("abc", &out));   // odd length
  EXPECT_FALSE(FromHex("zz", &out));    // non-hex
  EXPECT_TRUE(FromHex("", &out));       // empty ok
  EXPECT_TRUE(out.empty());
}

TEST(BytesTest, VarintEncodersRoundTrip) {
  Bytes buf;
  PutU32(&buf, 0xdeadbeef);
  PutU64(&buf, 0x123456789abcdef0ULL);
  PutLengthPrefixed(&buf, StringToBytes("hello"));

  size_t pos = 0;
  uint32_t v32;
  uint64_t v64;
  Bytes block;
  ASSERT_TRUE(GetU32(buf, &pos, &v32));
  EXPECT_EQ(v32, 0xdeadbeefu);
  ASSERT_TRUE(GetU64(buf, &pos, &v64));
  EXPECT_EQ(v64, 0x123456789abcdef0ULL);
  ASSERT_TRUE(GetLengthPrefixed(buf, &pos, &block));
  EXPECT_EQ(block, StringToBytes("hello"));
  EXPECT_EQ(pos, buf.size());
}

TEST(BytesTest, ReadersDetectTruncation) {
  Bytes buf;
  PutU64(&buf, 7);
  buf.pop_back();
  size_t pos = 0;
  uint64_t v;
  EXPECT_FALSE(GetU64(buf, &pos, &v));

  Bytes buf2;
  PutLengthPrefixed(&buf2, StringToBytes("abcdef"));
  buf2.resize(buf2.size() - 2);
  pos = 0;
  Bytes block;
  EXPECT_FALSE(GetLengthPrefixed(buf2, &pos, &block));
}

TEST(SliceTest, EqualityAndViews) {
  Bytes data = StringToBytes("abc");
  Slice s1(data);
  Slice s2(std::string_view("abc"));
  EXPECT_EQ(s1, s2);
  EXPECT_EQ(s1.ToString(), "abc");
  EXPECT_EQ(s1.ToBytes(), data);
  EXPECT_TRUE(Slice().empty());
}

TEST(RandomTest, DeterministicForSeed) {
  Random a(1234), b(1234);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RandomTest, DifferentSeedsDiffer) {
  Random a(1), b(2);
  bool any_diff = false;
  for (int i = 0; i < 10; ++i) any_diff |= (a.Next() != b.Next());
  EXPECT_TRUE(any_diff);
}

TEST(RandomTest, RangeBounds) {
  Random rng(9);
  for (int i = 0; i < 1000; ++i) {
    uint64_t v = rng.Range(10, 20);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 20u);
  }
}

TEST(RandomTest, BytesAndStringsHaveRequestedSize) {
  Random rng(5);
  EXPECT_EQ(rng.NextBytes(0).size(), 0u);
  EXPECT_EQ(rng.NextBytes(7).size(), 7u);
  EXPECT_EQ(rng.NextBytes(64).size(), 64u);
  EXPECT_EQ(rng.NextString(33).size(), 33u);
}

TEST(ClockTest, SimulatedClockAdvances) {
  SimulatedClock clock(100);
  EXPECT_EQ(clock.Now(), 100);
  clock.Advance(50);
  EXPECT_EQ(clock.Now(), 150);
  clock.SetTime(120);  // cannot move backwards
  EXPECT_EQ(clock.Now(), 150);
  clock.SetTime(400);
  EXPECT_EQ(clock.Now(), 400);
}

TEST(ClockTest, SystemClockMonotoneNonDecreasing) {
  SystemClock clock;
  Timestamp a = clock.Now();
  Timestamp b = clock.Now();
  EXPECT_LE(a, b);
}

TEST(RetryTest, TransientStatusIsRetriable) {
  Status t = Status::TransientIO("disk hiccup");
  EXPECT_TRUE(t.IsTransientIO());
  EXPECT_TRUE(t.IsRetriable());
  EXPECT_FALSE(Status::IOError("hard failure").IsRetriable());
  EXPECT_FALSE(Status::Unavailable("shard down").IsRetriable());
  EXPECT_TRUE(Status::Unavailable("shard down").IsUnavailable());
}

TEST(RetryTest, SucceedsAfterTransientFailures) {
  RetryPolicy policy;
  policy.max_attempts = 5;
  policy.initial_backoff_us = 0;
  int calls = 0;
  Status s = RetryTransient(policy, [&] {
    ++calls;
    return calls < 3 ? Status::TransientIO("flaky") : Status::OK();
  });
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(calls, 3);
}

TEST(RetryTest, ExhaustionBecomesTerminalIOError) {
  RetryPolicy policy;
  policy.max_attempts = 4;
  policy.initial_backoff_us = 0;
  int calls = 0;
  Status s = RetryTransient(policy, [&] {
    ++calls;
    return Status::TransientIO("always flaky");
  });
  EXPECT_EQ(calls, 4);
  EXPECT_TRUE(s.IsIOError()) << s.ToString();
  EXPECT_FALSE(s.IsRetriable());  // exhausted: callers must not loop again
}

TEST(RetryTest, NonRetriableErrorPassesThroughImmediately) {
  RetryPolicy policy;
  int calls = 0;
  Status s = RetryTransient(policy, [&] {
    ++calls;
    return Status::Corruption("bad frame");
  });
  EXPECT_EQ(calls, 1);
  EXPECT_TRUE(s.IsCorruption());
}

TEST(RetryTest, UnavailableIsNotRetriable) {
  // Load-shedding must fail fast: a shed server said "go away", and
  // hammering it with retries is exactly the wrong response.
  EXPECT_FALSE(Status::Unavailable("admission queue full").IsRetriable());
  RetryPolicy policy;
  int calls = 0;
  Status s = RetryTransient(policy, [&] {
    ++calls;
    return Status::Unavailable("shed");
  });
  EXPECT_EQ(calls, 1);
  EXPECT_TRUE(s.IsUnavailable());
}

TEST(RetryTest, DecorrelatedJitterStaysInBounds) {
  // Every draw must satisfy initial <= sleep <= min(3 * prev, max), for
  // any prior sleep — the AWS "decorrelated jitter" contract.
  const uint64_t initial = 1'000;
  const uint64_t max = 64'000;
  Random rng(42);
  uint64_t prev = initial;
  for (int i = 0; i < 10'000; ++i) {
    uint64_t sleep = NextDecorrelatedBackoffUs(initial, prev, max, &rng);
    EXPECT_GE(sleep, initial);
    EXPECT_LE(sleep, max);
    uint64_t ceiling = prev >= initial ? prev * 3 : initial;
    EXPECT_LE(sleep, std::min(ceiling, max));
    prev = sleep;
  }
}

TEST(RetryTest, DecorrelatedJitterActuallySpreads) {
  // The draws must not collapse onto the doubling ladder: from the same
  // prev, different RNG states give different sleeps.
  const uint64_t initial = 1'000;
  const uint64_t max = 1'000'000;
  std::set<uint64_t> distinct;
  Random rng(7);
  for (int i = 0; i < 64; ++i) {
    distinct.insert(NextDecorrelatedBackoffUs(initial, 100'000, max, &rng));
  }
  EXPECT_GT(distinct.size(), 16u);
}

TEST(RetryTest, JitterSeedIsDeterministic) {
  // Same seed -> same sleep sequence (fault replays stay reproducible);
  // different seeds -> different sequences (no cross-client lockstep).
  auto draw_sequence = [](uint64_t seed) {
    Random rng(seed);
    std::vector<uint64_t> seq;
    uint64_t prev = 500;
    for (int i = 0; i < 16; ++i) {
      prev = NextDecorrelatedBackoffUs(500, prev, 100'000, &rng);
      seq.push_back(prev);
    }
    return seq;
  };
  EXPECT_EQ(draw_sequence(1), draw_sequence(1));
  EXPECT_NE(draw_sequence(1), draw_sequence(2));
}

TEST(RetryTest, JitteredRetryKeepsStatsAccurate) {
  RetryPolicy policy;
  policy.max_attempts = 5;
  policy.initial_backoff_us = 50;
  policy.max_backoff_us = 400;
  policy.decorrelated_jitter = true;
  policy.jitter_seed = 99;
  int calls = 0;
  RetryStats stats;
  Status s = RetryTransient(policy,
                            [&] {
                              ++calls;
                              return calls < 4 ? Status::TransientIO("flaky")
                                               : Status::OK();
                            },
                            &stats);
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(stats.attempts, 4);
  EXPECT_FALSE(stats.exhausted);
  // Three sleeps happened, each at least the initial backoff.
  EXPECT_GE(stats.backoff_us, 3u * policy.initial_backoff_us);
}

TEST(RetryTest, TotalDeadlineBoundsCumulativeBackoff) {
  // With a total deadline smaller than the next sleep, the retry loop
  // must stop early (deadline-aware backoff) instead of sleeping past
  // the caller's budget. The op always fails, so this exhausts.
  RetryPolicy policy;
  policy.max_attempts = 50;
  policy.initial_backoff_us = 2'000;
  policy.max_backoff_us = 2'000;
  policy.total_deadline_us = 5'000;  // room for at most 2 full sleeps
  int calls = 0;
  RetryStats stats;
  Status s = RetryTransient(policy,
                            [&] {
                              ++calls;
                              return Status::TransientIO("down");
                            },
                            &stats);
  EXPECT_TRUE(s.IsIOError());
  EXPECT_TRUE(stats.exhausted);
  EXPECT_LE(stats.backoff_us, policy.total_deadline_us);
  EXPECT_LE(calls, 4);  // 50 attempts were authorized; the deadline won
}

}  // namespace
}  // namespace ledgerdb
