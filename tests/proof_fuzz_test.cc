// Deterministic proof-plane fuzzer: every wire format a client accepts
// evidence through is mutated field-by-field (every bit of every byte),
// truncated at every length, extended, and bombarded with seeded junk.
//
// Properties enforced per mutant:
//   1. Deserialize is total — no crash, no hang (the byzantine ctest label
//      runs this under ASan/UBSan and TSan in CI).
//   2. Decodable mutants re-serialize bit-identically (canonical wire
//      format: no encoding malleability).
//   3. A mutant that decodes must FAIL the client-side acceptance check
//      for its context. For signed evidence the kill rate must be 100%
//      (the signature covers every field). For unsigned Merkle/MPT proofs
//      a small slack is tolerated for metadata fields that are bound
//      contextually at a higher layer (e.g. a fam epoch link's own
//      leaf-index labels) — the accepted mutant still proves the same
//      statement, so the slack is soundness-neutral; the floor keeps the
//      verifiers honest about everything else.
//
// Bounded for tier-1: LEDGERDB_PROOF_FUZZ_ROUNDS (junk rounds per type,
// default 200) and LEDGERDB_PROOF_FUZZ_SEED override the defaults.

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "accum/fam.h"
#include "accum/shrubs.h"
#include "client/ledger_client.h"
#include "cmtree/cm_tree.h"
#include "common/random.h"
#include "net/transport.h"
#include "timestamp/t_ledger.h"
#include "timestamp/tsa.h"

namespace ledgerdb {
namespace {

uint64_t EnvU64(const char* name, uint64_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  return std::strtoull(value, nullptr, 10);
}

uint64_t FuzzSeed() { return EnvU64("LEDGERDB_PROOF_FUZZ_SEED", 20260806); }
uint64_t FuzzRounds() { return EnvU64("LEDGERDB_PROOF_FUZZ_ROUNDS", 200); }

/// Flips every bit of every byte of `original`; each mutant must fail to
/// decode or fail `accept`, and decodable mutants must be canonical.
/// `min_kill` is the required (decode-fail + rejected) / mutants ratio.
template <typename T, typename AcceptFn>
void FuzzEveryByte(const std::string& name, const Bytes& original,
                   AcceptFn accept, double min_kill) {
  ASSERT_FALSE(original.empty()) << name;
  {
    T pristine;
    ASSERT_TRUE(T::Deserialize(original, &pristine)) << name;
    ASSERT_TRUE(accept(pristine)) << name << ": pristine encoding rejected";
    ASSERT_EQ(pristine.Serialize(), original) << name << ": non-canonical";
  }
  uint64_t mutants = 0, killed = 0;
  std::string survivors;
  for (size_t i = 0; i < original.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      Bytes mutated = original;
      mutated[i] ^= static_cast<uint8_t>(1u << bit);
      ++mutants;
      T out;
      if (!T::Deserialize(mutated, &out)) {
        ++killed;
        continue;
      }
      EXPECT_EQ(out.Serialize(), mutated)
          << name << ": decodable mutant at byte " << i << " bit " << bit
          << " is non-canonical";
      if (!accept(out)) {
        ++killed;
      } else if (survivors.size() < 128) {
        survivors += " " + std::to_string(i) + ":" + std::to_string(bit);
      }
    }
  }
  double kill = static_cast<double>(killed) / static_cast<double>(mutants);
  EXPECT_GE(kill, min_kill) << name << ": accepted mutants at byte:bit ->"
                            << survivors;
}

/// Every proper prefix must fail to decode (all formats carry explicit
/// counts and check full consumption), as must junk-extended encodings.
template <typename T>
void FuzzTruncateAndExtend(const std::string& name, const Bytes& original) {
  for (size_t len = 0; len < original.size(); ++len) {
    Bytes prefix(original.begin(), original.begin() + len);
    T out;
    EXPECT_FALSE(T::Deserialize(prefix, &out))
        << name << ": truncation to " << len << " bytes decoded";
  }
  Random rng(FuzzSeed());
  for (int extra = 1; extra <= 4; ++extra) {
    Bytes extended = original;
    for (int i = 0; i < extra; ++i) {
      extended.push_back(static_cast<uint8_t>(rng.Uniform(256)));
    }
    T out;
    EXPECT_FALSE(T::Deserialize(extended, &out))
        << name << ": trailing junk accepted";
  }
}

/// Seeded junk: decoders must be total on arbitrary input.
template <typename T>
void FuzzJunk(const std::string& name, size_t max_len) {
  Random rng(FuzzSeed() ^ std::hash<std::string>{}(name));
  uint64_t rounds = FuzzRounds();
  for (uint64_t round = 0; round < rounds; ++round) {
    Bytes junk(rng.Uniform(max_len + 1));
    for (auto& b : junk) b = static_cast<uint8_t>(rng.Uniform(256));
    T out;
    (void)T::Deserialize(junk, &out);  // must not crash; outcome free
  }
}

class ProofPlaneFuzz : public ::testing::Test {
 protected:
  ProofPlaneFuzz()
      : clock_(1000 * kMicrosPerSecond),
        ca_(KeyPair::FromSeedString("fuzz-ca")),
        registry_(&ca_),
        lsp_(KeyPair::FromSeedString("fuzz-lsp")),
        alice_(KeyPair::FromSeedString("fuzz-alice")),
        tsa_key_(KeyPair::FromSeedString("fuzz-tsa")),
        tsa_(tsa_key_, &clock_) {
    registry_.Register(ca_.Certify("lsp", lsp_.public_key(), Role::kLsp));
    registry_.Register(ca_.Certify("alice", alice_.public_key(), Role::kUser));
    options_.fractal_height = 3;
    options_.block_capacity = 4;
    ledger_ = std::make_unique<Ledger>("lg://fuzz", options_, &clock_, lsp_,
                                       &registry_);
    transport_ = std::make_unique<LocalTransport>(ledger_.get());
    LedgerClient::Options copts;
    copts.lsp_key = lsp_.public_key();
    copts.fractal_height = options_.fractal_height;
    client_ = std::make_unique<LedgerClient>(transport_.get(), alice_, copts);
    for (int i = 0; i < 3; ++i) {
      uint64_t jsn = 0;
      EXPECT_TRUE(client_
                      ->AppendVerified(StringToBytes("tx-" + std::to_string(i)),
                                       {"asset"}, &jsn)
                      .ok());
      Journal journal;
      EXPECT_TRUE(ledger_->GetJournal(jsn, &journal).ok());
      asset_digests_.push_back(journal.TxHash());
    }
    EXPECT_TRUE(client_->RefreshTrustedRoots().ok());
  }

  SimulatedClock clock_;
  CertificateAuthority ca_;
  MemberRegistry registry_;
  KeyPair lsp_, alice_, tsa_key_;
  TsaService tsa_;
  LedgerOptions options_;
  std::unique_ptr<Ledger> ledger_;
  std::unique_ptr<LocalTransport> transport_;
  std::unique_ptr<LedgerClient> client_;
  std::vector<Digest> asset_digests_;
};

TEST_F(ProofPlaneFuzz, MembershipProofEveryByte) {
  ShrubsAccumulator acc;
  std::vector<Digest> leaves;
  for (int i = 0; i < 5; ++i) {
    leaves.push_back(Sha256::Hash(StringToBytes("leaf-" + std::to_string(i))));
    acc.Append(leaves.back());
  }
  MembershipProof proof;
  ASSERT_TRUE(acc.GetProof(2, &proof).ok());
  Digest root = acc.Root();
  auto accept = [&](const MembershipProof& m) {
    // leaf position and size are pinned by the caller's context (the fam
    // layer derives them from the jsn), not trusted from the proof.
    return m.leaf_index == proof.leaf_index && m.tree_size == proof.tree_size &&
           ShrubsAccumulator::VerifyProof(leaves[2], m, root);
  };
  FuzzEveryByte<MembershipProof>("MembershipProof", proof.Serialize(), accept,
                                 1.0);
  FuzzTruncateAndExtend<MembershipProof>("MembershipProof", proof.Serialize());
  FuzzJunk<MembershipProof>("MembershipProof", 256);
}

TEST_F(ProofPlaneFuzz, BatchProofEveryByte) {
  ShrubsAccumulator acc;
  std::vector<Digest> leaves;
  for (int i = 0; i < 6; ++i) {
    leaves.push_back(Sha256::Hash(StringToBytes("bleaf-" + std::to_string(i))));
    acc.Append(leaves.back());
  }
  BatchProof proof;
  ASSERT_TRUE(acc.GetBatchProof({1, 3, 4}, &proof).ok());
  std::vector<Digest> targets = {leaves[1], leaves[3], leaves[4]};
  Digest root = acc.Root();
  auto accept = [&](const BatchProof& m) {
    return m.tree_size == proof.tree_size &&
           m.leaf_indices == proof.leaf_indices &&
           ShrubsAccumulator::VerifyBatchProof(targets, m, root);
  };
  FuzzEveryByte<BatchProof>("BatchProof", proof.Serialize(), accept, 1.0);
  FuzzTruncateAndExtend<BatchProof>("BatchProof", proof.Serialize());
  FuzzJunk<BatchProof>("BatchProof", 512);
}

TEST_F(ProofPlaneFuzz, FamProofEveryByte) {
  const uint64_t jsn = 1;
  Journal journal;
  FamProof proof;
  ASSERT_TRUE(ledger_->GetJournal(jsn, &journal).ok());
  ASSERT_TRUE(transport_->GetProof(jsn, &proof).ok());
  Digest root = ledger_->FamRoot();
  uint64_t expected_epoch = 0, expected_leaf = 0;
  FamAccumulator::ExpectedLocation(options_.fractal_height, jsn,
                                   &expected_epoch, &expected_leaf);
  auto accept = [&](const FamProof& m) {
    return m.jsn == jsn && m.epoch == expected_epoch &&
           m.target_epoch == proof.target_epoch &&
           m.local.leaf_index == expected_leaf &&
           m.local.tree_size == proof.local.tree_size &&
           Ledger::VerifyJournalProof(journal, m, root);
  };
  // Nested epoch-link label slack is tolerated (bound contextually by the
  // link chain itself); everything else must kill.
  FuzzEveryByte<FamProof>("FamProof", proof.Serialize(), accept, 0.95);
  FuzzTruncateAndExtend<FamProof>("FamProof", proof.Serialize());
  FuzzJunk<FamProof>("FamProof", 1024);
}

TEST_F(ProofPlaneFuzz, ClueProofEveryByte) {
  ClueProof proof;
  ASSERT_TRUE(transport_->GetClueProof("asset", 0, 0, &proof).ok());
  Digest root = ledger_->ClueRoot();
  auto accept = [&](const ClueProof& m) {
    return m.clue == "asset" && m.entry_count == asset_digests_.size() &&
           CmTree::VerifyClueProof(root, asset_digests_, m);
  };
  FuzzEveryByte<ClueProof>("ClueProof", proof.Serialize(), accept, 0.95);
  FuzzTruncateAndExtend<ClueProof>("ClueProof", proof.Serialize());
  FuzzJunk<ClueProof>("ClueProof", 1024);
}

TEST_F(ProofPlaneFuzz, FamBatchProofEveryByte) {
  // Cross the epoch boundary (fractal_height 3 => epoch 0 seals after 8
  // journals) so the batched format carries two groups AND a link chain.
  for (int i = 3; i < 9; ++i) {
    ASSERT_TRUE(client_
                    ->AppendVerified(StringToBytes("tx-" + std::to_string(i)),
                                     {"asset"}, nullptr)
                    .ok());
  }
  std::vector<uint64_t> jsns = {1, 3, 8};
  std::vector<Digest> digests;
  for (uint64_t jsn : jsns) {
    Journal journal;
    ASSERT_TRUE(ledger_->GetJournal(jsn, &journal).ok());
    digests.push_back(journal.TxHash());
  }
  FamBatchProof proof;
  ASSERT_TRUE(transport_->GetProofBatch(jsns, &proof).ok());
  ASSERT_EQ(proof.groups.size(), 2u);
  ASSERT_EQ(proof.epoch_links.size(), 1u);
  Digest root = ledger_->FamRoot();
  auto accept = [&](const FamBatchProof& m) {
    return m.target_epoch == proof.target_epoch &&
           FamAccumulator::VerifyBatchProof(options_.fractal_height, jsns,
                                            digests, m, root);
  };
  // Same nested-link label slack as FamProof; the verifier derives every
  // position from the jsns, so structural fields must all kill.
  FuzzEveryByte<FamBatchProof>("FamBatchProof", proof.Serialize(), accept,
                               0.95);
  FuzzTruncateAndExtend<FamBatchProof>("FamBatchProof", proof.Serialize());
  FuzzJunk<FamBatchProof>("FamBatchProof", 2048);
}

TEST_F(ProofPlaneFuzz, ClueRangeResultEveryByte) {
  const Timestamp from = 0;
  const Timestamp to = clock_.Now() + 1;
  ClueRangeResult result;
  ASSERT_TRUE(transport_->ProveClueRange("asset", from, to, &result).ok());
  ASSERT_EQ(result.journals.size(), asset_digests_.size());
  Digest clue_root = client_->trusted_clue_root();
  Digest fam_root = client_->trusted_fam_root();
  Bytes original = result.Serialize();
  // The full BatchAuditRange acceptance path, reimplemented against the
  // mutant (the client API itself only takes a transport).
  auto accept = [&](const ClueRangeResult& m) {
    if (m.clue != "asset") return false;
    if (m.journals.size() != m.end - m.begin) return false;
    std::vector<Digest> digests;
    for (const Journal& j : m.journals) {
      if (!(j.occulted && j.payload.empty()) &&
          !(Sha256::Hash(j.payload) == j.payload_digest)) {
        return false;
      }
      if (!VerifySignature(j.client_key, j.request_hash, j.client_sig)) {
        return false;
      }
      if (j.server_ts < from || j.server_ts >= to) return false;
      digests.push_back(j.TxHash());
    }
    if (m.clue_proof.clue != "asset") return false;
    if (m.clue_proof.batch.leaf_indices.size() != digests.size()) return false;
    for (size_t i = 0; i < digests.size(); ++i) {
      if (m.clue_proof.batch.leaf_indices[i] != m.begin + i) return false;
    }
    if (!CmTree::VerifyClueProof(clue_root, digests, m.clue_proof)) {
      return false;
    }
    std::vector<uint64_t> jsns;
    std::vector<Digest> fam_digests;
    for (size_t i = 0; i < m.journals.size(); ++i) {
      uint64_t jsn = m.journals[i].jsn;
      if (!jsns.empty() && jsn == jsns.back()) {
        if (!(digests[i] == fam_digests.back())) return false;
        continue;
      }
      jsns.push_back(jsn);
      fam_digests.push_back(digests[i]);
    }
    if (!FamAccumulator::VerifyBatchProof(options_.fractal_height, jsns,
                                          fam_digests, m.fam_batch,
                                          fam_root)) {
      return false;
    }
    // Presentation-flag mutants that leave every verified byte unchanged
    // (same rationale as JournalEveryByte) count as killed.
    bool equivalent = true;
    for (size_t i = 0; i < m.journals.size(); ++i) {
      if (!(m.journals[i].payload == result.journals[i].payload)) {
        equivalent = false;
      }
    }
    return m.Serialize() == original || !equivalent;
  };
  FuzzEveryByte<ClueRangeResult>("ClueRangeResult", original, accept, 0.95);
  FuzzTruncateAndExtend<ClueRangeResult>("ClueRangeResult", original);
  FuzzJunk<ClueRangeResult>("ClueRangeResult", 4096);
}

TEST_F(ProofPlaneFuzz, ReceiptEveryByte) {
  ASSERT_FALSE(client_->receipts().empty());
  const Receipt& receipt = client_->receipts().front();
  auto accept = [&](const Receipt& m) { return m.Verify(lsp_.public_key()); };
  FuzzEveryByte<Receipt>("Receipt", receipt.Serialize(), accept, 1.0);
  FuzzTruncateAndExtend<Receipt>("Receipt", receipt.Serialize());
  FuzzJunk<Receipt>("Receipt", 256);
}

TEST_F(ProofPlaneFuzz, SignedCommitmentEveryByte) {
  SignedCommitment c;
  ASSERT_TRUE(transport_->GetCommitment(&c).ok());
  auto accept = [&](const SignedCommitment& m) {
    return m.Verify(lsp_.public_key());
  };
  FuzzEveryByte<SignedCommitment>("SignedCommitment", c.Serialize(), accept,
                                  1.0);
  FuzzTruncateAndExtend<SignedCommitment>("SignedCommitment", c.Serialize());
  FuzzJunk<SignedCommitment>("SignedCommitment", 256);
}

TEST_F(ProofPlaneFuzz, ClientTransactionEveryByte) {
  ClientTransaction tx;
  tx.ledger_uri = "lg://fuzz";
  tx.clues = {"asset"};
  tx.payload = StringToBytes("fuzz-payload");
  tx.nonce = 42;
  tx.Sign(alice_);
  auto accept = [&](const ClientTransaction& m) {
    return m.ledger_uri == "lg://fuzz" && m.VerifyClientSignature();
  };
  FuzzEveryByte<ClientTransaction>("ClientTransaction", tx.Serialize(), accept,
                                   1.0);
  FuzzTruncateAndExtend<ClientTransaction>("ClientTransaction", tx.Serialize());
  FuzzJunk<ClientTransaction>("ClientTransaction", 512);
}

TEST_F(ProofPlaneFuzz, JournalEveryByte) {
  const uint64_t jsn = 1;
  Journal journal;
  FamProof proof;
  ASSERT_TRUE(ledger_->GetJournal(jsn, &journal).ok());
  ASSERT_TRUE(transport_->GetProof(jsn, &proof).ok());
  Digest root = ledger_->FamRoot();
  Digest true_tx_hash = journal.TxHash();
  Bytes original = journal.Serialize();
  auto accept = [&](const Journal& m) {
    // The full client acceptance path for a fetched journal...
    bool accepted =
        m.jsn == jsn &&
        ((m.occulted && m.payload.empty()) ||
         Sha256::Hash(m.payload) == m.payload_digest) &&
        VerifySignature(m.client_key, m.request_hash, m.client_sig) &&
        Ledger::VerifyJournalProof(m, proof, root);
    if (!accepted) return false;
    // ...where a MUTANT whose tx-hash AND payload are unchanged (e.g. a
    // flipped `occulted` presentation flag) is semantically the same
    // record: count it as killed, the adversary gained nothing.
    bool equivalent =
        m.TxHash() == true_tx_hash && m.payload == journal.payload;
    return m.Serialize() == original || !equivalent;
  };
  FuzzEveryByte<Journal>("Journal", original, accept, 1.0);
  FuzzTruncateAndExtend<Journal>("Journal", journal.Serialize());
  FuzzJunk<Journal>("Journal", 512);
}

TEST_F(ProofPlaneFuzz, JournalDeltaEveryByte) {
  std::vector<JournalDelta> deltas;
  ASSERT_TRUE(transport_->GetDelta(1, 2, &deltas).ok());
  ASSERT_EQ(deltas.size(), 1u);
  // Deltas carry no signature — acceptance is the mirror replay
  // reproducing the committed roots (exercised by the matrix test), which
  // consumes exactly this tuple. A mutant is accepted only if the tuple
  // the mirror feeds on is unchanged — impossible for a canonical
  // encoding, so the kill floor is exact.
  const JournalDelta& orig = deltas[0];
  auto accept = [&](const JournalDelta& m) {
    return m.tx_hash == orig.tx_hash &&
           m.payload_digest == orig.payload_digest && m.clues == orig.clues;
  };
  FuzzEveryByte<JournalDelta>("JournalDelta", deltas[0].Serialize(), accept,
                              1.0);
  FuzzTruncateAndExtend<JournalDelta>("JournalDelta", deltas[0].Serialize());
  FuzzJunk<JournalDelta>("JournalDelta", 256);
}

TEST_F(ProofPlaneFuzz, TimeAttestationEveryByte) {
  TimeAttestation att = tsa_.Endorse(Sha256::Hash(StringToBytes("pegged")));
  auto accept = [&](const TimeAttestation& m) {
    return m.Verify(tsa_key_.public_key());
  };
  FuzzEveryByte<TimeAttestation>("TimeAttestation", att.Serialize(), accept,
                                 1.0);
  FuzzTruncateAndExtend<TimeAttestation>("TimeAttestation", att.Serialize());
  FuzzJunk<TimeAttestation>("TimeAttestation", 256);
}

TEST_F(ProofPlaneFuzz, TimeProofEveryByte) {
  TLedger tledger(&tsa_, &clock_, KeyPair::FromSeedString("fuzz-tlsp"), {});
  Digest digest = Sha256::Hash(StringToBytes("when"));
  TLedgerReceipt receipt;
  ASSERT_TRUE(tledger.Submit(digest, clock_.Now(), &receipt).ok());
  tledger.ForceFinalize();
  TimeProof proof;
  ASSERT_TRUE(tledger.GetTimeProof(0, &proof).ok());
  auto accept = [&](const TimeProof& m) {
    return m.index == proof.index && m.tledger_ts == proof.tledger_ts &&
           m.finalized_size == proof.finalized_size &&
           TLedger::VerifyTimeProof(digest, m, tsa_key_.public_key());
  };
  FuzzEveryByte<TimeProof>("TimeProof", proof.Serialize(), accept, 0.9);
  FuzzTruncateAndExtend<TimeProof>("TimeProof", proof.Serialize());
  FuzzJunk<TimeProof>("TimeProof", 512);
}

}  // namespace
}  // namespace ledgerdb
