#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>

#include "ledger/ledger.h"

namespace ledgerdb {
namespace {

/// Removes a stream log and its durability sidecars (watermark,
/// quarantined tail) so reruns start from a clean slate.
void RemoveStream(const std::string& path) {
  std::remove(path.c_str());
  std::remove((path + ".wm").c_str());
  std::remove((path + ".quarantine").c_str());
}

/// End-to-end persistence tests: a ledger backed by stream stores is
/// rebuilt from its streams and must be indistinguishable from the
/// original — same roots, same proofs, same mutation state — while any
/// tampering with the streams is detected at recovery time.
class RecoveryTest : public ::testing::Test {
 protected:
  RecoveryTest()
      : clock_(1000 * kMicrosPerSecond),
        ca_(KeyPair::FromSeedString("rec-ca")),
        registry_(&ca_),
        lsp_(KeyPair::FromSeedString("rec-lsp")),
        alice_(KeyPair::FromSeedString("rec-alice")),
        dba_(KeyPair::FromSeedString("rec-dba")),
        regulator_(KeyPair::FromSeedString("rec-reg")) {
    registry_.Register(ca_.Certify("lsp", lsp_.public_key(), Role::kLsp));
    registry_.Register(ca_.Certify("alice", alice_.public_key(), Role::kUser));
    registry_.Register(ca_.Certify("dba", dba_.public_key(), Role::kDba));
    registry_.Register(ca_.Certify("reg", regulator_.public_key(), Role::kRegulator));
    options_.fractal_height = 3;
    options_.block_capacity = 4;
    ledger_ = std::make_unique<Ledger>("lg://rec", options_, &clock_, lsp_,
                                       &registry_, Storage());
  }

  LedgerStorage Storage() {
    return LedgerStorage{&journal_stream_, &block_stream_};
  }

  uint64_t Append(const std::string& payload,
                  std::vector<std::string> clues = {}) {
    ClientTransaction tx;
    tx.ledger_uri = "lg://rec";
    tx.clues = std::move(clues);
    tx.payload = StringToBytes(payload);
    tx.nonce = nonce_++;
    tx.client_ts = clock_.Now();
    tx.Sign(alice_);
    uint64_t jsn = 0;
    EXPECT_TRUE(ledger_->Append(tx, &jsn).ok());
    clock_.Advance(kMicrosPerSecond);
    return jsn;
  }

  std::unique_ptr<Ledger> Reopen() {
    std::unique_ptr<Ledger> recovered;
    Status s = Ledger::Recover("lg://rec", options_, &clock_, lsp_, &registry_,
                               Storage(), &recovered);
    EXPECT_TRUE(s.ok()) << s.ToString();
    return recovered;
  }

  SimulatedClock clock_;
  CertificateAuthority ca_;
  MemberRegistry registry_;
  KeyPair lsp_, alice_, dba_, regulator_;
  LedgerOptions options_;
  MemoryStreamStore journal_stream_;
  MemoryStreamStore block_stream_;
  std::unique_ptr<Ledger> ledger_;
  uint64_t nonce_ = 0;
};

TEST_F(RecoveryTest, RootsMatchAfterRecovery) {
  for (int i = 0; i < 25; ++i) Append("p" + std::to_string(i), {"c" + std::to_string(i % 3)});
  ledger_->SealBlock();
  auto recovered = Reopen();
  ASSERT_NE(recovered, nullptr);
  EXPECT_EQ(recovered->NumJournals(), ledger_->NumJournals());
  EXPECT_EQ(recovered->FamRoot(), ledger_->FamRoot());
  EXPECT_EQ(recovered->ClueRoot(), ledger_->ClueRoot());
  EXPECT_EQ(recovered->StateRoot(), ledger_->StateRoot());
  EXPECT_EQ(recovered->blocks().size(), ledger_->blocks().size());
}

TEST_F(RecoveryTest, ProofsTransferAcrossRecovery) {
  std::vector<uint64_t> jsns;
  for (int i = 0; i < 20; ++i) jsns.push_back(Append("p" + std::to_string(i)));
  auto recovered = Reopen();
  for (uint64_t jsn : jsns) {
    Journal journal;
    ASSERT_TRUE(recovered->GetJournal(jsn, &journal).ok());
    FamProof proof;
    ASSERT_TRUE(recovered->GetProof(jsn, &proof).ok());
    // Proof from the recovered ledger verifies against the ORIGINAL root.
    EXPECT_TRUE(Ledger::VerifyJournalProof(journal, proof, ledger_->FamRoot()));
  }
}

TEST_F(RecoveryTest, ClueProofsAfterRecovery) {
  std::vector<Digest> digests;
  for (int i = 0; i < 6; ++i) {
    uint64_t jsn = Append("rec" + std::to_string(i), {"asset"});
    Journal j;
    ledger_->GetJournal(jsn, &j);
    digests.push_back(j.TxHash());
  }
  auto recovered = Reopen();
  ClueProof proof;
  ASSERT_TRUE(recovered->GetClueProof("asset", 0, 0, &proof).ok());
  EXPECT_TRUE(CmTree::VerifyClueProof(recovered->ClueRoot(), digests, proof));
  std::vector<uint64_t> jsns;
  ASSERT_TRUE(recovered->ListTx("asset", &jsns).ok());
  EXPECT_EQ(jsns.size(), 6u);
}

TEST_F(RecoveryTest, ReceiptsRemainValidAfterRecovery) {
  uint64_t jsn = Append("receipt-me");
  Receipt original;
  ASSERT_TRUE(ledger_->GetReceipt(jsn, &original).ok());
  auto recovered = Reopen();
  Receipt again;
  ASSERT_TRUE(recovered->GetReceipt(jsn, &again).ok());
  // Block hash (the commitment point) must be identical.
  EXPECT_EQ(again.block_hash, original.block_hash);
  EXPECT_EQ(again.tx_hash, original.tx_hash);
}

TEST_F(RecoveryTest, DedupStateSurvivesRecovery) {
  // The (signer, nonce) dedup table is rebuilt during replay: a client
  // retrying a pre-crash submission against the recovered ledger must get
  // the original jsn back, not a second journal.
  ClientTransaction tx;
  tx.ledger_uri = "lg://rec";
  tx.payload = StringToBytes("pre-crash");
  tx.nonce = nonce_++;
  tx.client_ts = clock_.Now();
  tx.Sign(alice_);
  uint64_t jsn = 0;
  ASSERT_TRUE(ledger_->Append(tx, &jsn).ok());
  Append("other traffic");

  auto recovered = Reopen();
  uint64_t count = recovered->NumJournals();
  uint64_t replayed = 0;
  ASSERT_TRUE(recovered->Append(tx, &replayed).ok());
  EXPECT_EQ(replayed, jsn);
  EXPECT_EQ(recovered->NumJournals(), count);
  // And a conflicting reuse of the nonce is still rejected post-recovery.
  ClientTransaction forged = tx;
  forged.payload = StringToBytes("post-crash forgery");
  forged.Sign(alice_);
  uint64_t other = 0;
  EXPECT_TRUE(recovered->Append(forged, &other).IsAlreadyExists());
}

TEST_F(RecoveryTest, OccultStateSurvivesRecovery) {
  uint64_t target = Append("secret-pii");
  Append("other");
  Digest req = Ledger::OccultRequestHash("lg://rec", target);
  std::vector<Endorsement> sigs = {{dba_.public_key(), dba_.Sign(req)},
                                   {regulator_.public_key(), regulator_.Sign(req)}};
  ASSERT_TRUE(ledger_->Occult(target, sigs, nullptr).ok());
  ledger_->ReorganizeOcculted();

  auto recovered = Reopen();
  Journal journal;
  ASSERT_TRUE(recovered->GetJournal(target, &journal).ok());
  EXPECT_TRUE(journal.occulted);
  EXPECT_TRUE(journal.payload.empty());
  // Protocol 2 still holds post-recovery.
  FamProof proof;
  ASSERT_TRUE(recovered->GetProof(target, &proof).ok());
  EXPECT_TRUE(Ledger::VerifyJournalProof(journal, proof, recovered->FamRoot()));
}

TEST_F(RecoveryTest, PurgeStateSurvivesRecovery) {
  for (int i = 0; i < 10; ++i) Append("old" + std::to_string(i), {"trail"});
  Digest req = Ledger::PurgeRequestHash("lg://rec", 8);
  std::vector<Endorsement> sigs = {{dba_.public_key(), dba_.Sign(req)},
                                   {alice_.public_key(), alice_.Sign(req)}};
  ASSERT_TRUE(ledger_->Purge(8, sigs, {}, nullptr).ok());
  Append("after-purge", {"trail"});

  auto recovered = Reopen();
  EXPECT_EQ(recovered->PurgedBoundary(), 8u);
  Journal journal;
  EXPECT_TRUE(recovered->GetJournal(3, &journal).IsNotFound());
  EXPECT_TRUE(recovered->GetJournal(9, &journal).ok());
  // fam root identical: tombstones preserved the digests.
  EXPECT_EQ(recovered->FamRoot(), ledger_->FamRoot());
  // Clue accumulators survived too (tombstones retain clue labels).
  EXPECT_EQ(recovered->ClueRoot(), ledger_->ClueRoot());
  uint64_t pg = 0;
  ASSERT_TRUE(recovered->LatestPseudoGenesis(&pg).ok());
  ASSERT_TRUE(recovered->GetJournal(pg, &journal).ok());
  EXPECT_EQ(journal.type, JournalType::kPseudoGenesis);
}

TEST_F(RecoveryTest, TimeJournalsSurviveRecovery) {
  TsaService tsa(KeyPair::FromSeedString("rec-tsa"), &clock_);
  ledger_->AttachDirectTsa(&tsa);
  Append("x");
  ASSERT_TRUE(ledger_->AnchorTime(nullptr).ok());
  auto recovered = Reopen();
  ASSERT_EQ(recovered->time_journals().size(), 1u);
  EXPECT_TRUE(recovered->time_journals()[0].evidence.attestation.Verify(
      tsa.public_key()));
}

TEST_F(RecoveryTest, PendingBlockJournalsRecovered) {
  // 6 journals with capacity 4: one sealed block + 3 pending (genesis +5).
  for (int i = 0; i < 5; ++i) Append("p" + std::to_string(i));
  auto recovered = Reopen();
  EXPECT_EQ(recovered->NumJournals(), 6u);
  EXPECT_EQ(recovered->blocks().size(), 1u);
  // Sealing after recovery picks up the pending journals.
  recovered->SealBlock();
  EXPECT_EQ(recovered->blocks().size(), 2u);
  EXPECT_EQ(recovered->blocks().back().journal_count, 2u);
}

TEST_F(RecoveryTest, TamperedJournalStreamDetected) {
  for (int i = 0; i < 8; ++i) Append("p" + std::to_string(i));
  ledger_->SealBlock();
  // Flip a payload byte of journal 3 in the stream.
  Bytes raw;
  ASSERT_TRUE(journal_stream_.Read(3, &raw).ok());
  raw[raw.size() / 2] ^= 0x01;
  ASSERT_TRUE(journal_stream_.Overwrite(3, Slice(raw)).ok());

  std::unique_ptr<Ledger> recovered;
  Status s = Ledger::Recover("lg://rec", options_, &clock_, lsp_, &registry_,
                             Storage(), &recovered);
  EXPECT_TRUE(s.IsCorruption()) << s.ToString();
}

TEST_F(RecoveryTest, TamperedBlockStreamDetected) {
  for (int i = 0; i < 8; ++i) Append("p" + std::to_string(i));
  ledger_->SealBlock();
  Bytes raw;
  ASSERT_TRUE(block_stream_.Read(0, &raw).ok());
  raw[20] ^= 0xff;
  ASSERT_TRUE(block_stream_.Overwrite(0, Slice(raw)).ok());
  std::unique_ptr<Ledger> recovered;
  Status s = Ledger::Recover("lg://rec", options_, &clock_, lsp_, &registry_,
                             Storage(), &recovered);
  EXPECT_TRUE(s.IsCorruption()) << s.ToString();
}

TEST_F(RecoveryTest, RecoverRequiresStorage) {
  std::unique_ptr<Ledger> recovered;
  Status s = Ledger::Recover("lg://rec", options_, &clock_, lsp_, &registry_,
                             {}, &recovered);
  EXPECT_TRUE(s.IsInvalidArgument());
}

TEST_F(RecoveryTest, FileBackedRoundTrip) {
  // Full durability path: file-backed streams, reopened from disk.
  std::string dir = ::testing::TempDir();
  RemoveStream(dir + "/rec_journals.log");
  RemoveStream(dir + "/rec_blocks.log");
  std::unique_ptr<FileStreamStore> jfile, bfile;
  ASSERT_TRUE(FileStreamStore::Open(dir + "/rec_journals.log", &jfile).ok());
  ASSERT_TRUE(FileStreamStore::Open(dir + "/rec_blocks.log", &bfile).ok());
  LedgerStorage storage{jfile.get(), bfile.get()};
  auto file_ledger = std::make_unique<Ledger>("lg://file", options_, &clock_,
                                              lsp_, &registry_, storage);
  std::vector<uint64_t> jsns;
  for (int i = 0; i < 12; ++i) {
    ClientTransaction tx;
    tx.ledger_uri = "lg://file";
    tx.payload = StringToBytes("durable-" + std::to_string(i));
    tx.nonce = i;
    tx.Sign(alice_);
    uint64_t jsn;
    ASSERT_TRUE(file_ledger->Append(tx, &jsn).ok());
    jsns.push_back(jsn);
  }
  file_ledger->SealBlock();
  Digest root = file_ledger->FamRoot();
  file_ledger.reset();  // "crash"

  std::unique_ptr<Ledger> recovered;
  ASSERT_TRUE(Ledger::Recover("lg://file", options_, &clock_, lsp_, &registry_,
                              storage, &recovered)
                  .ok());
  EXPECT_EQ(recovered->FamRoot(), root);
  Journal journal;
  ASSERT_TRUE(recovered->GetJournal(jsns[5], &journal).ok());
  EXPECT_EQ(journal.payload, StringToBytes("durable-5"));
}

TEST_F(RecoveryTest, TrueCrossProcessRecovery) {
  // Unlike FileBackedRoundTrip (which keeps the stream objects alive),
  // this closes the files entirely and reopens them from disk — the real
  // process-restart path, exercising the frame-index rebuild.
  std::string dir = ::testing::TempDir();
  std::string jpath = dir + "/xproc_journals.log";
  std::string bpath = dir + "/xproc_blocks.log";
  RemoveStream(jpath);
  RemoveStream(bpath);

  Digest fam_root, clue_root;
  {
    std::unique_ptr<FileStreamStore> jfile, bfile;
    ASSERT_TRUE(FileStreamStore::Open(jpath, &jfile).ok());
    ASSERT_TRUE(FileStreamStore::Open(bpath, &bfile).ok());
    Ledger ledger("lg://xproc", options_, &clock_, lsp_, &registry_,
                  {jfile.get(), bfile.get()});
    for (int i = 0; i < 9; ++i) {
      ClientTransaction tx;
      tx.ledger_uri = "lg://xproc";
      tx.clues = {"trail"};
      tx.payload = StringToBytes("x" + std::to_string(i));
      tx.nonce = i;
      tx.Sign(alice_);
      uint64_t jsn;
      ASSERT_TRUE(ledger.Append(tx, &jsn).ok());
    }
    // Occult one journal so an in-place rewrite is on disk too.
    Digest req = Ledger::OccultRequestHash("lg://xproc", 3);
    std::vector<Endorsement> sigs = {
        {dba_.public_key(), dba_.Sign(req)},
        {regulator_.public_key(), regulator_.Sign(req)}};
    ASSERT_TRUE(ledger.Occult(3, sigs, nullptr).ok());
    ledger.ReorganizeOcculted();
    ledger.SealBlock();
    fam_root = ledger.FamRoot();
    clue_root = ledger.ClueRoot();
  }  // ledger AND files destroyed — full process "exit"

  std::unique_ptr<FileStreamStore> jfile, bfile;
  ASSERT_TRUE(FileStreamStore::Open(jpath, &jfile).ok());
  ASSERT_TRUE(FileStreamStore::Open(bpath, &bfile).ok());
  std::unique_ptr<Ledger> recovered;
  ASSERT_TRUE(Ledger::Recover("lg://xproc", options_, &clock_, lsp_,
                              &registry_, {jfile.get(), bfile.get()},
                              &recovered)
                  .ok());
  EXPECT_EQ(recovered->FamRoot(), fam_root);
  EXPECT_EQ(recovered->ClueRoot(), clue_root);
  Journal journal;
  ASSERT_TRUE(recovered->GetJournal(3, &journal).ok());
  EXPECT_TRUE(journal.occulted);
  EXPECT_TRUE(journal.payload.empty());
  ASSERT_TRUE(recovered->GetJournal(5, &journal).ok());
  EXPECT_EQ(journal.payload, StringToBytes("x4"));
}

// ---------------------------------------------------------------------------
// Damaged-image recovery: file-backed ledgers reopened after torn tails,
// flipped bits and lost files.
// ---------------------------------------------------------------------------

class DamagedImageTest : public RecoveryTest {
 protected:
  /// Builds a durable ledger on fresh files and closes everything, leaving
  /// a cleanly-synced on-disk image of 9 journals + blocks. With
  /// `seal = false` the last journal stays outside any sealed block, so a
  /// torn tail there is reconcilable with the block stream.
  void WriteImage(const std::string& tag, bool seal = true) {
    jpath_ = ::testing::TempDir() + "/dmg_" + tag + "_journals.log";
    bpath_ = ::testing::TempDir() + "/dmg_" + tag + "_blocks.log";
    RemoveStream(jpath_);
    RemoveStream(bpath_);
    std::unique_ptr<FileStreamStore> jfile, bfile;
    ASSERT_TRUE(FileStreamStore::Open(jpath_, &jfile).ok());
    ASSERT_TRUE(FileStreamStore::Open(bpath_, &bfile).ok());
    Ledger ledger("lg://dmg", options_, &clock_, lsp_, &registry_,
                  {jfile.get(), bfile.get()});
    for (int i = 0; i < 8; ++i) {
      ClientTransaction tx;
      tx.ledger_uri = "lg://dmg";
      tx.clues = {"trail"};
      tx.payload = StringToBytes("d" + std::to_string(i));
      tx.nonce = i;
      tx.Sign(alice_);
      uint64_t jsn;
      ASSERT_TRUE(ledger.Append(tx, &jsn).ok());
    }
    if (seal) ASSERT_TRUE(ledger.SealBlock().ok());
    fam_root_ = ledger.FamRoot();
  }

  Status RecoverImage(std::unique_ptr<Ledger>* recovered) {
    std::unique_ptr<FileStreamStore> jfile, bfile;
    LEDGERDB_RETURN_IF_ERROR(FileStreamStore::Open(jpath_, &jfile));
    LEDGERDB_RETURN_IF_ERROR(FileStreamStore::Open(bpath_, &bfile));
    Status s = Ledger::Recover("lg://dmg", options_, &clock_, lsp_, &registry_,
                               {jfile.get(), bfile.get()}, recovered);
    // The streams die with this frame; recovered ledgers are only used for
    // in-memory state checks.
    return s;
  }

  long FileSize(const std::string& path) {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    EXPECT_NE(f, nullptr);
    EXPECT_EQ(std::fseek(f, 0, SEEK_END), 0);
    long size = std::ftell(f);
    std::fclose(f);
    return size;
  }

  std::string jpath_, bpath_;
  Digest fam_root_;
};

TEST_F(DamagedImageTest, CleanImageRecoversIdentically) {
  WriteImage("clean");
  std::unique_ptr<Ledger> recovered;
  ASSERT_TRUE(RecoverImage(&recovered).ok());
  EXPECT_EQ(recovered->NumJournals(), 9u);
  EXPECT_EQ(recovered->FamRoot(), fam_root_);
}

TEST_F(DamagedImageTest, TruncatedTailWithoutWatermarkRecoversPrefix) {
  // No final seal: journal 8 is pending, so only it can be torn away
  // without contradicting the sealed blocks.
  WriteImage("trunc_legacy", /*seal=*/false);
  // Legacy image: no watermark sidecar, tail chopped mid-frame — the torn
  // frame is quarantined and the surviving prefix replays.
  ASSERT_EQ(truncate(jpath_.c_str(), FileSize(jpath_) - 7), 0);
  std::remove((jpath_ + ".wm").c_str());
  std::unique_ptr<Ledger> recovered;
  Status s = RecoverImage(&recovered);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(recovered->NumJournals(), 8u);
}

TEST_F(DamagedImageTest, TruncatedTailBelowWatermarkIsCorruption) {
  WriteImage("trunc_acked");
  // Acknowledged bytes vanished: the watermark proves the full log was
  // durable, so a shorter file is data loss, not a torn tail.
  ASSERT_EQ(truncate(jpath_.c_str(), FileSize(jpath_) - 7), 0);
  std::unique_ptr<Ledger> recovered;
  Status s = RecoverImage(&recovered);
  EXPECT_TRUE(s.IsCorruption()) << s.ToString();
}

TEST_F(DamagedImageTest, FlippedPayloadBitIsCorruption) {
  WriteImage("bitflip");
  // Flip one payload bit in the middle of the journal log.
  long pos = FileSize(jpath_) / 2;
  std::FILE* f = std::fopen(jpath_.c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fseek(f, pos, SEEK_SET), 0);
  uint8_t b = 0;
  ASSERT_EQ(std::fread(&b, 1, 1, f), 1u);
  b ^= 0x10;
  ASSERT_EQ(std::fseek(f, pos, SEEK_SET), 0);
  ASSERT_EQ(std::fwrite(&b, 1, 1, f), 1u);
  std::fclose(f);
  std::unique_ptr<Ledger> recovered;
  Status s = RecoverImage(&recovered);
  EXPECT_TRUE(s.IsCorruption()) << s.ToString();
}

TEST_F(DamagedImageTest, MissingJournalStreamIsCorruption) {
  WriteImage("lost_stream");
  // The journal log vanished (watermark sidecar survives): recovery must
  // refuse rather than serve an empty ledger.
  std::remove(jpath_.c_str());
  std::unique_ptr<Ledger> recovered;
  Status s = RecoverImage(&recovered);
  EXPECT_TRUE(s.IsCorruption()) << s.ToString();
}

TEST_F(DamagedImageTest, EmptyStreamsAreCorruptionNotEmptyLedger) {
  // Both logs exist but hold nothing — e.g. a crash before genesis ever
  // synced. Recover must not fabricate a fresh ledger from it.
  jpath_ = ::testing::TempDir() + "/dmg_empty_journals.log";
  bpath_ = ::testing::TempDir() + "/dmg_empty_blocks.log";
  RemoveStream(jpath_);
  RemoveStream(bpath_);
  {
    std::unique_ptr<FileStreamStore> jfile, bfile;
    ASSERT_TRUE(FileStreamStore::Open(jpath_, &jfile).ok());
    ASSERT_TRUE(FileStreamStore::Open(bpath_, &bfile).ok());
  }
  std::unique_ptr<Ledger> recovered;
  Status s = RecoverImage(&recovered);
  EXPECT_TRUE(s.IsCorruption()) << s.ToString();
}

}  // namespace
}  // namespace ledgerdb
