#include <gtest/gtest.h>

#include <algorithm>

#include "accum/tim.h"
#include "cmtree/cc_mpt.h"
#include "cmtree/cm_tree.h"
#include "common/random.h"
#include "storage/node_store.h"

namespace ledgerdb {
namespace {

Digest JournalDigest(const std::string& payload) {
  return Sha256::Hash(payload);
}

// ---------------------------------------------------------------------------
// Shrubs batch proofs (foundation of CM-Tree2 verification)
// ---------------------------------------------------------------------------

TEST(BatchProofTest, SingleLeafMatchesIndividualProof) {
  ShrubsAccumulator acc;
  for (uint64_t i = 0; i < 37; ++i) acc.Append(JournalDigest(std::to_string(i)));
  BatchProof batch;
  ASSERT_TRUE(acc.GetBatchProof({5}, &batch).ok());
  EXPECT_TRUE(ShrubsAccumulator::VerifyBatchProof({JournalDigest("5")}, batch,
                                                  acc.Root()));
}

TEST(BatchProofTest, FullRangeNeedsNoSuppliedNodes) {
  // Verifying every leaf of a perfect tree derives all interior nodes.
  ShrubsAccumulator acc;
  std::vector<Digest> digests;
  std::vector<uint64_t> indices;
  for (uint64_t i = 0; i < 16; ++i) {
    digests.push_back(JournalDigest(std::to_string(i)));
    acc.Append(digests.back());
    indices.push_back(i);
  }
  BatchProof batch;
  ASSERT_TRUE(acc.GetBatchProof(indices, &batch).ok());
  EXPECT_TRUE(batch.nodes.empty());
  EXPECT_TRUE(ShrubsAccumulator::VerifyBatchProof(digests, batch, acc.Root()));
}

TEST(BatchProofTest, MinimalNodeSetForPrefixRange) {
  // The paper's worked example (§IV-C): first 4 of 8 entries need only one
  // supplied non-leaf node — the sibling subtree root.
  ShrubsAccumulator acc;
  std::vector<Digest> digests;
  for (uint64_t i = 0; i < 8; ++i) {
    digests.push_back(JournalDigest(std::to_string(i)));
    acc.Append(digests.back());
  }
  BatchProof batch;
  ASSERT_TRUE(acc.GetBatchProof({0, 1, 2, 3}, &batch).ok());
  EXPECT_EQ(batch.nodes.size(), 1u);  // only cell_32 analog is supplied
  std::vector<Digest> range(digests.begin(), digests.begin() + 4);
  EXPECT_TRUE(ShrubsAccumulator::VerifyBatchProof(range, batch, acc.Root()));
}

TEST(BatchProofTest, CheaperThanIndividualProofs) {
  ShrubsAccumulator acc;
  std::vector<Digest> digests;
  for (uint64_t i = 0; i < 1024; ++i) {
    digests.push_back(JournalDigest(std::to_string(i)));
    acc.Append(digests.back());
  }
  std::vector<uint64_t> indices;
  size_t individual_cost = 0;
  for (uint64_t i = 100; i < 140; ++i) {
    indices.push_back(i);
    MembershipProof p;
    ASSERT_TRUE(acc.GetProof(i, &p).ok());
    individual_cost += p.CostInHashes();
  }
  BatchProof batch;
  ASSERT_TRUE(acc.GetBatchProof(indices, &batch).ok());
  EXPECT_LT(batch.CostInHashes(), individual_cost);
  std::vector<Digest> range(digests.begin() + 100, digests.begin() + 140);
  EXPECT_TRUE(ShrubsAccumulator::VerifyBatchProof(range, batch, acc.Root()));
}

TEST(BatchProofTest, RejectsTamperedDigest) {
  ShrubsAccumulator acc;
  std::vector<Digest> digests;
  for (uint64_t i = 0; i < 20; ++i) {
    digests.push_back(JournalDigest(std::to_string(i)));
    acc.Append(digests.back());
  }
  BatchProof batch;
  ASSERT_TRUE(acc.GetBatchProof({3, 4, 5}, &batch).ok());
  std::vector<Digest> claimed = {digests[3], JournalDigest("forged"), digests[5]};
  EXPECT_FALSE(ShrubsAccumulator::VerifyBatchProof(claimed, batch, acc.Root()));
}

TEST(BatchProofTest, RejectsSpuriousExtraNodes) {
  ShrubsAccumulator acc;
  for (uint64_t i = 0; i < 16; ++i) acc.Append(JournalDigest(std::to_string(i)));
  BatchProof batch;
  ASSERT_TRUE(acc.GetBatchProof({0, 1}, &batch).ok());
  // Inject a node the verifier never consumes: must be rejected to keep
  // proofs canonical.
  BatchProof::ProofNode extra;
  extra.level = 0;
  extra.index = 9;
  extra.digest = JournalDigest("junk");
  batch.nodes.push_back(extra);
  EXPECT_FALSE(ShrubsAccumulator::VerifyBatchProof(
      {JournalDigest("0"), JournalDigest("1")}, batch, acc.Root()));
}

TEST(BatchProofTest, NonPowerOfTwoSizesAcrossMountains) {
  // Targets spanning multiple mountains of a 13-leaf accumulator.
  ShrubsAccumulator acc;
  std::vector<Digest> digests;
  for (uint64_t i = 0; i < 13; ++i) {
    digests.push_back(JournalDigest(std::to_string(i)));
    acc.Append(digests.back());
  }
  std::vector<uint64_t> indices = {0, 7, 8, 11, 12};
  std::vector<Digest> claimed;
  for (uint64_t i : indices) claimed.push_back(digests[i]);
  BatchProof batch;
  ASSERT_TRUE(acc.GetBatchProof(indices, &batch).ok());
  EXPECT_TRUE(ShrubsAccumulator::VerifyBatchProof(claimed, batch, acc.Root()));
}

TEST(BatchProofTest, OutOfRangeIndexRejected) {
  ShrubsAccumulator acc;
  acc.Append(JournalDigest("0"));
  BatchProof batch;
  EXPECT_TRUE(acc.GetBatchProof({1}, &batch).IsOutOfRange());
}

TEST(BatchProofTest, PlannerMatchesPaperWorkedExample) {
  // §IV-C's example: clue 3359fd16 has 8 journals; verifying the first 4
  // needs non-leaf proofs {cell21, cell22, cell32} = N2, of which
  // {cell21, cell22} ∈ N2 ∩ N3 (derivable), so only {cell32} is shipped.
  // In (level, index) coordinates: cell21 = (1,0), cell22 = (1,1),
  // cell32 = (2,1).
  ShrubsAccumulator acc;
  for (uint64_t i = 0; i < 8; ++i) acc.Append(JournalDigest(std::to_string(i)));
  ShrubsAccumulator::ProofPlan plan;
  ASSERT_TRUE(acc.PlanBatchProof({0, 1, 2, 3}, &plan).ok());
  EXPECT_EQ(plan.n1, (std::vector<uint64_t>{0, 1, 2, 3}));
  // Shipped: exactly the sibling subtree root (2,1).
  ASSERT_EQ(plan.shipped.size(), 1u);
  EXPECT_EQ(plan.shipped[0], (std::pair<int, uint64_t>{2, 1}));
  // (1,0) and (1,1) are on proof paths (N2) but derivable (N3).
  auto contains = [](const std::vector<std::pair<int, uint64_t>>& v, int l,
                     uint64_t i) {
    return std::find(v.begin(), v.end(), std::pair<int, uint64_t>{l, i}) !=
           v.end();
  };
  EXPECT_TRUE(contains(plan.n2, 1, 0));
  EXPECT_TRUE(contains(plan.n2, 1, 1));
  EXPECT_TRUE(contains(plan.n3, 1, 0));
  EXPECT_TRUE(contains(plan.n3, 1, 1));
  EXPECT_FALSE(contains(plan.n3, 2, 1));  // the shipped node is not derivable
}

TEST(BatchProofTest, PlannerShippedSetMatchesProofNodes) {
  ShrubsAccumulator acc;
  for (uint64_t i = 0; i < 100; ++i) acc.Append(JournalDigest(std::to_string(i)));
  Random rng(77);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<uint64_t> indices;
    uint64_t count = rng.Range(1, 12);
    for (uint64_t i = 0; i < count; ++i) indices.push_back(rng.Uniform(100));
    ShrubsAccumulator::ProofPlan plan;
    ASSERT_TRUE(acc.PlanBatchProof(indices, &plan).ok());
    BatchProof proof;
    ASSERT_TRUE(acc.GetBatchProof(indices, &proof).ok());
    ASSERT_EQ(plan.shipped.size(), proof.nodes.size());
    for (size_t i = 0; i < proof.nodes.size(); ++i) {
      EXPECT_EQ(plan.shipped[i].first, proof.nodes[i].level);
      EXPECT_EQ(plan.shipped[i].second, proof.nodes[i].index);
    }
  }
}

class BatchProofPropertyTest
    : public ::testing::TestWithParam<std::tuple<uint64_t, uint64_t>> {};

TEST_P(BatchProofPropertyTest, RandomRangesVerify) {
  auto [size, seed] = GetParam();
  ShrubsAccumulator acc;
  std::vector<Digest> digests;
  for (uint64_t i = 0; i < size; ++i) {
    digests.push_back(JournalDigest("j" + std::to_string(i)));
    acc.Append(digests.back());
  }
  Random rng(seed);
  for (int trial = 0; trial < 16; ++trial) {
    uint64_t begin = rng.Uniform(size);
    uint64_t end = begin + 1 + rng.Uniform(size - begin);
    std::vector<uint64_t> indices;
    std::vector<Digest> claimed;
    for (uint64_t i = begin; i < end; ++i) {
      indices.push_back(i);
      claimed.push_back(digests[i]);
    }
    BatchProof batch;
    ASSERT_TRUE(acc.GetBatchProof(indices, &batch).ok());
    ASSERT_TRUE(ShrubsAccumulator::VerifyBatchProof(claimed, batch, acc.Root()))
        << "size=" << size << " range=[" << begin << "," << end << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndSeeds, BatchProofPropertyTest,
    ::testing::Values(std::make_tuple(1, 1), std::make_tuple(2, 2),
                      std::make_tuple(7, 3), std::make_tuple(8, 4),
                      std::make_tuple(33, 5), std::make_tuple(100, 6),
                      std::make_tuple(255, 7), std::make_tuple(256, 8)));

// ---------------------------------------------------------------------------
// CM-Tree
// ---------------------------------------------------------------------------

class CmTreeTest : public ::testing::Test {
 protected:
  MemoryNodeStore store_;
};

TEST_F(CmTreeTest, AppendAssignsClueVersions) {
  CmTree tree(&store_);
  uint64_t idx;
  ASSERT_TRUE(tree.Append("DCI001", JournalDigest("a"), &idx).ok());
  EXPECT_EQ(idx, 0u);
  ASSERT_TRUE(tree.Append("DCI001", JournalDigest("b"), &idx).ok());
  EXPECT_EQ(idx, 1u);
  ASSERT_TRUE(tree.Append("DCI002", JournalDigest("c"), &idx).ok());
  EXPECT_EQ(idx, 0u);
  EXPECT_EQ(tree.ClueCount("DCI001"), 2u);
  EXPECT_EQ(tree.ClueCount("DCI002"), 1u);
  EXPECT_EQ(tree.ClueCount("DCI404"), 0u);
}

TEST_F(CmTreeTest, CopyrightLineageExample) {
  // The paper's §IV-A example: an artwork with 3 lifecycle records; the
  // clue-oriented verification must validate all 3 and their count.
  CmTree tree(&store_);
  std::vector<Digest> records = {JournalDigest("produced-2005"),
                                 JournalDigest("royalty-2010"),
                                 JournalDigest("transfer-2015")};
  for (const Digest& d : records) {
    ASSERT_TRUE(tree.Append("DCI001", d, nullptr).ok());
  }
  ClueProof proof;
  ASSERT_TRUE(tree.GetClueProof("DCI001", 0, 0, &proof).ok());
  EXPECT_EQ(proof.entry_count, 3u);
  EXPECT_TRUE(CmTree::VerifyClueProof(tree.Root(), records, proof));
}

TEST_F(CmTreeTest, ProofRejectsMissingRecord) {
  // Completeness: claiming only 2 of the 3 records must fail.
  CmTree tree(&store_);
  std::vector<Digest> records = {JournalDigest("r0"), JournalDigest("r1"),
                                 JournalDigest("r2")};
  for (const Digest& d : records) ASSERT_TRUE(tree.Append("c", d, nullptr).ok());
  ClueProof proof;
  ASSERT_TRUE(tree.GetClueProof("c", 0, 0, &proof).ok());
  std::vector<Digest> partial = {records[0], records[1]};
  EXPECT_FALSE(CmTree::VerifyClueProof(tree.Root(), partial, proof));
}

TEST_F(CmTreeTest, ProofRejectsForgedEntryCount) {
  CmTree tree(&store_);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(tree.Append("c", JournalDigest(std::to_string(i)), nullptr).ok());
  }
  ClueProof proof;
  ASSERT_TRUE(tree.GetClueProof("c", 0, 2, &proof).ok());
  proof.entry_count = 2;  // pretend the clue has only the claimed entries
  std::vector<Digest> claimed = {JournalDigest("0"), JournalDigest("1")};
  EXPECT_FALSE(CmTree::VerifyClueProof(tree.Root(), claimed, proof));
}

TEST_F(CmTreeTest, RangeProofs) {
  CmTree tree(&store_);
  std::vector<Digest> records;
  for (int i = 0; i < 50; ++i) {
    records.push_back(JournalDigest("rec" + std::to_string(i)));
    ASSERT_TRUE(tree.Append("asset", records.back(), nullptr).ok());
  }
  ClueProof proof;
  ASSERT_TRUE(tree.GetClueProof("asset", 10, 20, &proof).ok());
  std::vector<Digest> range(records.begin() + 10, records.begin() + 20);
  EXPECT_TRUE(CmTree::VerifyClueProof(tree.Root(), range, proof));
  // Off-by-one range content fails.
  std::vector<Digest> wrong(records.begin() + 11, records.begin() + 21);
  EXPECT_FALSE(CmTree::VerifyClueProof(tree.Root(), wrong, proof));
}

TEST_F(CmTreeTest, HistoricalRootsRemainVerifiable) {
  CmTree tree(&store_);
  std::vector<Digest> records;
  records.push_back(JournalDigest("v0"));
  ASSERT_TRUE(tree.Append("k", records[0], nullptr).ok());
  Digest root_v1 = tree.Root();
  ClueProof proof_v1;
  ASSERT_TRUE(tree.GetClueProof("k", 0, 0, &proof_v1).ok());

  records.push_back(JournalDigest("v1"));
  ASSERT_TRUE(tree.Append("k", records[1], nullptr).ok());

  // The old proof still verifies against the old snapshot root, not the new.
  EXPECT_TRUE(CmTree::VerifyClueProof(root_v1, {records[0]}, proof_v1));
  EXPECT_FALSE(CmTree::VerifyClueProof(tree.Root(), {records[0]}, proof_v1));
}

TEST_F(CmTreeTest, ManyCluesIndependent) {
  CmTree tree(&store_);
  Random rng(5);
  std::unordered_map<std::string, std::vector<Digest>> reference;
  for (int i = 0; i < 400; ++i) {
    std::string clue = "clue-" + std::to_string(rng.Uniform(40));
    Digest d = JournalDigest("p" + std::to_string(i));
    reference[clue].push_back(d);
    ASSERT_TRUE(tree.Append(clue, d, nullptr).ok());
  }
  for (const auto& [clue, digests] : reference) {
    ClueProof proof;
    ASSERT_TRUE(tree.GetClueProof(clue, 0, 0, &proof).ok());
    EXPECT_TRUE(CmTree::VerifyClueProof(tree.Root(), digests, proof)) << clue;
  }
}

TEST_F(CmTreeTest, ServerSideVerification) {
  CmTree tree(&store_);
  std::vector<Digest> records = {JournalDigest("a"), JournalDigest("b")};
  for (const Digest& d : records) ASSERT_TRUE(tree.Append("c", d, nullptr).ok());
  bool valid = false;
  ASSERT_TRUE(tree.VerifyClueServerSide("c", records, 0, &valid).ok());
  EXPECT_TRUE(valid);
  std::vector<Digest> forged = {JournalDigest("a"), JournalDigest("x")};
  ASSERT_TRUE(tree.VerifyClueServerSide("c", forged, 0, &valid).ok());
  EXPECT_FALSE(valid);
  EXPECT_TRUE(tree.VerifyClueServerSide("nope", records, 0, &valid).IsNotFound());
}

TEST_F(CmTreeTest, UnknownClueAndBadRanges) {
  CmTree tree(&store_);
  ASSERT_TRUE(tree.Append("c", JournalDigest("a"), nullptr).ok());
  ClueProof proof;
  EXPECT_TRUE(tree.GetClueProof("missing", 0, 0, &proof).IsNotFound());
  EXPECT_TRUE(tree.GetClueProof("c", 1, 1, &proof).IsOutOfRange());
  EXPECT_TRUE(tree.GetClueProof("c", 0, 5, &proof).IsOutOfRange());
}

// ---------------------------------------------------------------------------
// ccMPT baseline
// ---------------------------------------------------------------------------

class CcMptTest : public ::testing::Test {
 protected:
  void AppendJournal(const std::string& clue, const std::string& payload) {
    Digest d = JournalDigest(payload);
    uint64_t jsn = ledger_.Append(d);
    digests_[clue].push_back(d);
    ASSERT_TRUE(ccmpt_.Append(clue, jsn).ok());
  }

  MemoryNodeStore store_;
  TimAccumulator ledger_;
  CcMpt ccmpt_{&store_, &ledger_};
  std::unordered_map<std::string, std::vector<Digest>> digests_;
};

TEST_F(CcMptTest, CounterTracksAppends) {
  AppendJournal("c1", "a");
  AppendJournal("c1", "b");
  AppendJournal("c2", "c");
  EXPECT_EQ(ccmpt_.ClueCount("c1"), 2u);
  EXPECT_EQ(ccmpt_.ClueCount("c2"), 1u);
  EXPECT_EQ(ccmpt_.ClueCount("c3"), 0u);
}

TEST_F(CcMptTest, ProofRoundTrip) {
  for (int i = 0; i < 20; ++i) AppendJournal("clue", "p" + std::to_string(i));
  CcMptProof proof;
  ASSERT_TRUE(ccmpt_.GetClueProof("clue", &proof).ok());
  EXPECT_EQ(proof.counter, 20u);
  EXPECT_TRUE(CcMpt::VerifyClueProof(ccmpt_.Root(), ledger_.Root(),
                                     digests_["clue"], proof));
}

TEST_F(CcMptTest, ProofRejectsForgedJournal) {
  for (int i = 0; i < 5; ++i) AppendJournal("clue", "p" + std::to_string(i));
  CcMptProof proof;
  ASSERT_TRUE(ccmpt_.GetClueProof("clue", &proof).ok());
  auto forged = digests_["clue"];
  forged[2] = JournalDigest("forged");
  EXPECT_FALSE(
      CcMpt::VerifyClueProof(ccmpt_.Root(), ledger_.Root(), forged, proof));
}

TEST_F(CcMptTest, ProofRejectsMissingJournal) {
  for (int i = 0; i < 5; ++i) AppendJournal("clue", "p" + std::to_string(i));
  CcMptProof proof;
  ASSERT_TRUE(ccmpt_.GetClueProof("clue", &proof).ok());
  // Drop one journal from the claim: counter check must catch it.
  auto partial = digests_["clue"];
  partial.pop_back();
  proof.jsns.pop_back();
  proof.journal_proofs.pop_back();
  EXPECT_FALSE(
      CcMpt::VerifyClueProof(ccmpt_.Root(), ledger_.Root(), partial, proof));
}

TEST_F(CcMptTest, RejectsUnknownJsn) {
  EXPECT_TRUE(ccmpt_.Append("c", 99).IsInvalidArgument());
}

TEST_F(CcMptTest, CmTreeProofCheaperThanCcMptForLargeLedger) {
  // Figure 9's mechanism: ccMPT proof cost grows with total ledger size,
  // CM-Tree's does not.
  MemoryNodeStore cm_store;
  CmTree cmtree(&cm_store);
  // Bulk ledger traffic unrelated to the clue.
  for (int i = 0; i < 4096; ++i) ledger_.Append(JournalDigest("bulk" + std::to_string(i)));
  for (int i = 0; i < 10; ++i) {
    AppendJournal("clue", "entry" + std::to_string(i));
    ASSERT_TRUE(
        cmtree.Append("clue", JournalDigest("entry" + std::to_string(i)), nullptr).ok());
  }
  CcMptProof cc_proof;
  ASSERT_TRUE(ccmpt_.GetClueProof("clue", &cc_proof).ok());
  ClueProof cm_proof;
  ASSERT_TRUE(cmtree.GetClueProof("clue", 0, 0, &cm_proof).ok());
  EXPECT_LT(cm_proof.batch.CostInHashes(),
            static_cast<size_t>(cc_proof.journal_proofs.size()) * 12);
  EXPECT_GT(cc_proof.CostInHashes(), cm_proof.CostInHashes());
}

}  // namespace
}  // namespace ledgerdb
