#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <string>
#include <vector>

#include "common/random.h"
#include "crypto/hash.h"
#include "storage/node_store.h"
#include "storage/stream_store.h"

namespace ledgerdb {
namespace {

std::string TempPath(std::string name) {
  for (char& c : name) {
    if (c == '/') c = '_';
  }
  // FileStreamStore::Open no longer truncates; tests want a fresh log.
  // The store also keeps sidecars (durable watermark, quarantined tail)
  // next to the log — stale ones would leak state across test runs.
  std::string path = std::string(::testing::TempDir()) + "/" + name;
  std::remove(path.c_str());
  std::remove((path + ".wm").c_str());
  std::remove((path + ".quarantine").c_str());
  return path;
}

// ---------------------------------------------------------------------------
// StreamStore
// ---------------------------------------------------------------------------

class StreamStoreTest : public ::testing::TestWithParam<bool> {
 protected:
  void SetUp() override {
    if (GetParam()) {
      std::unique_ptr<FileStreamStore> fs;
      ASSERT_TRUE(FileStreamStore::Open(
                      TempPath("stream_" +
                               std::string(::testing::UnitTest::GetInstance()
                                               ->current_test_info()
                                               ->name()) +
                               ".log"),
                      &fs)
                      .ok());
      store_ = std::move(fs);
    } else {
      store_ = std::make_unique<MemoryStreamStore>();
    }
  }

  std::unique_ptr<StreamStore> store_;
};

TEST_P(StreamStoreTest, AppendAssignsDenseIndexes) {
  uint64_t idx;
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(store_->Append(Slice(std::string_view("rec")), &idx).ok());
    EXPECT_EQ(idx, static_cast<uint64_t>(i));
  }
  EXPECT_EQ(store_->Count(), 10u);
}

TEST_P(StreamStoreTest, ReadBackMatches) {
  Random rng(11);
  std::vector<Bytes> records;
  for (int i = 0; i < 50; ++i) {
    records.push_back(rng.NextBytes(rng.Range(0, 300)));
    uint64_t idx;
    ASSERT_TRUE(store_->Append(Slice(records.back()), &idx).ok());
  }
  for (int i = 0; i < 50; ++i) {
    Bytes out;
    ASSERT_TRUE(store_->Read(i, &out).ok());
    EXPECT_EQ(out, records[i]);
  }
}

TEST_P(StreamStoreTest, ReadPastEndIsNotFound) {
  Bytes out;
  EXPECT_TRUE(store_->Read(0, &out).IsNotFound());
  uint64_t idx;
  ASSERT_TRUE(store_->Append(Slice(std::string_view("x")), &idx).ok());
  EXPECT_TRUE(store_->Read(1, &out).IsNotFound());
}

TEST_P(StreamStoreTest, OverwriteSmallerRecord) {
  uint64_t idx;
  ASSERT_TRUE(
      store_->Append(Slice(std::string_view("original-payload")), &idx).ok());
  ASSERT_TRUE(store_->Overwrite(idx, Slice(std::string_view("digest"))).ok());
  Bytes out;
  ASSERT_TRUE(store_->Read(idx, &out).ok());
  EXPECT_EQ(out, StringToBytes("digest"));
}

TEST_P(StreamStoreTest, OverwriteMissingIndexFails) {
  EXPECT_TRUE(store_->Overwrite(3, Slice(std::string_view("x"))).IsNotFound());
}

INSTANTIATE_TEST_SUITE_P(MemoryAndFile, StreamStoreTest,
                         ::testing::Values(false, true),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "File" : "Memory";
                         });

TEST(FileStreamStoreTest, OverwriteLargerIsRejected) {
  std::unique_ptr<FileStreamStore> fs;
  ASSERT_TRUE(FileStreamStore::Open(TempPath("grow.log"), &fs).ok());
  uint64_t idx;
  ASSERT_TRUE(fs->Append(Slice(std::string_view("ab")), &idx).ok());
  EXPECT_TRUE(
      fs->Overwrite(idx, Slice(std::string_view("abcdef"))).IsNotSupported());
}

TEST(FileStreamStoreTest, DetectsOnDiskCorruption) {
  std::string path = TempPath("corrupt.log");
  std::unique_ptr<FileStreamStore> fs;
  ASSERT_TRUE(FileStreamStore::Open(path, &fs).ok());
  uint64_t idx;
  ASSERT_TRUE(fs->Append(Slice(std::string_view("sensitive-record")), &idx).ok());

  // Flip a payload byte behind the store's back.
  const long payload_off =
      static_cast<long>(FileStreamStore::kFrameHeaderSize) + 3;
  std::FILE* f = std::fopen(path.c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fseek(f, payload_off, SEEK_SET), 0);
  uint8_t b = 0;
  ASSERT_EQ(std::fread(&b, 1, 1, f), 1u);
  b ^= 0xff;
  ASSERT_EQ(std::fseek(f, payload_off, SEEK_SET), 0);
  ASSERT_EQ(std::fwrite(&b, 1, 1, f), 1u);
  std::fclose(f);

  Bytes out;
  EXPECT_TRUE(fs->Read(idx, &out).IsCorruption());
}

TEST(FileStreamStoreTest, ReopenRebuildsIndexAcrossProcesses) {
  std::string path = TempPath("reopen.log");
  std::remove(path.c_str());
  {
    std::unique_ptr<FileStreamStore> fs;
    ASSERT_TRUE(FileStreamStore::Open(path, &fs).ok());
    uint64_t idx;
    ASSERT_TRUE(fs->Append(Slice(std::string_view("first-record")), &idx).ok());
    ASSERT_TRUE(fs->Append(Slice(std::string_view("second")), &idx).ok());
    // Shrinking in-place rewrite (occult-style) before the "crash".
    ASSERT_TRUE(fs->Overwrite(0, Slice(std::string_view("tomb"))).ok());
  }  // close
  std::unique_ptr<FileStreamStore> fs;
  ASSERT_TRUE(FileStreamStore::Open(path, &fs).ok());
  ASSERT_EQ(fs->Count(), 2u);
  Bytes out;
  ASSERT_TRUE(fs->Read(0, &out).ok());
  EXPECT_EQ(out, StringToBytes("tomb"));
  ASSERT_TRUE(fs->Read(1, &out).ok());
  EXPECT_EQ(out, StringToBytes("second"));
  // Appending after reopen lands after the existing frames.
  uint64_t idx;
  ASSERT_TRUE(fs->Append(Slice(std::string_view("third")), &idx).ok());
  EXPECT_EQ(idx, 2u);
  ASSERT_TRUE(fs->Read(2, &out).ok());
  EXPECT_EQ(out, StringToBytes("third"));
}

long FileSize(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr);
  EXPECT_EQ(std::fseek(f, 0, SEEK_END), 0);
  long size = std::ftell(f);
  std::fclose(f);
  return size;
}

TEST(FileStreamStoreTest, TornFinalFrameDroppedOnReopen) {
  std::string path = TempPath("torn.log");
  {
    std::unique_ptr<FileStreamStore> fs;
    ASSERT_TRUE(FileStreamStore::Open(path, &fs).ok());
    uint64_t idx;
    ASSERT_TRUE(fs->Append(Slice(std::string_view("complete")), &idx).ok());
    ASSERT_TRUE(fs->Append(Slice(std::string_view("will-be-torn")), &idx).ok());
  }
  // Simulate a crash mid-append: chop bytes off the final frame. Without a
  // durable watermark (legacy image) the torn tail must be quarantined, not
  // reported as corruption.
  ASSERT_EQ(truncate(path.c_str(), FileSize(path) - 5), 0);
  std::remove((path + ".wm").c_str());

  std::unique_ptr<FileStreamStore> fs;
  ASSERT_TRUE(FileStreamStore::Open(path, &fs).ok());
  EXPECT_EQ(fs->Count(), 1u);
  Bytes out;
  ASSERT_TRUE(fs->Read(0, &out).ok());
  EXPECT_EQ(out, StringToBytes("complete"));
  EXPECT_TRUE(fs->recovery_report().tail_quarantined);
  EXPECT_TRUE(fs->recovery_report().watermark_missing);
  EXPECT_GT(fs->recovery_report().quarantined_bytes, 0u);
  EXPECT_TRUE(fs->Fsck().ok());
  // Appends keep working after tail repair.
  uint64_t idx;
  ASSERT_TRUE(fs->Append(Slice(std::string_view("after-repair")), &idx).ok());
  EXPECT_EQ(idx, 1u);
}

TEST(FileStreamStoreTest, TruncationBelowWatermarkIsCorruption) {
  std::string path = TempPath("torn_below_wm.log");
  {
    std::unique_ptr<FileStreamStore> fs;
    ASSERT_TRUE(FileStreamStore::Open(path, &fs).ok());
    uint64_t idx;
    ASSERT_TRUE(fs->Append(Slice(std::string_view("acked-one")), &idx).ok());
    ASSERT_TRUE(fs->Append(Slice(std::string_view("acked-two")), &idx).ok());
  }
  // Both appends were acknowledged (watermark covers them); losing tail
  // bytes now is silent data loss, which Open must refuse to paper over.
  ASSERT_EQ(truncate(path.c_str(), FileSize(path) - 5), 0);

  std::unique_ptr<FileStreamStore> fs;
  EXPECT_TRUE(FileStreamStore::Open(path, &fs).IsCorruption());
}

TEST(FileStreamStoreTest, NoWatermarkDamageQuarantinesFromDamagedFrame) {
  std::string path = TempPath("midstream.log");
  {
    std::unique_ptr<FileStreamStore> fs;
    ASSERT_TRUE(FileStreamStore::Open(path, &fs).ok());
    uint64_t idx;
    ASSERT_TRUE(fs->Append(Slice(std::string_view("first")), &idx).ok());
    ASSERT_TRUE(fs->Append(Slice(std::string_view("second")), &idx).ok());
  }
  std::remove((path + ".wm").c_str());
  // Damage the FIRST frame's payload. Without a watermark there is no
  // proof either frame was ever acknowledged, so the lenient legacy policy
  // treats everything from the damaged frame on as a torn tail — the valid
  // frame 1 is quarantined along with it rather than renumbered.
  const long payload_off =
      static_cast<long>(FileStreamStore::kFrameHeaderSize) + 1;
  std::FILE* f = std::fopen(path.c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fseek(f, payload_off, SEEK_SET), 0);
  uint8_t b = 0;
  ASSERT_EQ(std::fread(&b, 1, 1, f), 1u);
  b ^= 0x01;
  ASSERT_EQ(std::fseek(f, payload_off, SEEK_SET), 0);
  ASSERT_EQ(std::fwrite(&b, 1, 1, f), 1u);
  std::fclose(f);

  std::unique_ptr<FileStreamStore> fs;
  ASSERT_TRUE(FileStreamStore::Open(path, &fs).ok());
  EXPECT_EQ(fs->Count(), 0u);
  EXPECT_TRUE(fs->recovery_report().tail_quarantined);
  EXPECT_TRUE(fs->recovery_report().watermark_missing);
}

TEST(FileStreamStoreTest, PayloadFlipBelowWatermarkFailsOpen) {
  std::string path = TempPath("flip_below_wm.log");
  {
    std::unique_ptr<FileStreamStore> fs;
    ASSERT_TRUE(FileStreamStore::Open(path, &fs).ok());
    uint64_t idx;
    ASSERT_TRUE(fs->Append(Slice(std::string_view("first")), &idx).ok());
    ASSERT_TRUE(fs->Append(Slice(std::string_view("second")), &idx).ok());
  }
  const long payload_off =
      static_cast<long>(FileStreamStore::kFrameHeaderSize) + 1;
  std::FILE* f = std::fopen(path.c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fseek(f, payload_off, SEEK_SET), 0);
  uint8_t b = 0;
  ASSERT_EQ(std::fread(&b, 1, 1, f), 1u);
  b ^= 0x01;
  ASSERT_EQ(std::fseek(f, payload_off, SEEK_SET), 0);
  ASSERT_EQ(std::fwrite(&b, 1, 1, f), 1u);
  std::fclose(f);

  std::unique_ptr<FileStreamStore> fs;
  EXPECT_TRUE(FileStreamStore::Open(path, &fs).IsCorruption());
}

TEST(FileStreamStoreTest, ReorderedFramesAreDetectedBySequence) {
  std::string path = TempPath("reorder.log");
  std::unique_ptr<FileStreamStore> fs;
  ASSERT_TRUE(FileStreamStore::Open(path, &fs).ok());
  uint64_t idx;
  // Equal-size payloads so swapped frames still parse geometrically.
  ASSERT_TRUE(fs->Append(Slice(std::string_view("payload-A")), &idx).ok());
  ASSERT_TRUE(fs->Append(Slice(std::string_view("payload-B")), &idx).ok());
  const size_t frame_size = FileStreamStore::kFrameHeaderSize + 9;

  // Swap the two frames wholesale (headers carry their own seq + crc, so
  // each frame is self-consistent — only the sequence check can catch it).
  std::FILE* f = std::fopen(path.c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  std::vector<uint8_t> a(frame_size), b2(frame_size);
  ASSERT_EQ(std::fseek(f, 0, SEEK_SET), 0);
  ASSERT_EQ(std::fread(a.data(), 1, frame_size, f), frame_size);
  ASSERT_EQ(std::fread(b2.data(), 1, frame_size, f), frame_size);
  ASSERT_EQ(std::fseek(f, 0, SEEK_SET), 0);
  ASSERT_EQ(std::fwrite(b2.data(), 1, frame_size, f), frame_size);
  ASSERT_EQ(std::fwrite(a.data(), 1, frame_size, f), frame_size);
  std::fclose(f);

  // The open handle's Read revalidates the header: frame 0 now claims seq 1.
  Bytes out;
  EXPECT_TRUE(fs->Read(0, &out).IsCorruption());
  // And a fresh Open refuses the image outright (damage below watermark).
  std::unique_ptr<FileStreamStore> fs2;
  EXPECT_TRUE(FileStreamStore::Open(path, &fs2).IsCorruption());
}

TEST(FileStreamStoreTest, FsckFlagsTrailingGarbage) {
  std::string path = TempPath("fsck_trailing.log");
  std::unique_ptr<FileStreamStore> fs;
  ASSERT_TRUE(FileStreamStore::Open(path, &fs).ok());
  uint64_t idx;
  ASSERT_TRUE(fs->Append(Slice(std::string_view("record")), &idx).ok());
  ASSERT_TRUE(fs->Fsck().ok());

  // Garbage appended behind the store's back.
  std::FILE* f = std::fopen(path.c_str(), "ab");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fwrite("junk", 1, 4, f), 4u);
  std::fclose(f);
  EXPECT_TRUE(fs->Fsck().IsCorruption());
}

TEST(FileStreamStoreTest, FsckFlagsPayloadDamage) {
  std::string path = TempPath("fsck_payload.log");
  std::unique_ptr<FileStreamStore> fs;
  ASSERT_TRUE(FileStreamStore::Open(path, &fs).ok());
  uint64_t idx;
  ASSERT_TRUE(fs->Append(Slice(std::string_view("aaaa")), &idx).ok());
  ASSERT_TRUE(fs->Append(Slice(std::string_view("bbbb")), &idx).ok());
  ASSERT_TRUE(fs->Fsck().ok());

  const long payload_off =
      static_cast<long>(FileStreamStore::kFrameHeaderSize) + 2;
  std::FILE* f = std::fopen(path.c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fseek(f, payload_off, SEEK_SET), 0);
  ASSERT_EQ(std::fwrite("X", 1, 1, f), 1u);
  std::fclose(f);
  Status s = fs->Fsck();
  EXPECT_TRUE(s.IsCorruption());
  EXPECT_NE(s.message().find("frame 0"), std::string::npos);
}

TEST(FileStreamStoreTest, WatermarkSurvivesReopen) {
  std::string path = TempPath("wm_reopen.log");
  uint64_t durable = 0;
  {
    std::unique_ptr<FileStreamStore> fs;
    ASSERT_TRUE(FileStreamStore::Open(path, &fs).ok());
    uint64_t idx;
    ASSERT_TRUE(fs->Append(Slice(std::string_view("one")), &idx).ok());
    ASSERT_TRUE(fs->Append(Slice(std::string_view("two")), &idx).ok());
    durable = fs->DurableWatermark();
    EXPECT_EQ(durable, static_cast<uint64_t>(FileSize(path)));
  }
  std::unique_ptr<FileStreamStore> fs;
  ASSERT_TRUE(FileStreamStore::Open(path, &fs).ok());
  EXPECT_EQ(fs->DurableWatermark(), durable);
  EXPECT_FALSE(fs->recovery_report().watermark_missing);
  EXPECT_FALSE(fs->recovery_report().tail_quarantined);
}

TEST(Crc32Test, KnownVector) {
  // CRC32("123456789") = 0xcbf43926 (IEEE).
  Bytes data = StringToBytes("123456789");
  EXPECT_EQ(Crc32(data.data(), data.size()), 0xcbf43926u);
}

// ---------------------------------------------------------------------------
// NodeStore
// ---------------------------------------------------------------------------

TEST(MemoryNodeStoreTest, PutGetRoundTrip) {
  MemoryNodeStore store;
  Digest key = Sha256::Hash(std::string_view("node-1"));
  Bytes value = StringToBytes("serialized-node");
  ASSERT_TRUE(store.Put(key, Slice(value)).ok());
  EXPECT_TRUE(store.Contains(key));
  Bytes out;
  ASSERT_TRUE(store.Get(key, &out).ok());
  EXPECT_EQ(out, value);
  EXPECT_EQ(store.Size(), 1u);
}

TEST(MemoryNodeStoreTest, GetMissingIsNotFound) {
  MemoryNodeStore store;
  Bytes out;
  EXPECT_TRUE(store.Get(Sha256::Hash(std::string_view("missing")), &out).IsNotFound());
}

TEST(MemoryNodeStoreTest, PutIsIdempotent) {
  MemoryNodeStore store;
  Digest key = Sha256::Hash(std::string_view("k"));
  ASSERT_TRUE(store.Put(key, Slice(std::string_view("v"))).ok());
  ASSERT_TRUE(store.Put(key, Slice(std::string_view("v"))).ok());
  EXPECT_EQ(store.Size(), 1u);
}

TEST(TieredNodeStoreTest, HotAndColdTiers) {
  TieredNodeStore store(std::make_unique<MemoryNodeStore>());
  Digest hot_key = Sha256::Hash(std::string_view("hot"));
  Digest cold_key = Sha256::Hash(std::string_view("cold"));
  ASSERT_TRUE(store.PutTiered(hot_key, Slice(std::string_view("h")), true).ok());
  ASSERT_TRUE(store.PutTiered(cold_key, Slice(std::string_view("c")), false).ok());
  EXPECT_EQ(store.HotSize(), 1u);
  EXPECT_EQ(store.Size(), 2u);
  Bytes out;
  ASSERT_TRUE(store.Get(hot_key, &out).ok());
  EXPECT_EQ(out, StringToBytes("h"));
  ASSERT_TRUE(store.Get(cold_key, &out).ok());
  EXPECT_EQ(out, StringToBytes("c"));
  EXPECT_TRUE(store.Contains(hot_key));
  EXPECT_TRUE(store.Contains(cold_key));
  EXPECT_FALSE(store.Contains(Sha256::Hash(std::string_view("absent"))));
}

}  // namespace
}  // namespace ledgerdb
