#include <gtest/gtest.h>

#include "audit/dasein_auditor.h"
#include "ledger/service.h"

namespace ledgerdb {
namespace {

/// Full-lifecycle integration test: a hosted ledger goes through normal
/// business, clue lineage, time anchoring via a shared T-Ledger, an
/// occult, a purge with a survivor, a crash/recovery cycle — and must
/// still pass the complete Dasein audit at the end.
TEST(IntegrationTest, FullLifecycleSurvivesEverything) {
  SimulatedClock clock(0);
  CertificateAuthority ca(KeyPair::FromSeedString("int-ca"));
  MemberRegistry registry(&ca);
  KeyPair lsp = KeyPair::FromSeedString("int-lsp");
  KeyPair alice = KeyPair::FromSeedString("int-alice");
  KeyPair bob = KeyPair::FromSeedString("int-bob");
  KeyPair dba = KeyPair::FromSeedString("int-dba");
  KeyPair regulator = KeyPair::FromSeedString("int-reg");
  KeyPair tsa_key = KeyPair::FromSeedString("int-tsa");
  registry.Register(ca.Certify("lsp", lsp.public_key(), Role::kLsp));
  registry.Register(ca.Certify("alice", alice.public_key(), Role::kUser));
  registry.Register(ca.Certify("bob", bob.public_key(), Role::kUser));
  registry.Register(ca.Certify("dba", dba.public_key(), Role::kDba));
  registry.Register(ca.Certify("reg", regulator.public_key(), Role::kRegulator));
  TsaService tsa(tsa_key, &clock);

  TLedger::Options tlopt;
  tlopt.tau_delta = kMicrosPerSecond;
  tlopt.finalize_interval = kMicrosPerSecond;
  TLedger tledger(&tsa, &clock, lsp, tlopt);

  LedgerOptions options;
  options.fractal_height = 3;
  options.block_capacity = 4;
  MemoryStreamStore journal_stream, block_stream;
  LedgerStorage storage{&journal_stream, &block_stream};

  uint64_t nonce = 0;
  auto make_tx = [&](const KeyPair& signer, const std::string& payload,
                     std::vector<std::string> clues) {
    ClientTransaction tx;
    tx.ledger_uri = "lg://life";
    tx.clues = std::move(clues);
    tx.payload = StringToBytes(payload);
    tx.nonce = nonce++;
    tx.client_ts = clock.Now();
    tx.Sign(signer);
    return tx;
  };

  uint64_t milestone = 0, privacy_violation = 0;
  Digest pre_crash_fam_root, pre_crash_clue_root;
  {
    Ledger ledger("lg://life", options, &clock, lsp, &registry, storage);
    ledger.AttachTLedger(&tledger);

    // Phase 1: business activity with lineage + periodic anchoring.
    for (int day = 0; day < 5; ++day) {
      for (int i = 0; i < 4; ++i) {
        const KeyPair& who = (i % 2 == 0) ? alice : bob;
        uint64_t jsn;
        ASSERT_TRUE(ledger
                        .Append(make_tx(who, "d" + std::to_string(day) +
                                                 "-r" + std::to_string(i),
                                        {"chain-" + std::to_string(i % 2)}),
                                &jsn)
                        .ok());
        if (day == 1 && i == 1) milestone = jsn;
        if (day == 3 && i == 2) privacy_violation = jsn;
        clock.Advance(200 * kMicrosPerMilli);
      }
      ASSERT_TRUE(ledger.AnchorTime(nullptr).ok());
      clock.Advance(kMicrosPerSecond);
      tledger.Tick();
    }

    // Phase 2: occult the privacy violation.
    Digest oreq = Ledger::OccultRequestHash("lg://life", privacy_violation);
    std::vector<Endorsement> osigs = {
        {dba.public_key(), dba.Sign(oreq)},
        {regulator.public_key(), regulator.Sign(oreq)}};
    ASSERT_TRUE(ledger.Occult(privacy_violation, osigs, nullptr).ok());
    ASSERT_EQ(ledger.ReorganizeOcculted(), 1u);

    // Phase 3: purge the first two days, keeping the milestone.
    Digest preq = Ledger::PurgeRequestHash("lg://life", 9);
    std::vector<Endorsement> psigs = {{dba.public_key(), dba.Sign(preq)},
                                      {alice.public_key(), alice.Sign(preq)},
                                      {bob.public_key(), bob.Sign(preq)}};
    ASSERT_TRUE(ledger.Purge(9, psigs, {milestone}, nullptr).ok());

    ledger.SealBlock();
    pre_crash_fam_root = ledger.FamRoot();
    pre_crash_clue_root = ledger.ClueRoot();
  }  // "crash"

  // Phase 4: recovery.
  std::unique_ptr<Ledger> ledger;
  ASSERT_TRUE(Ledger::Recover("lg://life", options, &clock, lsp, &registry,
                              storage, &ledger)
                  .ok());
  ledger->AttachTLedger(&tledger);
  EXPECT_EQ(ledger->FamRoot(), pre_crash_fam_root);
  EXPECT_EQ(ledger->ClueRoot(), pre_crash_clue_root);
  EXPECT_EQ(ledger->PurgedBoundary(), 9u);

  // The survivor is retrievable and verifiable... from the ORIGINAL
  // survival stream, which is ledger-instance state; after recovery the
  // purged journal itself is gone but its fam slot still proves history.
  Journal occulted;
  ASSERT_TRUE(ledger->GetJournal(privacy_violation, &occulted).ok());
  EXPECT_TRUE(occulted.occulted);
  EXPECT_TRUE(occulted.payload.empty());

  // Phase 5: more business after recovery.
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(
        ledger->Append(make_tx(alice, "post-crash-" + std::to_string(i),
                               {"chain-0"}),
                       nullptr)
            .ok());
    clock.Advance(200 * kMicrosPerMilli);
  }
  ASSERT_TRUE(ledger->AnchorTime(nullptr).ok());
  clock.Advance(kMicrosPerSecond);
  tledger.Tick();
  tledger.ForceFinalize();

  // Phase 6: lineage still verifies across occult + purge + recovery.
  std::vector<uint64_t> jsns;
  ASSERT_TRUE(ledger->ListTx("chain-0", &jsns).ok());
  std::vector<Digest> digests;
  uint64_t begin = 0;
  // Entries before the purge lost their journals; verify the suffix range.
  for (uint64_t i = 0; i < jsns.size(); ++i) {
    Journal j;
    if (!ledger->GetJournal(jsns[i], &j).ok()) {
      begin = i + 1;
      digests.clear();
      continue;
    }
    digests.push_back(j.TxHash());
  }
  ClueProof proof;
  ASSERT_TRUE(ledger->GetClueProof("chain-0", begin, 0, &proof).ok());
  EXPECT_TRUE(CmTree::VerifyClueProof(ledger->ClueRoot(), digests, proof));

  // Phase 7: the Dasein-complete audit still passes.
  Receipt receipt;
  ASSERT_TRUE(ledger->GetReceipt(ledger->NumJournals() - 1, &receipt).ok());
  DaseinAuditor::Context context;
  context.ledger = ledger.get();
  context.members = &registry;
  context.tsa_key = tsa.public_key();
  context.tledger = &tledger;
  AuditReport report;
  ASSERT_TRUE(DaseinAuditor(context).Audit(receipt, {}, &report).ok())
      << report.failure_reason;
  EXPECT_TRUE(report.passed);
  EXPECT_EQ(report.occult_journals, 1u);
  EXPECT_EQ(report.purge_journals, 1u);
  EXPECT_GT(report.time_journals_verified, 0u);
}

}  // namespace
}  // namespace ledgerdb
