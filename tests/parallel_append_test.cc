// Concurrency tests for the pipelined append engine: AppendBatch /
// AppendAsync fan π_c prevalidation across a worker pool and drain commits
// through one ordered committer lane per shard. The invariants checked
// here are exactly the acceptance criteria of the parallel-append design
// (docs/parallel_append.md):
//   * per-clue lineage order equals submission order (ListTx),
//   * the concurrent group is bit-identical (fam/clue/state roots, group
//     commitment) to a serial replay of the same per-shard journal order,
//   * every shard recovers from its streams via Ledger::Recover.
// Runs under ThreadSanitizer via the `tsan` CTest label.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "ledger/sharded.h"

namespace ledgerdb {
namespace {

constexpr size_t kShards = 4;
constexpr size_t kThreads = 8;
constexpr size_t kTxPerThread = 1250;  // 10k total
constexpr size_t kCluesPerThread = 25;

class ParallelAppendTest : public ::testing::Test {
 protected:
  ParallelAppendTest()
      : clock_(0),
        ca_(KeyPair::FromSeedString("pa-ca")),
        registry_(&ca_),
        lsp_(KeyPair::FromSeedString("pa-lsp")) {
    registry_.Register(ca_.Certify("lsp", lsp_.public_key(), Role::kLsp));
    for (size_t t = 0; t < kThreads; ++t) {
      users_.push_back(KeyPair::FromSeedString("pa-user-" + std::to_string(t)));
      registry_.Register(ca_.Certify("user-" + std::to_string(t),
                                     users_.back().public_key(), Role::kUser));
    }
    options_.fractal_height = 8;
  }

  ClientTransaction MakeTx(size_t thread_id, size_t seq) {
    ClientTransaction tx;
    tx.ledger_uri = "lg://parallel";
    tx.clues = {"t" + std::to_string(thread_id) + "-clue-" +
                std::to_string(seq % kCluesPerThread)};
    tx.payload = StringToBytes("t" + std::to_string(thread_id) + "-seq-" +
                               std::to_string(seq));
    tx.nonce = thread_id * 1000000 + seq;
    tx.Sign(users_[thread_id]);
    return tx;
  }

  SimulatedClock clock_;
  CertificateAuthority ca_;
  MemberRegistry registry_;
  KeyPair lsp_;
  std::vector<KeyPair> users_;
  LedgerOptions options_;
};

TEST_F(ParallelAppendTest, ConcurrentBatchesMatchSerialReplay) {
  // Per-shard durable streams so every shard can be recovered afterwards.
  std::vector<std::unique_ptr<MemoryStreamStore>> stores;
  std::vector<LedgerStorage> storage;
  for (size_t s = 0; s < kShards; ++s) {
    stores.push_back(std::make_unique<MemoryStreamStore>());
    stores.push_back(std::make_unique<MemoryStreamStore>());
    storage.push_back(
        {stores[2 * s].get(), stores[2 * s + 1].get()});
  }
  ShardedLedgerGroup group("lg://parallel", kShards, options_, &clock_, lsp_,
                           &registry_, std::move(storage));
  group.StartParallelAppend(8);

  // Pre-sign all transactions (signing is client-side work, not the path
  // under test) and keep them alive for the whole run.
  std::vector<std::vector<ClientTransaction>> txs(kThreads);
  for (size_t t = 0; t < kThreads; ++t) {
    txs[t].reserve(kTxPerThread);
    for (size_t i = 0; i < kTxPerThread; ++i) txs[t].push_back(MakeTx(t, i));
  }

  // 8 threads each drive one AppendBatch concurrently.
  std::vector<std::vector<ShardedLedgerGroup::Location>> locations(kThreads);
  std::vector<Status> batch_status(kThreads);
  std::vector<std::thread> drivers;
  for (size_t t = 0; t < kThreads; ++t) {
    drivers.emplace_back([&, t] {
      batch_status[t] = group.AppendBatch(txs[t], &locations[t], nullptr);
    });
  }
  for (std::thread& d : drivers) d.join();
  group.StopParallelAppend();

  for (size_t t = 0; t < kThreads; ++t) {
    ASSERT_TRUE(batch_status[t].ok()) << batch_status[t].ToString();
    ASSERT_EQ(locations[t].size(), kTxPerThread);
  }
  EXPECT_EQ(group.TotalJournals(), kThreads * kTxPerThread + kShards);

  // --- Clue lineage: ListTx preserves per-clue submission order. --------
  for (size_t t = 0; t < kThreads; ++t) {
    for (size_t c = 0; c < kCluesPerThread; ++c) {
      std::string clue =
          "t" + std::to_string(t) + "-clue-" + std::to_string(c);
      size_t shard = 0;
      std::vector<uint64_t> jsns;
      ASSERT_TRUE(group.ListTx(clue, &jsns, &shard).ok()) << clue;
      ASSERT_EQ(jsns.size(), kTxPerThread / kCluesPerThread) << clue;
      size_t expected_seq = c;
      for (uint64_t jsn : jsns) {
        Journal journal;
        ASSERT_TRUE(group.GetJournal({shard, jsn}, &journal).ok());
        std::string payload(journal.payload.begin(), journal.payload.end());
        EXPECT_EQ(payload, "t" + std::to_string(t) + "-seq-" +
                               std::to_string(expected_seq))
            << clue;
        expected_seq += kCluesPerThread;
      }
    }
  }

  // --- Serial replay: rebuild each shard from its recorded journal order
  // on a fresh single-threaded ledger; roots must be bit-identical. ------
  std::unordered_map<std::string, const ClientTransaction*> by_request_hash;
  for (size_t t = 0; t < kThreads; ++t) {
    for (const ClientTransaction& tx : txs[t]) {
      by_request_hash[tx.RequestHash().ToHex()] = &tx;
    }
  }
  GroupCommitment replay_commitment;
  for (size_t s = 0; s < kShards; ++s) {
    const Ledger* shard = group.shard(s);
    Ledger reference("lg://parallel", options_, &clock_, lsp_, &registry_);
    for (uint64_t jsn = 1; jsn < shard->NumJournals(); ++jsn) {
      Journal journal;
      ASSERT_TRUE(shard->GetJournal(jsn, &journal).ok());
      auto it = by_request_hash.find(journal.request_hash.ToHex());
      ASSERT_NE(it, by_request_hash.end());
      uint64_t ref_jsn = 0;
      ASSERT_TRUE(reference.Append(*it->second, &ref_jsn).ok());
      ASSERT_EQ(ref_jsn, jsn);
    }
    EXPECT_EQ(reference.FamRoot(), shard->FamRoot()) << "shard " << s;
    EXPECT_EQ(reference.ClueRoot(), shard->ClueRoot()) << "shard " << s;
    EXPECT_EQ(reference.StateRoot(), shard->StateRoot()) << "shard " << s;
    replay_commitment.shard_roots.push_back(reference.FamRoot());
  }
  EXPECT_EQ(replay_commitment.Combined(), group.Commitment().Combined());

  // --- Recovery: every shard rebuilds from its streams and agrees. ------
  for (size_t s = 0; s < kShards; ++s) {
    group.shard(s)->SealBlock();
    std::unique_ptr<Ledger> recovered;
    Status recover = Ledger::Recover(
        "lg://parallel", options_, &clock_, lsp_, &registry_,
        {stores[2 * s].get(), stores[2 * s + 1].get()}, &recovered);
    ASSERT_TRUE(recover.ok()) << "shard " << s << ": " << recover.ToString();
    EXPECT_EQ(recovered->NumJournals(), group.shard(s)->NumJournals());
    EXPECT_EQ(recovered->FamRoot(), group.shard(s)->FamRoot());
    EXPECT_EQ(recovered->ClueRoot(), group.shard(s)->ClueRoot());
    EXPECT_EQ(recovered->StateRoot(), group.shard(s)->StateRoot());
  }
}

TEST_F(ParallelAppendTest, AppendAsyncResolvesWithCommittedLocation) {
  ShardedLedgerGroup group("lg://parallel", kShards, options_, &clock_, lsp_,
                           &registry_);
  group.StartParallelAppend(4);

  std::vector<std::future<ShardedLedgerGroup::AppendOutcome>> futures;
  for (size_t i = 0; i < 64; ++i) {
    futures.push_back(group.AppendAsync(MakeTx(i % kThreads, i)));
  }
  // Resolve every future before reading shard state: ledger reads are
  // only safe once no committer lane is mutating the shard.
  std::vector<ShardedLedgerGroup::AppendOutcome> outcomes;
  for (auto& f : futures) outcomes.push_back(f.get());
  group.StopParallelAppend();
  for (const ShardedLedgerGroup::AppendOutcome& outcome : outcomes) {
    ASSERT_TRUE(outcome.status.ok()) << outcome.status.ToString();
    Journal journal;
    EXPECT_TRUE(group.GetJournal(outcome.location, &journal).ok());
  }
}

TEST_F(ParallelAppendTest, InvalidTransactionsFailWithoutPoisoningTheBatch) {
  ShardedLedgerGroup group("lg://parallel", kShards, options_, &clock_, lsp_,
                           &registry_);
  std::vector<ClientTransaction> txs;
  txs.push_back(MakeTx(0, 0));
  // Tampered payload: π_c no longer covers it.
  txs.push_back(MakeTx(1, 1));
  txs.back().payload = StringToBytes("tampered");
  // Unregistered signer.
  txs.push_back(MakeTx(2, 2));
  KeyPair stranger = KeyPair::FromSeedString("pa-stranger");
  txs.back().Sign(stranger);
  txs.push_back(MakeTx(3, 3));

  std::vector<ShardedLedgerGroup::Location> locations;
  std::vector<Status> statuses;
  Status overall = group.AppendBatch(txs, &locations, &statuses);
  group.StopParallelAppend();

  EXPECT_FALSE(overall.ok());
  EXPECT_TRUE(statuses[0].ok());
  EXPECT_TRUE(statuses[1].IsVerificationFailed());
  EXPECT_TRUE(statuses[2].IsPermissionDenied());
  EXPECT_TRUE(statuses[3].ok());
  // The two good journals really committed.
  Journal journal;
  EXPECT_TRUE(group.GetJournal(locations[0], &journal).ok());
  EXPECT_TRUE(group.GetJournal(locations[3], &journal).ok());
  // Rejected transactions never entered any shard.
  EXPECT_EQ(group.TotalJournals(), 2u + kShards);
}

TEST_F(ParallelAppendTest, MixedShardCluesRejectedInBatch) {
  ShardedLedgerGroup group("lg://parallel", kShards, options_, &clock_, lsp_,
                           &registry_);
  // Find two clues on different shards.
  std::string a = "clue-a", b;
  for (int i = 0;; ++i) {
    b = "clue-" + std::to_string(i);
    if (group.ShardOfClue(b) != group.ShardOfClue(a)) break;
  }
  ClientTransaction tx;
  tx.ledger_uri = "lg://parallel";
  tx.clues = {a, b};
  tx.payload = StringToBytes("split");
  tx.Sign(users_[0]);
  std::vector<ClientTransaction> txs{tx};
  std::vector<ShardedLedgerGroup::Location> locations;
  std::vector<Status> statuses;
  EXPECT_TRUE(group.AppendBatch(txs, &locations, &statuses)
                  .IsInvalidArgument());
  EXPECT_TRUE(statuses[0].IsInvalidArgument());
}

}  // namespace
}  // namespace ledgerdb
