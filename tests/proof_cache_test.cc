// Proof-cache correctness: the memoized proof plane must be INVISIBLE in
// the bytes — every cached proof path (current, anchored, batched, clue
// blobs) must produce serializations identical to a cache-disabled ledger
// driven by the same history; stale blob stamps must never be served; the
// byte budget must hold under eviction; purge must drop cached epochs in
// lockstep with the trees; and the seal-time blob GC (CompleteSeal →
// DropBlobs) must be safe against readers racing the sealer lane (the
// `tsan` CTest label runs this under ThreadSanitizer).

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "accum/proof_cache.h"
#include "client/ledger_client.h"
#include "net/transport.h"

namespace ledgerdb {
namespace {

class ProofCacheTest : public ::testing::Test {
 protected:
  ProofCacheTest()
      : clock_(0),
        ca_(KeyPair::FromSeedString("pc-ca")),
        registry_(&ca_),
        lsp_(KeyPair::FromSeedString("pc-lsp")),
        user_(KeyPair::FromSeedString("pc-user")) {
    registry_.Register(ca_.Certify("lsp", lsp_.public_key(), Role::kLsp));
    registry_.Register(ca_.Certify("user", user_.public_key(), Role::kUser));
    options_.fractal_height = 2;  // epoch capacity 4: seals early and often
    options_.block_capacity = 4;
  }

  /// Two ledgers with identical histories: `cached` (default options) and
  /// `plain` (cache disabled). Same uri so one signed tx feeds both.
  void BuildPair(size_t cache_bytes = 0) {
    LedgerOptions cached_options = options_;
    if (cache_bytes != 0) cached_options.proof_cache_bytes = cache_bytes;
    LedgerOptions plain_options = options_;
    plain_options.enable_proof_cache = false;
    cached_ = std::make_unique<Ledger>("lg://pc", cached_options, &clock_,
                                       lsp_, &registry_);
    plain_ = std::make_unique<Ledger>("lg://pc", plain_options, &clock_,
                                      lsp_, &registry_);
  }

  ClientTransaction MakeTx(uint64_t seq, const std::vector<std::string>& clues) {
    ClientTransaction tx;
    tx.ledger_uri = "lg://pc";
    tx.clues = clues;
    tx.payload = StringToBytes("pc-payload-" + std::to_string(seq));
    tx.nonce = seq;
    tx.Sign(user_);
    return tx;
  }

  /// Appends the same tx to both ledgers; asserts they assign the same jsn.
  uint64_t AppendBoth(uint64_t seq, const std::vector<std::string>& clues) {
    ClientTransaction tx = MakeTx(seq, clues);
    uint64_t jsn_cached = 0, jsn_plain = 0;
    EXPECT_TRUE(cached_->Append(tx, &jsn_cached).ok());
    EXPECT_TRUE(plain_->Append(tx, &jsn_plain).ok());
    EXPECT_EQ(jsn_cached, jsn_plain);
    return jsn_cached;
  }

  SimulatedClock clock_;
  CertificateAuthority ca_;
  MemberRegistry registry_;
  KeyPair lsp_, user_;
  LedgerOptions options_;
  std::unique_ptr<Ledger> cached_;
  std::unique_ptr<Ledger> plain_;
};

// ---------------------------------------------------------------------------
// Byte-identical proofs, cache on vs off, cold vs warm
// ---------------------------------------------------------------------------

TEST_F(ProofCacheTest, CurrentProofsByteIdenticalColdAndWarm) {
  BuildPair();
  // 14 journals with fractal_height 2: epoch 0 (jsn 0..3) and epochs 1..3
  // seal; the live epoch stays partially filled.
  for (uint64_t i = 0; i < 14; ++i) AppendBoth(i, {"asset"});
  ASSERT_EQ(cached_->FamRoot(), plain_->FamRoot());
  for (uint64_t jsn = 0; jsn < 14; ++jsn) {
    FamProof cold, warm, reference;
    ASSERT_TRUE(cached_->GetProof(jsn, &cold).ok());
    ASSERT_TRUE(cached_->GetProof(jsn, &warm).ok());  // served from cache
    ASSERT_TRUE(plain_->GetProof(jsn, &reference).ok());
    EXPECT_EQ(cold.Serialize(), reference.Serialize()) << "jsn " << jsn;
    EXPECT_EQ(warm.Serialize(), reference.Serialize()) << "jsn " << jsn;
    Journal journal;
    ASSERT_TRUE(cached_->GetJournal(jsn, &journal).ok());
    EXPECT_TRUE(Ledger::VerifyJournalProof(journal, warm, plain_->FamRoot()));
  }
  ProofCache::Stats stats = cached_->ProofCacheStats();
  EXPECT_GT(stats.hits, 0u);
  EXPECT_GT(stats.resident_bytes, 0u);
  // The cache-off ledger never touched a cache at all.
  ProofCache::Stats off = plain_->ProofCacheStats();
  EXPECT_EQ(off.hits + off.misses + off.resident_bytes, 0u);
}

TEST_F(ProofCacheTest, AnchoredProofsByteIdenticalAgainstOldAnchor) {
  BuildPair();
  for (uint64_t i = 0; i < 8; ++i) AppendBoth(i, {});
  // Anchor at the (then) last sealed epoch, then keep appending: the
  // anchored path must serve historical proofs whose chain stops at the
  // anchor, identical with and without the cache.
  TrustedAnchor anchor_cached, anchor_plain;
  ASSERT_TRUE(cached_->MakeAnchor(&anchor_cached).ok());
  ASSERT_TRUE(plain_->MakeAnchor(&anchor_plain).ok());
  ASSERT_EQ(anchor_cached.epoch, anchor_plain.epoch);
  ASSERT_EQ(anchor_cached.epoch_root, anchor_plain.epoch_root);
  for (uint64_t i = 8; i < 14; ++i) AppendBoth(i, {});
  for (uint64_t jsn = 0; jsn < 7; ++jsn) {
    FamProof cold, warm, reference;
    ASSERT_TRUE(cached_->GetProofAnchored(jsn, anchor_cached, &cold).ok());
    ASSERT_TRUE(cached_->GetProofAnchored(jsn, anchor_cached, &warm).ok());
    ASSERT_TRUE(plain_->GetProofAnchored(jsn, anchor_plain, &reference).ok());
    EXPECT_EQ(cold.Serialize(), reference.Serialize()) << "jsn " << jsn;
    EXPECT_EQ(warm.Serialize(), reference.Serialize()) << "jsn " << jsn;
    Journal journal;
    ASSERT_TRUE(cached_->GetJournal(jsn, &journal).ok());
    EXPECT_TRUE(FamAccumulator::VerifyProofAnchored(journal.TxHash(), warm,
                                                    anchor_cached));
  }
  EXPECT_GT(cached_->ProofCacheStats().hits, 0u);
}

TEST_F(ProofCacheTest, BatchAndRangeProofsByteIdentical) {
  BuildPair();
  for (uint64_t i = 0; i < 14; ++i) {
    AppendBoth(i, {i % 2 == 0 ? "even" : "odd"});
  }
  std::vector<uint64_t> jsns = {0, 2, 4, 6, 8, 10, 12};
  FamBatchProof cold, warm, reference;
  ASSERT_TRUE(cached_->GetProofBatch(jsns, &cold).ok());
  ASSERT_TRUE(cached_->GetProofBatch(jsns, &warm).ok());
  ASSERT_TRUE(plain_->GetProofBatch(jsns, &reference).ok());
  EXPECT_EQ(cold.Serialize(), reference.Serialize());
  EXPECT_EQ(warm.Serialize(), reference.Serialize());
  std::vector<Digest> digests;
  for (uint64_t jsn : jsns) {
    Journal journal;
    ASSERT_TRUE(cached_->GetJournal(jsn, &journal).ok());
    digests.push_back(journal.TxHash());
  }
  EXPECT_TRUE(FamAccumulator::VerifyBatchProof(options_.fractal_height, jsns,
                                               digests, warm,
                                               plain_->FamRoot()));

  ClueRangeResult range_cold, range_warm, range_reference;
  Timestamp to = clock_.Now() + 1;
  ASSERT_TRUE(cached_->ProveClueRange("even", 0, to, &range_cold).ok());
  ASSERT_TRUE(cached_->ProveClueRange("even", 0, to, &range_warm).ok());
  ASSERT_TRUE(plain_->ProveClueRange("even", 0, to, &range_reference).ok());
  EXPECT_EQ(range_cold.Serialize(), range_reference.Serialize());
  EXPECT_EQ(range_warm.Serialize(), range_reference.Serialize());
  EXPECT_GT(cached_->ProofCacheStats().hits, 0u);
}

TEST_F(ProofCacheTest, ClueProofBlobsByteIdenticalAndHit) {
  BuildPair();
  for (uint64_t i = 0; i < 6; ++i) AppendBoth(i, {"asset"});
  ClueProof cold, warm, reference;
  ASSERT_TRUE(cached_->GetClueProof("asset", 0, 0, &cold).ok());
  uint64_t misses_after_cold = cached_->ProofCacheStats().misses;
  ASSERT_TRUE(cached_->GetClueProof("asset", 0, 0, &warm).ok());
  ASSERT_TRUE(plain_->GetClueProof("asset", 0, 0, &reference).ok());
  EXPECT_EQ(cold.Serialize(), reference.Serialize());
  EXPECT_EQ(warm.Serialize(), reference.Serialize());
  // The second build hit the blob without a new miss.
  ProofCache::Stats stats = cached_->ProofCacheStats();
  EXPECT_EQ(stats.misses, misses_after_cold);
  EXPECT_GT(stats.hits, 0u);
}

// ---------------------------------------------------------------------------
// Wire-level range memo: byte identity and occult-privacy invalidation
// ---------------------------------------------------------------------------

TEST_F(ProofCacheTest, WireRangeMemoByteIdenticalAndDroppedOnOccult) {
  BuildPair();
  std::vector<uint64_t> jsns;
  for (uint64_t i = 0; i < 10; ++i) {
    clock_.Advance(1000);
    jsns.push_back(AppendBoth(i, {"asset"}));
  }
  Timestamp to = clock_.Now() + 1;
  Bytes cold, warm, reference;
  ASSERT_TRUE(cached_->ProveClueRangeWire("asset", 0, to, &cold).ok());
  ProofCache::Stats before = cached_->ProofCacheStats();
  ASSERT_TRUE(cached_->ProveClueRangeWire("asset", 0, to, &warm).ok());
  ProofCache::Stats after = cached_->ProofCacheStats();
  // The repeat is served whole from the memo: one hit, no new miss.
  EXPECT_EQ(after.hits, before.hits + 1);
  EXPECT_EQ(after.misses, before.misses);
  ASSERT_TRUE(plain_->ProveClueRangeWire("asset", 0, to, &reference).ok());
  EXPECT_EQ(cold, reference);
  EXPECT_EQ(warm, reference);

  // Occult one selected journal. Retrievability changed, so the memo must
  // go: a re-served response has to carry the occulted (empty) payload —
  // serving the stale bytes would leak exactly what occult erased.
  KeyPair dba = KeyPair::FromSeedString("pc-dba");
  KeyPair regulator = KeyPair::FromSeedString("pc-reg");
  registry_.Register(ca_.Certify("dba", dba.public_key(), Role::kDba));
  registry_.Register(
      ca_.Certify("reg", regulator.public_key(), Role::kRegulator));
  uint64_t target = jsns[4];
  Digest req = Ledger::OccultRequestHash("lg://pc", target);
  std::vector<Endorsement> sigs = {{dba.public_key(), dba.Sign(req)},
                                   {regulator.public_key(),
                                    regulator.Sign(req)}};
  ASSERT_TRUE(cached_->Occult(target, sigs, nullptr).ok());
  ASSERT_TRUE(plain_->Occult(target, sigs, nullptr).ok());

  Bytes redone, redone_plain;
  ASSERT_TRUE(cached_->ProveClueRangeWire("asset", 0, to, &redone).ok());
  ASSERT_TRUE(plain_->ProveClueRangeWire("asset", 0, to, &redone_plain).ok());
  EXPECT_EQ(redone, redone_plain);
  EXPECT_NE(redone, reference);
  ClueRangeResult decoded;
  ASSERT_TRUE(ClueRangeResult::Deserialize(redone, &decoded));
  bool saw_target = false;
  for (const Journal& journal : decoded.journals) {
    if (journal.jsn != target) continue;
    saw_target = true;
    EXPECT_TRUE(journal.occulted);
    EXPECT_TRUE(journal.payload.empty());
  }
  EXPECT_TRUE(saw_target);
}

// ---------------------------------------------------------------------------
// Staleness: root-stamped blobs
// ---------------------------------------------------------------------------

TEST_F(ProofCacheTest, BlobStampNeverServesStaleProof) {
  BuildPair();
  for (uint64_t i = 0; i < 4; ++i) AppendBoth(i, {"asset"});
  ClueProof before;
  ASSERT_TRUE(cached_->GetClueProof("asset", 0, 0, &before).ok());
  EXPECT_EQ(before.entry_count, 4u);
  // The clue root moves: the cached blob's stamp is now stale and must be
  // rebuilt, not served.
  AppendBoth(4, {"asset"});
  ClueProof after, reference;
  ASSERT_TRUE(cached_->GetClueProof("asset", 0, 0, &after).ok());
  ASSERT_TRUE(plain_->GetClueProof("asset", 0, 0, &reference).ok());
  EXPECT_EQ(after.entry_count, 5u);
  EXPECT_EQ(after.Serialize(), reference.Serialize());
  // jsn 0 is the genesis journal: resolve the clue's actual postings.
  std::vector<uint64_t> postings;
  ASSERT_TRUE(cached_->ListTx("asset", &postings).ok());
  ASSERT_EQ(postings.size(), 5u);
  std::vector<Digest> digests;
  for (uint64_t jsn : postings) {
    Journal journal;
    ASSERT_TRUE(cached_->GetJournal(jsn, &journal).ok());
    digests.push_back(journal.TxHash());
  }
  EXPECT_TRUE(CmTree::VerifyClueProof(cached_->ClueRoot(), digests, after));
}

// ---------------------------------------------------------------------------
// Capacity: byte budget + LRU eviction
// ---------------------------------------------------------------------------

TEST_F(ProofCacheTest, EvictionHonorsByteBudget) {
  // A budget far too small for the history forces whole-epoch eviction on
  // nearly every insert — correctness must be unaffected.
  BuildPair(/*cache_bytes=*/512);
  for (uint64_t i = 0; i < 20; ++i) AppendBoth(i, {"asset"});
  for (int round = 0; round < 2; ++round) {
    for (uint64_t jsn = 0; jsn < 20; ++jsn) {
      FamProof proof, reference;
      ASSERT_TRUE(cached_->GetProof(jsn, &proof).ok());
      ASSERT_TRUE(plain_->GetProof(jsn, &reference).ok());
      EXPECT_EQ(proof.Serialize(), reference.Serialize());
    }
  }
  ProofCache::Stats stats = cached_->ProofCacheStats();
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_LE(stats.resident_bytes, 512u);
}

TEST_F(ProofCacheTest, DirectCacheEvictionAndStats) {
  ProofCache cache(/*byte_budget=*/400);
  MembershipProof proof;
  proof.siblings.resize(2);
  proof.sibling_is_left.resize(2);
  proof.peaks.resize(1);
  // ApproxBytes = 32 * (2 + 1 + 2) = 160 per link: three links overflow
  // the 400-byte budget and evict the least-recently-used epoch.
  cache.InsertLink(1, proof);
  cache.InsertLink(2, proof);
  MembershipProof out;
  EXPECT_TRUE(cache.LookupLink(2, &out));
  EXPECT_TRUE(cache.LookupLink(1, &out));  // epoch 2 is now LRU
  cache.InsertLink(3, proof);
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_FALSE(cache.LookupLink(2, &out)) << "LRU epoch survived eviction";
  EXPECT_TRUE(cache.LookupLink(1, &out));
  EXPECT_TRUE(cache.LookupLink(3, &out));
  EXPECT_LE(cache.stats().resident_bytes, 400u);

  // Blob staleness: same key, different stamp, must miss.
  Digest stamp_a = Sha256::Hash(StringToBytes("a"));
  Digest stamp_b = Sha256::Hash(StringToBytes("b"));
  cache.InsertBlob("k", stamp_a, StringToBytes("proof-bytes"));
  Bytes blob;
  EXPECT_TRUE(cache.LookupBlob("k", stamp_a, &blob));
  EXPECT_EQ(blob, StringToBytes("proof-bytes"));
  EXPECT_FALSE(cache.LookupBlob("k", stamp_b, &blob));
  cache.DropBlobs();
  EXPECT_FALSE(cache.LookupBlob("k", stamp_a, &blob));
}

// ---------------------------------------------------------------------------
// Purge: cached availability in lockstep with the trees
// ---------------------------------------------------------------------------

TEST_F(ProofCacheTest, PruneDropsCachedEpochsWithTheTrees) {
  FamAccumulator fam(2);
  ProofCache cache(1 << 20);
  fam.SetProofCache(&cache);
  std::vector<Digest> digests;
  for (int i = 0; i < 12; ++i) {
    digests.push_back(Sha256::Hash(StringToBytes("j" + std::to_string(i))));
    fam.Append(digests.back());
  }
  // Populate the cache for epochs 0 and 1, then prune them.
  FamProof proof;
  ASSERT_TRUE(fam.GetProof(0, &proof).ok());
  ASSERT_TRUE(fam.GetProof(4, &proof).ok());
  ASSERT_GT(cache.stats().resident_bytes, 0u);
  fam.PruneSealedEpochsBefore(2);
  // The cached material must NOT resurrect proofs the trees can no longer
  // build.
  EXPECT_TRUE(fam.GetProof(0, &proof).IsNotFound());
  EXPECT_TRUE(fam.GetProof(4, &proof).IsNotFound());
  FamBatchProof batch;
  EXPECT_TRUE(fam.GetBatchProof({0, 4}, &batch).IsNotFound());
  // Pruned epochs still serve their merged-cell links (from the retained
  // pruned_links_ path, bypassing the cache), so chain verification of
  // surviving journals keeps working.
  ASSERT_TRUE(fam.GetProof(8, &proof).ok());
  EXPECT_TRUE(FamAccumulator::VerifyProof(digests[8], proof, fam.Root()));
}

// ---------------------------------------------------------------------------
// VerifyBatchProof rejects mutations
// ---------------------------------------------------------------------------

TEST_F(ProofCacheTest, VerifyBatchProofRejectsTampering) {
  BuildPair();
  for (uint64_t i = 0; i < 14; ++i) AppendBoth(i, {});
  std::vector<uint64_t> jsns = {1, 5, 9, 12};
  std::vector<Digest> digests;
  for (uint64_t jsn : jsns) {
    Journal journal;
    ASSERT_TRUE(cached_->GetJournal(jsn, &journal).ok());
    digests.push_back(journal.TxHash());
  }
  FamBatchProof proof;
  ASSERT_TRUE(cached_->GetProofBatch(jsns, &proof).ok());
  const Digest root = cached_->FamRoot();
  const int h = options_.fractal_height;
  ASSERT_TRUE(FamAccumulator::VerifyBatchProof(h, jsns, digests, proof, root));

  {  // wrong digest for one journal
    std::vector<Digest> bad = digests;
    bad[2] = Sha256::Hash(StringToBytes("forged"));
    EXPECT_FALSE(FamAccumulator::VerifyBatchProof(h, jsns, bad, proof, root));
  }
  {  // jsns not strictly ascending
    std::vector<uint64_t> bad = {1, 5, 5, 12};
    EXPECT_FALSE(
        FamAccumulator::VerifyBatchProof(h, bad, digests, proof, root));
  }
  {  // a group relabeled to a different epoch
    FamBatchProof bad = proof;
    bad.groups[0].epoch += 1;
    EXPECT_FALSE(FamAccumulator::VerifyBatchProof(h, jsns, digests, bad, root));
  }
  {  // a leaf position shifted: ExpectedLocation binding must catch it
    FamBatchProof bad = proof;
    ASSERT_FALSE(bad.groups[0].batch.leaf_indices.empty());
    bad.groups[0].batch.leaf_indices[0] += 1;
    EXPECT_FALSE(FamAccumulator::VerifyBatchProof(h, jsns, digests, bad, root));
  }
  {  // dropped link: the chain no longer reaches the target epoch
    FamBatchProof bad = proof;
    ASSERT_FALSE(bad.epoch_links.empty());
    bad.epoch_links.pop_back();
    EXPECT_FALSE(FamAccumulator::VerifyBatchProof(h, jsns, digests, bad, root));
  }
  {  // dropped group: every input jsn must be covered
    FamBatchProof bad = proof;
    bad.groups.pop_back();
    EXPECT_FALSE(FamAccumulator::VerifyBatchProof(h, jsns, digests, bad, root));
  }
  {  // wrong trusted root
    Digest wrong = Sha256::Hash(StringToBytes("not-the-root"));
    EXPECT_FALSE(
        FamAccumulator::VerifyBatchProof(h, jsns, digests, proof, wrong));
  }
}

// ---------------------------------------------------------------------------
// Client batch-audit over the wire
// ---------------------------------------------------------------------------

TEST_F(ProofCacheTest, ClientBatchAuditRangeVerifiesAndCatchesTruncation) {
  BuildPair();
  LocalTransport transport(cached_.get());
  LedgerClient::Options copts;
  copts.lsp_key = lsp_.public_key();
  copts.fractal_height = options_.fractal_height;
  LedgerClient client(&transport, user_, copts);
  for (uint64_t i = 0; i < 10; ++i) {
    ASSERT_TRUE(client
                    .AppendVerified(StringToBytes("doc-" + std::to_string(i)),
                                    {"asset"}, nullptr)
                    .ok());
  }
  ASSERT_TRUE(client.RefreshTrustedRoots().ok());
  std::vector<Journal> journals;
  ClueRangeResult raw;
  Timestamp to = clock_.Now() + 1;
  ASSERT_TRUE(client.BatchAuditRange("asset", 0, to, &journals, &raw).ok());
  EXPECT_EQ(journals.size(), 10u);
  for (uint64_t i = 0; i < journals.size(); ++i) {
    EXPECT_EQ(journals[i].payload,
              StringToBytes("doc-" + std::to_string(i)));
  }
  // Without a refresh the pinned roots predate new appends: fails closed.
  ASSERT_TRUE(client.AppendVerified(StringToBytes("doc-10"), {"asset"},
                                    nullptr)
                  .ok());
  EXPECT_TRUE(client.BatchAuditRange("asset", 0, clock_.Now() + 1, &journals)
                  .IsVerificationFailed());
  ASSERT_TRUE(client.RefreshTrustedRoots().ok());
  EXPECT_TRUE(client.BatchAuditRange("asset", 0, clock_.Now() + 1, &journals)
                  .ok());
  EXPECT_EQ(journals.size(), 11u);
}

// ---------------------------------------------------------------------------
// Seal-time blob GC racing readers (tsan)
// ---------------------------------------------------------------------------

/// Minimal serial sealer lane: a dedicated thread draining a FIFO of seal
/// jobs, as the async-seal contract requires (serial, submission order).
class SealerLane {
 public:
  explicit SealerLane(Ledger* ledger) : ledger_(ledger) {
    worker_ = std::thread([this] { Run(); });
  }
  ~SealerLane() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      done_ = true;
    }
    cv_.notify_all();
    worker_.join();
  }
  void Submit(Ledger::SealJob&& job) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      queue_.push_back(std::move(job));
    }
    cv_.notify_all();
  }

 private:
  void Run() {
    for (;;) {
      Ledger::SealJob job;
      {
        std::unique_lock<std::mutex> lock(mu_);
        cv_.wait(lock, [this] { return done_ || !queue_.empty(); });
        if (queue_.empty()) return;
        job = std::move(queue_.front());
        queue_.pop_front();
      }
      ledger_->CompleteSeal(std::move(job));
    }
  }

  Ledger* ledger_;
  std::thread worker_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Ledger::SealJob> queue_;
  bool done_ = false;
};

TEST_F(ProofCacheTest, ReadersRaceSealTimeBlobInvalidation) {
  BuildPair();
  Ledger* ledger = cached_.get();
  {
    SealerLane lane(ledger);
    ledger->SetSealScheduler(
        [&lane](Ledger::SealJob&& job) { lane.Submit(std::move(job)); });

    constexpr int kRounds = 6;
    constexpr int kPerRound = 16;  // block_capacity 4: 4 seal jobs per round
    constexpr int kReaders = 3;
    for (int round = 0; round < kRounds; ++round) {
      uint64_t base = static_cast<uint64_t>(round) * kPerRound;
      for (int i = 0; i < kPerRound; ++i) {
        uint64_t jsn = 0;
        ASSERT_TRUE(
            ledger->Append(MakeTx(base + i, {"asset"}), &jsn).ok());
      }
      // Appends are quiescent; the sealer backlog drains concurrently
      // with readers exercising every cached proof path — including the
      // blob section that CompleteSeal garbage-collects via DropBlobs.
      uint64_t committed = base + kPerRound;
      std::atomic<bool> failed{false};
      std::vector<std::thread> readers;
      for (int t = 0; t < kReaders; ++t) {
        readers.emplace_back([&, t] {
          for (int iter = 0; iter < 20; ++iter) {
            ClueProof clue_proof;
            if (!ledger->GetClueProof("asset", 0, 0, &clue_proof).ok()) {
              failed = true;
            }
            uint64_t jsn = (static_cast<uint64_t>(t) * 20 + iter) % committed;
            FamProof proof;
            if (!ledger->GetProof(jsn, &proof).ok()) failed = true;
            ClueRangeResult range;
            if (!ledger->ProveClueRange("asset", 0, clock_.Now() + 1, &range)
                     .ok()) {
              failed = true;
            }
          }
        });
      }
      for (std::thread& t : readers) t.join();
      EXPECT_FALSE(failed.load());
    }
    ASSERT_TRUE(ledger->WaitForSeals().ok());
    ledger->SetSealScheduler(nullptr);
  }
  // After the dust settles the cached ledger still matches a cache-off
  // replay byte for byte.
  for (uint64_t i = 0; i < 6 * 16; ++i) {
    ClientTransaction tx = MakeTx(i, {"asset"});
    uint64_t jsn = 0;
    ASSERT_TRUE(plain_->Append(tx, &jsn).ok());
  }
  EXPECT_EQ(cached_->FamRoot(), plain_->FamRoot());
  EXPECT_EQ(cached_->ClueRoot(), plain_->ClueRoot());
  ClueProof a, b;
  ASSERT_TRUE(cached_->GetClueProof("asset", 0, 0, &a).ok());
  ASSERT_TRUE(plain_->GetClueProof("asset", 0, 0, &b).ok());
  EXPECT_EQ(a.Serialize(), b.Serialize());
}

}  // namespace
}  // namespace ledgerdb
