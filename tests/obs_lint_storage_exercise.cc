// Storage-side exercise for the metrics-name lint test. Lives in its own
// translation unit because storage/fault_env.h and net/byzantine_transport.h
// both define `ledgerdb::FaultKind` (distinct fault taxonomies for distinct
// planes) and must never be included together; obs_lint_test.cc holds the
// net side.

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "storage/env.h"
#include "storage/fault_env.h"
#include "storage/stream_store.h"

namespace ledgerdb {

/// Drives the storage plane far enough to register every
/// ledgerdb_storage_* series in the default registry: appends, fsyncs, an
/// overwrite, a reopen scan, and one injected transient fault (which also
/// registers the labeled fault counter and the retry series).
void ExerciseStorageObs() {
  MemEnv mem;
  {
    FaultEnv env(&mem, /*seed=*/0x11A7);
    env.ScheduleFault(5, FaultKind::kTransientError);
    std::unique_ptr<FileStreamStore> store;
    if (!FileStreamStore::Open(&env, "lint-exercise.log", &store).ok()) {
      return;
    }
    uint64_t idx = 0;
    store->Append(Slice(std::string_view("lint-record-a")), &idx).ok();
    store->Append(Slice(std::string_view("lint-record-b")), &idx).ok();
    // One group commit so the ledgerdb_storage_group_commit_* series
    // register too.
    std::vector<Slice> group = {Slice(std::string_view("lint-group-a")),
                                Slice(std::string_view("lint-group-b"))};
    uint64_t first = 0;
    store->AppendBatch(group, &first).ok();
    store->Overwrite(idx, Slice(std::string_view("lint-redacted"))).ok();
  }
  // Reopen through the clean env so the recovery scan runs too.
  std::unique_ptr<FileStreamStore> reopened;
  FileStreamStore::Open(&mem, "lint-exercise.log", &reopened).ok();
}

}  // namespace ledgerdb
