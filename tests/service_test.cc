#include <gtest/gtest.h>

#include "accum/bim.h"
#include "audit/dasein_auditor.h"
#include "ledger/service.h"

namespace ledgerdb {
namespace {

Digest TestDigest(uint64_t i) {
  Bytes buf;
  PutU64(&buf, i);
  return Sha256::Hash(buf);
}

// ---------------------------------------------------------------------------
// LedgerService
// ---------------------------------------------------------------------------

class ServiceTest : public ::testing::Test {
 protected:
  ServiceTest()
      : clock_(0),
        ca_(KeyPair::FromSeedString("svc-ca")),
        registry_(&ca_),
        lsp_(KeyPair::FromSeedString("svc-lsp")),
        user_(KeyPair::FromSeedString("svc-user")),
        tsa_(KeyPair::FromSeedString("svc-tsa"), &clock_),
        service_(&clock_, lsp_, &registry_, &tsa_, MakeOptions()) {
    registry_.Register(ca_.Certify("lsp", lsp_.public_key(), Role::kLsp));
    registry_.Register(ca_.Certify("user", user_.public_key(), Role::kUser));
  }

  static LedgerService::Options MakeOptions() {
    LedgerService::Options options;
    options.ledger_defaults.fractal_height = 4;
    options.anchor_interval = kMicrosPerSecond;
    options.tledger.finalize_interval = kMicrosPerSecond;
    options.tledger.tau_delta = kMicrosPerSecond;
    return options;
  }

  void Append(Ledger* ledger, const std::string& payload) {
    ClientTransaction tx;
    tx.ledger_uri = ledger->uri();
    tx.payload = StringToBytes(payload);
    tx.nonce = nonce_++;
    tx.client_ts = clock_.Now();
    tx.Sign(user_);
    uint64_t jsn;
    ASSERT_TRUE(ledger->Append(tx, &jsn).ok());
  }

  SimulatedClock clock_;
  CertificateAuthority ca_;
  MemberRegistry registry_;
  KeyPair lsp_, user_;
  TsaService tsa_;
  LedgerService service_;
  uint64_t nonce_ = 0;
};

TEST_F(ServiceTest, CreateAndLookup) {
  Ledger* a = nullptr;
  Ledger* b = nullptr;
  ASSERT_TRUE(service_.CreateLedger("lg://a", &a).ok());
  ASSERT_TRUE(service_.CreateLedger("lg://b", &b).ok());
  EXPECT_TRUE(service_.CreateLedger("lg://a", nullptr).IsAlreadyExists());
  Ledger* found = nullptr;
  ASSERT_TRUE(service_.GetLedger("lg://a", &found).ok());
  EXPECT_EQ(found, a);
  EXPECT_TRUE(service_.GetLedger("lg://c", &found).IsNotFound());
  EXPECT_EQ(service_.ListLedgers(),
            (std::vector<std::string>{"lg://a", "lg://b"}));
}

TEST_F(ServiceTest, TickAnchorsActiveLedgersOnly) {
  Ledger* active = nullptr;
  Ledger* idle = nullptr;
  ASSERT_TRUE(service_.CreateLedger("lg://active", &active).ok());
  ASSERT_TRUE(service_.CreateLedger("lg://idle", &idle).ok());
  Append(active, "data");
  EXPECT_EQ(service_.Tick(), 1u);  // only the active ledger anchors
  EXPECT_EQ(active->time_journals().size(), 1u);
  EXPECT_TRUE(idle->time_journals().empty());

  // Within the anchor interval, no re-anchoring even with new data.
  Append(active, "more");
  EXPECT_EQ(service_.Tick(), 0u);
  clock_.Advance(kMicrosPerSecond);
  EXPECT_EQ(service_.Tick(), 1u);
}

TEST_F(ServiceTest, SharedTLedgerAmortizesTsa) {
  std::vector<Ledger*> ledgers;
  for (int i = 0; i < 5; ++i) {
    Ledger* ledger = nullptr;
    ASSERT_TRUE(service_.CreateLedger("lg://l" + std::to_string(i), &ledger).ok());
    ledgers.push_back(ledger);
  }
  for (int round = 0; round < 4; ++round) {
    for (Ledger* ledger : ledgers) Append(ledger, "r" + std::to_string(round));
    service_.Tick();
    clock_.Advance(kMicrosPerSecond);
  }
  service_.tledger()->ForceFinalize();
  // 5 ledgers x 4 rounds of anchoring = 20 submissions, but far fewer TSA
  // endorsements thanks to the shared T-Ledger.
  EXPECT_GE(service_.tledger()->submission_count(), 15u);
  EXPECT_LT(tsa_.endorsement_count(), 8u);
}

TEST_F(ServiceTest, HostedLedgerFullyAuditable) {
  Ledger* ledger = nullptr;
  ASSERT_TRUE(service_.CreateLedger("lg://audit-me", &ledger).ok());
  for (int i = 0; i < 6; ++i) Append(ledger, "p" + std::to_string(i));
  service_.Tick();
  clock_.Advance(kMicrosPerSecond);
  service_.Tick();
  service_.tledger()->ForceFinalize();

  Receipt receipt;
  ASSERT_TRUE(ledger->GetReceipt(ledger->NumJournals() - 1, &receipt).ok());
  DaseinAuditor::Context context;
  context.ledger = ledger;
  context.members = &registry_;
  context.tsa_key = tsa_.public_key();
  context.tledger = service_.tledger();
  AuditReport report;
  ASSERT_TRUE(DaseinAuditor(context).Audit(receipt, {}, &report).ok())
      << report.failure_reason;
  EXPECT_TRUE(report.passed);
}

// ---------------------------------------------------------------------------
// BimLightClient (boa)
// ---------------------------------------------------------------------------

TEST(BimLightClientTest, SyncAndVerify) {
  BimChain chain(8);
  for (uint64_t i = 0; i < 40; ++i) chain.Append(TestDigest(i));
  BimLightClient client;
  ASSERT_TRUE(client.Sync(chain).ok());
  EXPECT_EQ(client.HeaderCount(), chain.NumBlocks());
  for (uint64_t i = 0; i < 40; ++i) {
    BimProof proof;
    ASSERT_TRUE(chain.GetProof(i, &proof).ok());
    EXPECT_TRUE(client.VerifyTransaction(TestDigest(i), proof));
    EXPECT_FALSE(client.VerifyTransaction(TestDigest(i + 100), proof));
  }
}

TEST(BimLightClientTest, IncrementalSync) {
  BimChain chain(4);
  for (uint64_t i = 0; i < 8; ++i) chain.Append(TestDigest(i));
  BimLightClient client;
  ASSERT_TRUE(client.Sync(chain).ok());
  EXPECT_EQ(client.HeaderCount(), 2u);
  for (uint64_t i = 8; i < 16; ++i) chain.Append(TestDigest(i));
  ASSERT_TRUE(client.Sync(chain).ok());
  EXPECT_EQ(client.HeaderCount(), 4u);
}

TEST(BimLightClientTest, RejectsUnknownBlockHeight) {
  BimChain chain(4);
  for (uint64_t i = 0; i < 4; ++i) chain.Append(TestDigest(i));
  BimLightClient client;
  ASSERT_TRUE(client.Sync(chain).ok());
  BimProof proof;
  ASSERT_TRUE(chain.GetProof(0, &proof).ok());
  proof.block_height = 99;
  EXPECT_FALSE(client.VerifyTransaction(TestDigest(0), proof));
}

TEST(BimLightClientTest, StorageGrowsWithBlocks) {
  // The boa O(n)-headers cost that motivates fam-aoa.
  BimChain chain(2);
  BimLightClient client;
  for (uint64_t i = 0; i < 8; ++i) chain.Append(TestDigest(i));
  ASSERT_TRUE(client.Sync(chain).ok());
  size_t small = client.StorageBytes();
  for (uint64_t i = 8; i < 64; ++i) chain.Append(TestDigest(i));
  ASSERT_TRUE(client.Sync(chain).ok());
  EXPECT_GT(client.StorageBytes(), small * 4);
}

}  // namespace
}  // namespace ledgerdb
