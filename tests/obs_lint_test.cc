// Metrics-name lint (tier-1): every metric this codebase registers must
// follow the `ledgerdb_{subsystem}_{name}_{unit}` convention, appear in the
// obs::names catalog, and register under exactly one kind. The test drives
// real code paths across the storage, retry, and net planes so the check
// covers what production sites actually register, not just the catalog
// constants.
//
// The storage exercise lives in obs_lint_storage_exercise.cc: this TU
// includes net/byzantine_transport.h, whose `ledgerdb::FaultKind` collides
// with the distinct storage taxonomy in storage/fault_env.h.

#include <gtest/gtest.h>

#include <regex>
#include <set>
#include <string>
#include <vector>

#include "client/ledger_client.h"
#include "common/retry.h"
#include "net/byzantine_transport.h"
#include "net/server.h"
#include "net/socket_transport.h"
#include "net/transport.h"
#include "obs/metric_names.h"
#include "obs/metrics.h"

namespace ledgerdb {

// Defined in obs_lint_storage_exercise.cc.
void ExerciseStorageObs();

namespace {

const std::regex& NameConvention() {
  // ledgerdb_{subsystem}_{name}_{unit}; unit is one of the four the obs
  // subsystem documents. Subsystem and name segments are lowercase
  // alphanumeric words joined by single underscores.
  static const std::regex* re = new std::regex(
      "ledgerdb_[a-z0-9]+(_[a-z0-9]+)*_(total|us|bytes|count)");
  return *re;
}

const std::regex& LabelConvention() {
  // One {key="value"} clause; keys are lowercase identifiers, values may
  // carry the CamelCase enum names the net plane reports.
  static const std::regex* re =
      new std::regex("\\{[a-z][a-z0-9_]*=\"[A-Za-z0-9_.:-]+\"\\}");
  return *re;
}

/// Splits a registered series into base name + optional label clause and
/// EXPECTs both halves to pass the convention.
void LintSeries(const std::string& series,
                const std::set<std::string>& catalog) {
  size_t brace = series.find('{');
  std::string base =
      brace == std::string::npos ? series : series.substr(0, brace);
  EXPECT_TRUE(std::regex_match(base, NameConvention()))
      << "series violates naming convention: " << series;
  EXPECT_TRUE(catalog.count(base) == 1)
      << "series not in obs::names catalog: " << series;
  if (brace != std::string::npos) {
    EXPECT_TRUE(std::regex_match(series.substr(brace), LabelConvention()))
        << "series has malformed label clause: " << series;
  }
}

/// Honest no-op transport: enough surface for ByzantineTransport to count
/// RPCs and fire scheduled faults without standing up a full ledger.
class StubTransport : public LedgerTransport {
 public:
  Status AppendTx(const ClientTransaction&, uint64_t* jsn) override {
    *jsn = next_jsn_++;
    return Status::OK();
  }
  Status GetReceipt(uint64_t, Receipt*) override { return Status::OK(); }
  Status GetJournal(uint64_t, Journal*) override { return Status::OK(); }
  Status GetProof(uint64_t, FamProof*) override { return Status::OK(); }
  Status GetClueProof(const std::string&, uint64_t, uint64_t,
                      ClueProof*) override {
    return Status::OK();
  }
  Status ListTx(const std::string&, std::vector<uint64_t>*) override {
    return Status::OK();
  }
  Status GetCommitment(SignedCommitment*) override { return Status::OK(); }
  Status GetDelta(uint64_t, uint64_t, std::vector<JournalDelta>*) override {
    return Status::OK();
  }
  Status GetProofBatch(const std::vector<uint64_t>&,
                       FamBatchProof*) override {
    return Status::OK();
  }
  Status ProveClueRange(const std::string&, Timestamp, Timestamp,
                        ClueRangeResult*) override {
    return Status::OK();
  }
  const std::string& uri() const override { return uri_; }

 private:
  uint64_t next_jsn_ = 1;
  std::string uri_ = "lg://lint-stub";
};

/// Drives the net plane: a few RPCs through ByzantineTransport with two
/// scheduled faults, registering the per-op and per-kind labeled counters.
void ExerciseNetObs() {
  StubTransport stub;
  ByzantineTransport transport(&stub, /*seed=*/0x11A7);
  transport.InjectFault(RpcOp::kAppendTx, 1, FaultKind::kTransientError);
  transport.InjectFault(RpcOp::kGetReceipt, 0, FaultKind::kDrop);
  ClientTransaction tx;
  uint64_t jsn = 0;
  transport.AppendTx(tx, &jsn).ok();
  transport.AppendTx(tx, &jsn).ok();  // fault fires here
  Receipt receipt;
  transport.GetReceipt(1, &receipt).ok();  // dropped
  SignedCommitment commitment;
  transport.GetCommitment(&commitment).ok();
}

/// Drives the proof-cache plane end to end: a cache-enabled ledger serves
/// the same clue range twice through the batched proof path, registering
/// the proofcache hit/miss counters, the resident-bytes gauge, and the
/// ledger/client batch-proof series.
void ExerciseProofCacheObs() {
  SimulatedClock clock(0);
  CertificateAuthority ca(KeyPair::FromSeedString("lint-ca"));
  MemberRegistry registry(&ca);
  KeyPair lsp = KeyPair::FromSeedString("lint-lsp");
  KeyPair user = KeyPair::FromSeedString("lint-user");
  registry.Register(ca.Certify("lsp", lsp.public_key(), Role::kLsp));
  registry.Register(ca.Certify("user", user.public_key(), Role::kUser));
  LedgerOptions options;
  options.fractal_height = 2;  // seals quickly: sealed-epoch cache engages
  options.block_capacity = 4;
  Ledger ledger("lg://lint-cache", options, &clock, lsp, &registry);
  LocalTransport transport(&ledger);
  LedgerClient::Options copts;
  copts.lsp_key = lsp.public_key();
  copts.fractal_height = options.fractal_height;
  LedgerClient client(&transport, user, copts);
  for (int i = 0; i < 6; ++i) {
    EXPECT_TRUE(client
                    .AppendVerified(StringToBytes("pc-" + std::to_string(i)),
                                    {"pc"}, nullptr)
                    .ok());
  }
  EXPECT_TRUE(client.RefreshTrustedRoots().ok());
  std::vector<Journal> journals;
  Timestamp to = clock.Now() + 1;
  EXPECT_TRUE(client.BatchAuditRange("pc", 0, to, &journals).ok());
  EXPECT_TRUE(client.BatchAuditRange("pc", 0, to, &journals).ok());  // hits
  EXPECT_GT(ledger.ProofCacheStats().hits, 0u);
}

/// Drives the socket service plane: a real LedgerServer and SocketTransport
/// exchange RPCs over a unix socket, registering the ledgerdb_server_*
/// gauges/counters/labeled histograms and the socket-side ledgerdb_net_*
/// series.
void ExerciseServerObs() {
  SimulatedClock clock(0);
  CertificateAuthority ca(KeyPair::FromSeedString("lint-srv-ca"));
  MemberRegistry registry(&ca);
  KeyPair lsp = KeyPair::FromSeedString("lint-srv-lsp");
  registry.Register(ca.Certify("lsp", lsp.public_key(), Role::kLsp));
  LedgerOptions options;
  options.fractal_height = 2;
  options.block_capacity = 4;
  Ledger ledger("lg://lint-srv", options, &clock, lsp, &registry);

  LedgerServer::Options sopts;
  sopts.unix_path = ::testing::TempDir() + "/lds_lint.sock";
  LedgerServer server(&ledger, sopts);
  ASSERT_TRUE(server.Start().ok());
  SocketTransport transport(server.address(), "lg://lint-srv");
  SignedCommitment commitment;
  EXPECT_TRUE(transport.GetCommitment(&commitment).ok());
  Journal journal;
  EXPECT_TRUE(transport.GetJournal(10'000, &journal).IsNotFound());
  server.Stop();
}

/// Drives RetryTransient through its three terminal shapes so every
/// ledgerdb_retry_* series registers.
void ExerciseRetryObs() {
  RetryPolicy policy;
  policy.max_attempts = 3;
  int failures_left = 2;
  Status eventually_ok = RetryTransient(policy, [&] {
    return failures_left-- > 0 ? Status::TransientIO("lint") : Status::OK();
  });
  EXPECT_TRUE(eventually_ok.ok());
  Status exhausted =
      RetryTransient(policy, [] { return Status::TransientIO("lint"); });
  EXPECT_FALSE(exhausted.ok());
}

TEST(MetricNameLint, CatalogMatchesNamingConvention) {
  for (size_t i = 0; i < obs::names::kAllCount; ++i) {
    EXPECT_TRUE(std::regex_match(std::string(obs::names::kAll[i]),
                                 NameConvention()))
        << "catalog name violates convention: " << obs::names::kAll[i];
  }
}

TEST(MetricNameLint, CatalogHasNoDuplicates) {
  std::set<std::string> seen;
  for (size_t i = 0; i < obs::names::kAllCount; ++i) {
    EXPECT_TRUE(seen.insert(obs::names::kAll[i]).second)
        << "duplicate catalog entry: " << obs::names::kAll[i];
  }
}

TEST(MetricNameLint, ExercisedSeriesPassLintAndRegisterOnce) {
#if defined(LEDGERDB_OBS_OFF)
  GTEST_SKIP() << "instrumentation compiled out: no series to lint";
#endif
  ExerciseStorageObs();
  ExerciseNetObs();
  ExerciseServerObs();
  ExerciseRetryObs();
  ExerciseProofCacheObs();

  std::set<std::string> catalog;
  for (size_t i = 0; i < obs::names::kAllCount; ++i) {
    catalog.insert(obs::names::kAll[i]);
  }

  obs::MetricsSnapshot snap = obs::MetricsRegistry::Default().Snapshot();
  ASSERT_FALSE(snap.empty()) << "exercises registered no metrics";
  for (const auto& [name, value] : snap.counters) LintSeries(name, catalog);
  for (const auto& [name, value] : snap.gauges) LintSeries(name, catalog);
  for (const obs::HistogramSnapshot& h : snap.histograms) {
    LintSeries(h.name, catalog);
  }

  // Double-registration check: no instrumentation site may have requested
  // an already-registered name under a different kind.
  EXPECT_TRUE(obs::MetricsRegistry::Default().Conflicts().empty());

  // The exercises must have reached all three planes.
  auto has_prefix = [&](const std::string& prefix) {
    for (const auto& [name, value] : snap.counters) {
      if (name.rfind(prefix, 0) == 0) return true;
    }
    return false;
  };
  EXPECT_TRUE(has_prefix("ledgerdb_storage_"));
  EXPECT_TRUE(has_prefix("ledgerdb_net_"));
  EXPECT_TRUE(has_prefix("ledgerdb_server_"));
  EXPECT_TRUE(has_prefix("ledgerdb_retry_"));
  EXPECT_TRUE(has_prefix("ledgerdb_proofcache_"));
  EXPECT_TRUE(has_prefix("ledgerdb_client_"));
}

// ---------------------------------------------------------------------------
// RetryStats accounting (satellite of the same PR; retry.h is already in
// this TU's include set)
// ---------------------------------------------------------------------------

TEST(RetryStatsTest, SuccessAfterRetriesCountsAttempts) {
  RetryPolicy policy;
  policy.max_attempts = 5;
  RetryStats stats;
  int failures_left = 2;
  Status s = RetryTransient(
      policy,
      [&] {
        return failures_left-- > 0 ? Status::TransientIO("flaky")
                                   : Status::OK();
      },
      &stats);
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(stats.attempts, 3);
  EXPECT_FALSE(stats.exhausted);
}

TEST(RetryStatsTest, FirstTrySuccessIsOneAttempt) {
  RetryStats stats;
  Status s = RetryTransient(RetryPolicy{}, [] { return Status::OK(); },
                            &stats);
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(stats.attempts, 1);
  EXPECT_EQ(stats.backoff_us, 0u);
}

TEST(RetryStatsTest, ExhaustionReportsAttemptsInError) {
  RetryPolicy policy;
  policy.max_attempts = 3;
  RetryStats stats;
  Status s = RetryTransient(
      policy, [] { return Status::TransientIO("stuck"); }, &stats);
  EXPECT_FALSE(s.ok());
  EXPECT_FALSE(s.IsRetriable()) << "transient must not escape the boundary";
  EXPECT_TRUE(stats.exhausted);
  EXPECT_EQ(stats.attempts, 3);
  EXPECT_NE(s.message().find("3 of 3 attempts"), std::string::npos)
      << s.message();
  EXPECT_NE(s.message().find("stuck"), std::string::npos) << s.message();
}

TEST(RetryStatsTest, NonRetriableErrorStopsImmediately) {
  RetryStats stats;
  Status s = RetryTransient(
      RetryPolicy{}, [] { return Status::Corruption("bad frame"); }, &stats);
  EXPECT_TRUE(s.IsCorruption());
  EXPECT_EQ(stats.attempts, 1);
  EXPECT_FALSE(stats.exhausted);
}

}  // namespace
}  // namespace ledgerdb
