// Verified checkpoints: audited snapshot + tail-replay recovery.
//
// The contract under test: recovery through a checkpoint is bit-identical
// to full stream replay in every reachable state — including states with
// post-checkpoint occults and purges rewriting records below the
// watermark — and a checkpoint damaged in ANY byte is rejected in favor
// of an older candidate or full replay, never silently trusted.

#include <gtest/gtest.h>

#include <chrono>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "audit/dasein_auditor.h"
#include "ledger/ledger.h"
#include "ledger/sharded.h"
#include "storage/checkpoint.h"
#include "storage/fault_env.h"
#include "storage/stream_store.h"

namespace ledgerdb {
namespace {

constexpr char kUri[] = "lg://ckpt";
constexpr char kJournalPath[] = "journals.log";
constexpr char kBlockPath[] = "blocks.log";
constexpr char kCkptBase[] = "ckpt";

Bytes ReadWholeFile(Env* env, const std::string& path) {
  std::unique_ptr<File> f;
  EXPECT_TRUE(env->OpenFile(path, &f).ok());
  uint64_t size = 0;
  EXPECT_TRUE(f->Size(&size).ok());
  Bytes out;
  if (size > 0) {
    EXPECT_TRUE(f->Read(0, size, &out).ok());
  }
  return out;
}

void WriteWholeFile(Env* env, const std::string& path, const Bytes& data) {
  std::unique_ptr<File> f;
  ASSERT_TRUE(env->OpenFile(path, &f).ok());
  ASSERT_TRUE(f->Truncate(0).ok());
  ASSERT_TRUE(f->Write(0, Slice(data)).ok());
  ASSERT_TRUE(f->Sync().ok());
}

struct Snapshot {
  Digest fam, clue, state;
};

/// Everything a recovered ledger exposes that must be bit-identical
/// between the checkpoint path and full replay.
struct StateFingerprint {
  uint64_t journals = 0;
  uint64_t purged_boundary = 0;
  uint64_t occulted = 0;
  size_t blocks = 0;
  Digest fam, clue, state, last_block;

  static StateFingerprint Of(const Ledger& ledger) {
    StateFingerprint fp;
    fp.journals = ledger.NumJournals();
    fp.purged_boundary = ledger.PurgedBoundary();
    fp.occulted = ledger.OccultedCount();
    fp.blocks = ledger.blocks().size();
    fp.fam = ledger.FamRoot();
    fp.clue = ledger.ClueRoot();
    fp.state = ledger.StateRoot();
    if (!ledger.blocks().empty()) fp.last_block = ledger.blocks().back().Hash();
    return fp;
  }

  void ExpectEq(const StateFingerprint& other) const {
    EXPECT_EQ(journals, other.journals);
    EXPECT_EQ(purged_boundary, other.purged_boundary);
    EXPECT_EQ(occulted, other.occulted);
    EXPECT_EQ(blocks, other.blocks);
    EXPECT_EQ(fam, other.fam);
    EXPECT_EQ(clue, other.clue);
    EXPECT_EQ(state, other.state);
    EXPECT_EQ(last_block, other.last_block);
  }
};

class CheckpointTest : public ::testing::Test {
 protected:
  CheckpointTest()
      : ca_(KeyPair::FromSeedString("ck-ca")),
        lsp_(KeyPair::FromSeedString("ck-lsp")),
        alice_(KeyPair::FromSeedString("ck-alice")),
        dba_(KeyPair::FromSeedString("ck-dba")),
        regulator_(KeyPair::FromSeedString("ck-reg")),
        tsa_key_(KeyPair::FromSeedString("ck-tsa")),
        registry_(&ca_) {
    registry_.Register(ca_.Certify("lsp", lsp_.public_key(), Role::kLsp));
    registry_.Register(ca_.Certify("alice", alice_.public_key(), Role::kUser));
    registry_.Register(ca_.Certify("dba", dba_.public_key(), Role::kDba));
    registry_.Register(
        ca_.Certify("reg", regulator_.public_key(), Role::kRegulator));
    options_.fractal_height = 3;
    options_.block_capacity = 4;
    options_.sync_occult_erasure = true;
  }

  struct OpenedLedger {
    std::unique_ptr<FileStreamStore> jf, bf;
    std::unique_ptr<CheckpointStore> ckpt;
    std::unique_ptr<SimulatedClock> clock;
    std::unique_ptr<TsaService> tsa;
    std::unique_ptr<Ledger> ledger;
    RecoveryInfo info;
  };

  /// Builds a fresh ledger over `env` (genesis included) with a checkpoint
  /// store attached.
  Status Create(Env* env, OpenedLedger* out) {
    LEDGERDB_RETURN_IF_ERROR(FileStreamStore::Open(env, kJournalPath, &out->jf));
    LEDGERDB_RETURN_IF_ERROR(FileStreamStore::Open(env, kBlockPath, &out->bf));
    out->ckpt = std::make_unique<CheckpointStore>(env, kCkptBase);
    out->clock = std::make_unique<SimulatedClock>(1000 * kMicrosPerSecond);
    out->tsa = std::make_unique<TsaService>(tsa_key_, out->clock.get());
    out->ledger = std::make_unique<Ledger>(
        kUri, options_, out->clock.get(), lsp_, &registry_,
        LedgerStorage{out->jf.get(), out->bf.get(), out->ckpt.get()});
    LEDGERDB_RETURN_IF_ERROR(out->ledger->init_status());
    out->ledger->AttachDirectTsa(out->tsa.get());
    return Status::OK();
  }

  /// Recovers from `env`'s streams; `with_checkpoints` selects whether the
  /// checkpoint store is offered (full replay otherwise).
  Status Reopen(Env* env, bool with_checkpoints, OpenedLedger* out) {
    LEDGERDB_RETURN_IF_ERROR(FileStreamStore::Open(env, kJournalPath, &out->jf));
    LEDGERDB_RETURN_IF_ERROR(FileStreamStore::Open(env, kBlockPath, &out->bf));
    out->ckpt = std::make_unique<CheckpointStore>(env, kCkptBase);
    out->clock = std::make_unique<SimulatedClock>(1000 * kMicrosPerSecond);
    LedgerStorage storage{out->jf.get(), out->bf.get(),
                          with_checkpoints ? out->ckpt.get() : nullptr};
    return Ledger::Recover(kUri, options_, out->clock.get(), lsp_, &registry_,
                           storage, &out->ledger, &out->info);
  }

  Status Append(OpenedLedger* ctx, const std::string& payload,
                const std::string& clue) {
    ClientTransaction tx;
    tx.ledger_uri = kUri;
    tx.clues = {clue};
    tx.payload = StringToBytes(payload);
    tx.nonce = nonce_++;
    tx.client_ts = ctx->clock->Now();
    tx.Sign(alice_);
    Status s = ctx->ledger->Append(tx, nullptr);
    ctx->clock->Advance(kMicrosPerSecond);
    return s;
  }

  Status Occult(OpenedLedger* ctx, uint64_t jsn) {
    Digest request = Ledger::OccultRequestHash(kUri, jsn);
    std::vector<Endorsement> sigs = {
        {dba_.public_key(), dba_.Sign(request)},
        {regulator_.public_key(), regulator_.Sign(request)}};
    return ctx->ledger->Occult(jsn, sigs, nullptr);
  }

  Status Purge(OpenedLedger* ctx, uint64_t before) {
    Digest request = Ledger::PurgeRequestHash(kUri, before);
    std::vector<Endorsement> sigs = {
        {dba_.public_key(), dba_.Sign(request)},
        {alice_.public_key(), alice_.Sign(request)}};
    return ctx->ledger->Purge(before, sigs, {}, nullptr);
  }

  void ExpectAuditPasses(Ledger* ledger) {
    DaseinAuditor::Context context;
    context.ledger = ledger;
    context.members = &registry_;
    context.tsa_key = tsa_key_.public_key();
    Receipt receipt;
    ASSERT_TRUE(ledger->GetReceipt(ledger->NumJournals() - 1, &receipt).ok());
    AuditReport report;
    Status s = DaseinAuditor(context).Audit(receipt, {}, &report);
    EXPECT_TRUE(s.ok()) << s.ToString() << " — " << report.failure_reason;
    EXPECT_TRUE(report.passed) << report.failure_reason;
  }

  CertificateAuthority ca_;
  KeyPair lsp_, alice_, dba_, regulator_, tsa_key_;
  MemberRegistry registry_;
  LedgerOptions options_;
  uint64_t nonce_ = 0;
};

// ---------------------------------------------------------------------------
// Roundtrip: checkpoint + tail replay ≡ full replay
// ---------------------------------------------------------------------------

TEST_F(CheckpointTest, TailReplayBitIdenticalToFullReplay) {
  MemEnv env;
  uint64_t watermark = 0;
  {
    OpenedLedger live;
    ASSERT_TRUE(Create(&env, &live).ok());
    for (int i = 0; i < 9; ++i) {
      ASSERT_TRUE(
          Append(&live, "pre-" + std::to_string(i), "acct-" + std::to_string(i % 3))
              .ok());
    }
    ASSERT_TRUE(live.ledger->AnchorTime(nullptr).ok());
    ASSERT_TRUE(Occult(&live, 2).ok());
    ASSERT_TRUE(Purge(&live, 4).ok());
    uint32_t slot = 99;
    ASSERT_TRUE(live.ledger->WriteCheckpoint(&slot).ok());
    EXPECT_EQ(slot, 0u);
    watermark = live.ledger->NumJournals();
    // Tail past the watermark: sealed blocks plus a pending suffix.
    for (int i = 0; i < 6; ++i) {
      ASSERT_TRUE(
          Append(&live, "post-" + std::to_string(i), "acct-" + std::to_string(i % 3))
              .ok());
    }
  }

  OpenedLedger fast, slow;
  Status s = Reopen(&env, /*with_checkpoints=*/true, &fast);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_TRUE(fast.info.used_checkpoint);
  EXPECT_EQ(fast.info.checkpoint_watermark, watermark);
  EXPECT_EQ(fast.info.tail_journals, fast.ledger->NumJournals() - watermark);
  EXPECT_EQ(fast.info.reconciled_records, 0u);
  EXPECT_EQ(fast.info.candidates_tried, 1u);
  EXPECT_EQ(fast.info.candidates_rejected, 0u);

  s = Reopen(&env, /*with_checkpoints=*/false, &slow);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_FALSE(slow.info.used_checkpoint);

  StateFingerprint::Of(*fast.ledger).ExpectEq(StateFingerprint::Of(*slow.ledger));

  // The adopted fam tree must serve proofs that verify against the root —
  // and the external auditor must accept the checkpoint-recovered ledger.
  for (uint64_t jsn : {watermark - 1, fast.ledger->NumJournals() - 1}) {
    Journal journal;
    ASSERT_TRUE(fast.ledger->GetJournal(jsn, &journal).ok());
    FamProof proof;
    ASSERT_TRUE(fast.ledger->GetProof(jsn, &proof).ok());
    EXPECT_TRUE(
        Ledger::VerifyJournalProof(journal, proof, fast.ledger->FamRoot()));
  }
  ExpectAuditPasses(fast.ledger.get());
}

TEST_F(CheckpointTest, PostCheckpointMutationsBelowWatermarkReconcile) {
  MemEnv env;
  uint64_t watermark = 0;
  {
    OpenedLedger live;
    ASSERT_TRUE(Create(&env, &live).ok());
    for (int i = 0; i < 11; ++i) {
      ASSERT_TRUE(
          Append(&live, "pre-" + std::to_string(i), "acct-" + std::to_string(i % 3))
              .ok());
    }
    ASSERT_TRUE(live.ledger->WriteCheckpoint(nullptr).ok());
    watermark = live.ledger->NumJournals();
    // Rewrite records BELOW the watermark after the checkpoint: an occult
    // erases a payload in place, a purge replaces whole records with
    // tombstones. The snapshot's copies of those records are now stale.
    ASSERT_TRUE(Occult(&live, 5).ok());
    ASSERT_TRUE(Purge(&live, 3).ok());
    ASSERT_TRUE(Append(&live, "tail-0", "acct-0").ok());
    ASSERT_TRUE(Append(&live, "tail-1", "acct-1").ok());
  }

  OpenedLedger fast, slow;
  Status s = Reopen(&env, /*with_checkpoints=*/true, &fast);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_TRUE(fast.info.used_checkpoint);
  EXPECT_EQ(fast.info.checkpoint_watermark, watermark);
  // The occulted record and the tombstoned ones diverge from the snapshot
  // and must be re-validated + adopted from the stream.
  EXPECT_GE(fast.info.reconciled_records, 4u);

  s = Reopen(&env, /*with_checkpoints=*/false, &slow);
  ASSERT_TRUE(s.ok()) << s.ToString();
  StateFingerprint::Of(*fast.ledger).ExpectEq(StateFingerprint::Of(*slow.ledger));
  ExpectAuditPasses(fast.ledger.get());
}

// ---------------------------------------------------------------------------
// Tamper rejection: any byte
// ---------------------------------------------------------------------------

TEST_F(CheckpointTest, EveryManifestByteFlipRejected) {
  MemEnv env;
  {
    OpenedLedger live;
    ASSERT_TRUE(Create(&env, &live).ok());
    for (int i = 0; i < 7; ++i) {
      ASSERT_TRUE(Append(&live, "m-" + std::to_string(i), "acct-0").ok());
    }
    ASSERT_TRUE(live.ledger->WriteCheckpoint(nullptr).ok());
  }
  OpenedLedger reference;
  ASSERT_TRUE(Reopen(&env, /*with_checkpoints=*/false, &reference).ok());
  StateFingerprint want = StateFingerprint::Of(*reference.ledger);
  reference = OpenedLedger{};

  const std::string path = std::string(kCkptBase) + ".ckpt.0";
  const Bytes pristine = ReadWholeFile(&env, path);
  ASSERT_FALSE(pristine.empty());
  for (size_t i = 0; i < pristine.size(); ++i) {
    SCOPED_TRACE("manifest byte " + std::to_string(i));
    Bytes tampered = pristine;
    tampered[i] ^= 0x01;
    WriteWholeFile(&env, path, tampered);
    OpenedLedger again;
    Status s = Reopen(&env, /*with_checkpoints=*/true, &again);
    // A tampered manifest can never be loaded: either its frame fails and
    // it is not a candidate at all, or verification rejects it — recovery
    // falls back to full replay and lands bit-identical.
    ASSERT_TRUE(s.ok()) << s.ToString();
    EXPECT_FALSE(again.info.used_checkpoint);
    StateFingerprint::Of(*again.ledger).ExpectEq(want);
  }
  WriteWholeFile(&env, path, pristine);
}

TEST_F(CheckpointTest, SnapshotByteFlipSweepRejected) {
  MemEnv env;
  {
    OpenedLedger live;
    ASSERT_TRUE(Create(&env, &live).ok());
    for (int i = 0; i < 7; ++i) {
      ASSERT_TRUE(Append(&live, "s-" + std::to_string(i), "acct-1").ok());
    }
    ASSERT_TRUE(live.ledger->WriteCheckpoint(nullptr).ok());
  }
  OpenedLedger reference;
  ASSERT_TRUE(Reopen(&env, /*with_checkpoints=*/false, &reference).ok());
  StateFingerprint want = StateFingerprint::Of(*reference.ledger);
  reference = OpenedLedger{};

  const std::string path = std::string(kCkptBase) + ".snap.0";
  const Bytes pristine = ReadWholeFile(&env, path);
  ASSERT_GT(pristine.size(), 200u);
  // Every byte position is protected by the manifest's SHA-256 binding;
  // sweep a spread of positions (including both ends) — each flip must
  // force the full-replay fallback with a bit-identical result.
  std::vector<size_t> positions = {0, 1, pristine.size() - 1};
  for (size_t i = 2; i + 1 < pristine.size(); i += pristine.size() / 61 + 1) {
    positions.push_back(i);
  }
  for (size_t pos : positions) {
    SCOPED_TRACE("snapshot byte " + std::to_string(pos));
    Bytes tampered = pristine;
    tampered[pos] ^= 0x80;
    WriteWholeFile(&env, path, tampered);
    OpenedLedger again;
    Status s = Reopen(&env, /*with_checkpoints=*/true, &again);
    ASSERT_TRUE(s.ok()) << s.ToString();
    EXPECT_FALSE(again.info.used_checkpoint);
    EXPECT_EQ(again.info.candidates_rejected, 1u);
    StateFingerprint::Of(*again.ledger).ExpectEq(want);
  }
  WriteWholeFile(&env, path, pristine);
}

// ---------------------------------------------------------------------------
// Fallback ladder + slot rotation
// ---------------------------------------------------------------------------

TEST_F(CheckpointTest, FallbackLadderNewestThenOlderThenFullReplay) {
  MemEnv env;
  uint64_t w1 = 0, w2 = 0;
  {
    OpenedLedger live;
    ASSERT_TRUE(Create(&env, &live).ok());
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE(Append(&live, "a-" + std::to_string(i), "acct-0").ok());
    }
    uint32_t slot = 99;
    ASSERT_TRUE(live.ledger->WriteCheckpoint(&slot).ok());
    EXPECT_EQ(slot, 0u);
    w1 = live.ledger->NumJournals();
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE(Append(&live, "b-" + std::to_string(i), "acct-1").ok());
    }
    ASSERT_TRUE(live.ledger->WriteCheckpoint(&slot).ok());
    EXPECT_EQ(slot, 1u);  // two-slot rotation: the older slot is preserved
    w2 = live.ledger->NumJournals();
    ASSERT_TRUE(Append(&live, "tail", "acct-2").ok());
  }
  ASSERT_GT(w2, w1);

  // Intact: the newest checkpoint (slot 1, watermark w2) wins.
  {
    OpenedLedger again;
    ASSERT_TRUE(Reopen(&env, /*with_checkpoints=*/true, &again).ok());
    EXPECT_TRUE(again.info.used_checkpoint);
    EXPECT_EQ(again.info.checkpoint_watermark, w2);
    EXPECT_EQ(again.info.candidates_tried, 1u);
  }

  OpenedLedger reference;
  ASSERT_TRUE(Reopen(&env, /*with_checkpoints=*/false, &reference).ok());
  StateFingerprint want = StateFingerprint::Of(*reference.ledger);
  reference = OpenedLedger{};

  // Newest snapshot damaged → ladder falls back to the older checkpoint.
  const std::string newest = std::string(kCkptBase) + ".snap.1";
  Bytes pristine = ReadWholeFile(&env, newest);
  Bytes tampered = pristine;
  tampered[tampered.size() / 2] ^= 0xff;
  WriteWholeFile(&env, newest, tampered);
  {
    OpenedLedger again;
    ASSERT_TRUE(Reopen(&env, /*with_checkpoints=*/true, &again).ok());
    EXPECT_TRUE(again.info.used_checkpoint);
    EXPECT_EQ(again.info.checkpoint_watermark, w1);
    EXPECT_EQ(again.info.candidates_tried, 2u);
    EXPECT_EQ(again.info.candidates_rejected, 1u);
    StateFingerprint::Of(*again.ledger).ExpectEq(want);
  }

  // Both damaged → full replay, still bit-identical.
  const std::string older = std::string(kCkptBase) + ".snap.0";
  Bytes older_pristine = ReadWholeFile(&env, older);
  Bytes older_tampered = older_pristine;
  older_tampered[3] ^= 0x10;
  WriteWholeFile(&env, older, older_tampered);
  {
    OpenedLedger again;
    ASSERT_TRUE(Reopen(&env, /*with_checkpoints=*/true, &again).ok());
    EXPECT_FALSE(again.info.used_checkpoint);
    EXPECT_EQ(again.info.candidates_rejected, 2u);
    StateFingerprint::Of(*again.ledger).ExpectEq(want);
  }
}

TEST_F(CheckpointTest, SlotRotationAlternatesAndKeepsFallback) {
  MemEnv env;
  OpenedLedger live;
  ASSERT_TRUE(Create(&env, &live).ok());
  std::vector<uint32_t> slots;
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 4; ++i) {
      ASSERT_TRUE(Append(&live, "r" + std::to_string(round) + "-" +
                                    std::to_string(i),
                         "acct-0")
                      .ok());
    }
    uint32_t slot = 99;
    ASSERT_TRUE(live.ledger->WriteCheckpoint(&slot).ok());
    slots.push_back(slot);
  }
  EXPECT_EQ(slots, (std::vector<uint32_t>{0, 1, 0}));
  // Both slots hold valid checkpoints; the overwritten one is the older.
  std::vector<CheckpointEntry> entries;
  ASSERT_TRUE(live.ckpt->List(&entries).ok());
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_TRUE(entries[0].status.ok());
  EXPECT_TRUE(entries[1].status.ok());
  EXPECT_GT(entries[0].manifest.watermark, entries[1].manifest.watermark);
}

TEST_F(CheckpointTest, OptionsFingerprintMismatchRejected) {
  MemEnv env;
  {
    OpenedLedger live;
    ASSERT_TRUE(Create(&env, &live).ok());
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE(Append(&live, "o-" + std::to_string(i), "acct-0").ok());
    }
    ASSERT_TRUE(live.ledger->WriteCheckpoint(nullptr).ok());
  }
  // Same streams, different block capacity: the checkpoint must be
  // rejected on its options fingerprint; full replay still succeeds
  // (sealed blocks on disk are self-describing).
  LedgerOptions other = options_;
  other.block_capacity = 8;
  std::unique_ptr<FileStreamStore> jf, bf;
  ASSERT_TRUE(FileStreamStore::Open(&env, kJournalPath, &jf).ok());
  ASSERT_TRUE(FileStreamStore::Open(&env, kBlockPath, &bf).ok());
  CheckpointStore ckpt(&env, kCkptBase);
  SimulatedClock clock(1000 * kMicrosPerSecond);
  std::unique_ptr<Ledger> recovered;
  RecoveryInfo info;
  Status s = Ledger::Recover(kUri, other, &clock, lsp_, &registry_,
                             {jf.get(), bf.get(), &ckpt}, &recovered, &info);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_FALSE(info.used_checkpoint);
  EXPECT_EQ(info.candidates_rejected, 1u);
}

TEST_F(CheckpointTest, WriteCheckpointRequiresSealedBlockAndStore) {
  MemEnv env;
  OpenedLedger live;
  ASSERT_TRUE(Create(&env, &live).ok());
  // Genesis is pending (capacity 4, one journal): nothing sealed yet.
  EXPECT_TRUE(live.ledger->WriteCheckpoint(nullptr).IsInvalidArgument());
  // Without a checkpoint store the call is a usage error, not a crash.
  Ledger bare(kUri + std::string("-bare"), options_, live.clock.get(), lsp_,
              &registry_, LedgerStorage{});
  EXPECT_TRUE(bare.WriteCheckpoint(nullptr).IsInvalidArgument());
}

// ---------------------------------------------------------------------------
// Crash-fault soak matrix over the checkpoint lifecycle
// ---------------------------------------------------------------------------

class CheckpointFaultMatrixTest : public CheckpointTest {
 protected:
  /// Canonical checkpoint-lifecycle workload: appends, a checkpoint,
  /// post-checkpoint occult + purge below the watermark, a second
  /// checkpoint (slot rotation), trailing appends. Every mutating Env op
  /// in here — including every write/sync/rename inside both
  /// WriteCheckpoint calls — is a numbered fault point.
  Status RunWorkload(Env* env, std::map<uint64_t, Snapshot>* trajectory) {
    nonce_ = 0;
    std::unique_ptr<FileStreamStore> jf, bf;
    LEDGERDB_RETURN_IF_ERROR(FileStreamStore::Open(env, kJournalPath, &jf));
    LEDGERDB_RETURN_IF_ERROR(FileStreamStore::Open(env, kBlockPath, &bf));
    CheckpointStore ckpt(env, kCkptBase);
    SimulatedClock clock(1000 * kMicrosPerSecond);
    Ledger ledger(kUri, options_, &clock, lsp_, &registry_,
                  {jf.get(), bf.get(), &ckpt});
    LEDGERDB_RETURN_IF_ERROR(ledger.init_status());
    uint64_t nonce = 0;
    auto append = [&](const std::string& payload, const std::string& clue) {
      ClientTransaction tx;
      tx.ledger_uri = kUri;
      tx.clues = {clue};
      tx.payload = StringToBytes(payload);
      tx.nonce = nonce++;
      tx.client_ts = clock.Now();
      tx.Sign(alice_);
      Status s = ledger.Append(tx, nullptr);
      clock.Advance(kMicrosPerSecond);
      return s;
    };
    auto snap = [&] {
      if (trajectory != nullptr) {
        (*trajectory)[ledger.NumJournals()] =
            Snapshot{ledger.FamRoot(), ledger.ClueRoot(), ledger.StateRoot()};
      }
    };
    snap();
    for (int i = 0; i < 7; ++i) {
      LEDGERDB_RETURN_IF_ERROR(
          append("pre-" + std::to_string(i), "acct-" + std::to_string(i % 3)));
      snap();
    }
    LEDGERDB_RETURN_IF_ERROR(ledger.WriteCheckpoint(nullptr));
    {
      Digest oreq = Ledger::OccultRequestHash(kUri, 2);
      std::vector<Endorsement> osigs = {
          {dba_.public_key(), dba_.Sign(oreq)},
          {regulator_.public_key(), regulator_.Sign(oreq)}};
      LEDGERDB_RETURN_IF_ERROR(ledger.Occult(2, osigs, nullptr));
      snap();
    }
    {
      Digest preq = Ledger::PurgeRequestHash(kUri, 4);
      std::vector<Endorsement> psigs = {
          {dba_.public_key(), dba_.Sign(preq)},
          {alice_.public_key(), alice_.Sign(preq)}};
      LEDGERDB_RETURN_IF_ERROR(ledger.Purge(4, psigs, {}, nullptr));
      snap();
    }
    LEDGERDB_RETURN_IF_ERROR(append("mid-0", "acct-0"));
    snap();
    LEDGERDB_RETURN_IF_ERROR(ledger.WriteCheckpoint(nullptr));
    LEDGERDB_RETURN_IF_ERROR(append("tail-0", "acct-1"));
    snap();
    LEDGERDB_RETURN_IF_ERROR(append("tail-1", "acct-2"));
    snap();
    return Status::OK();
  }
};

TEST_F(CheckpointFaultMatrixTest, CrashAtEveryCheckpointFaultPoint) {
  // Reference trajectory + fault-free op count.
  MemEnv ref_env;
  std::map<uint64_t, Snapshot> trajectory;
  ASSERT_TRUE(RunWorkload(&ref_env, &trajectory).ok());
  uint64_t total_ops = 0;
  {
    MemEnv dry_base;
    FaultEnv dry(&dry_base, 13);
    Status s = RunWorkload(&dry, nullptr);
    ASSERT_TRUE(s.ok()) << s.ToString();
    total_ops = dry.ops();
  }
  ASSERT_GT(total_ops, 60u);

  for (uint64_t k = 0; k < total_ops; ++k) {
    SCOPED_TRACE("fault point " + std::to_string(k));
    FaultKind kind = static_cast<FaultKind>(k % kFaultKindCount);
    MemEnv base;
    FaultEnv env(&base, 4242 + k);
    env.ScheduleFault(k, kind);
    Status run = RunWorkload(&env, nullptr);
    ASSERT_EQ(env.faults_injected(), 1);

    if (kind == FaultKind::kTransientError) {
      // The retry layer (streams and checkpoint store alike) must absorb
      // a one-shot transient error without surfacing it.
      ASSERT_TRUE(run.ok()) << run.ToString();
      EXPECT_FALSE(env.crashed());
    } else {
      EXPECT_TRUE(env.crashed());
      if (run.ok()) {
        EXPECT_EQ(kind, FaultKind::kDroppedSync);
      }
    }

    // Reopen the surviving image. Every verdict is acceptable EXCEPT
    // silent divergence: refuse with explicit Corruption, or recover to a
    // state bit-identical to the reference trajectory — whether the
    // checkpoint loaded, an older one loaded, or full replay ran.
    std::unique_ptr<FileStreamStore> jf, bf;
    Status jopen = FileStreamStore::Open(&base, kJournalPath, &jf);
    if (!jopen.ok()) {
      EXPECT_TRUE(jopen.IsCorruption()) << jopen.ToString();
      continue;
    }
    Status bopen = FileStreamStore::Open(&base, kBlockPath, &bf);
    if (!bopen.ok()) {
      EXPECT_TRUE(bopen.IsCorruption()) << bopen.ToString();
      continue;
    }
    CheckpointStore ckpt(&base, kCkptBase);
    SimulatedClock clock(1000 * kMicrosPerSecond);
    std::unique_ptr<Ledger> recovered;
    RecoveryInfo info;
    Status rs = Ledger::Recover(kUri, options_, &clock, lsp_, &registry_,
                                {jf.get(), bf.get(), &ckpt}, &recovered, &info);
    if (!rs.ok()) {
      EXPECT_TRUE(rs.IsCorruption()) << rs.ToString();
      continue;
    }
    uint64_t count = recovered->NumJournals();
    ASSERT_GE(count, 1u);
    auto it = trajectory.find(count);
    if (it != trajectory.end()) {
      EXPECT_EQ(recovered->FamRoot(), it->second.fam);
      EXPECT_EQ(recovered->ClueRoot(), it->second.clue);
      EXPECT_EQ(recovered->StateRoot(), it->second.state);
    }

    // Cross-check the recovery mode itself: a checkpoint-led recovery
    // must agree bit-for-bit with a forced full replay of the same image.
    std::unique_ptr<FileStreamStore> jf2, bf2;
    ASSERT_TRUE(FileStreamStore::Open(&base, kJournalPath, &jf2).ok());
    ASSERT_TRUE(FileStreamStore::Open(&base, kBlockPath, &bf2).ok());
    std::unique_ptr<Ledger> replayed;
    Status full = Ledger::Recover(kUri, options_, &clock, lsp_, &registry_,
                                  {jf2.get(), bf2.get()}, &replayed);
    ASSERT_TRUE(full.ok()) << full.ToString();
    StateFingerprint::Of(*recovered).ExpectEq(StateFingerprint::Of(*replayed));
  }
}

// ---------------------------------------------------------------------------
// Sharded group: checkpoint lane + per-shard recovery
// ---------------------------------------------------------------------------

TEST_F(CheckpointTest, ShardedGroupCheckpointsAndRecoversPerShard) {
  constexpr size_t kShards = 2;
  MemEnv env;
  std::vector<std::unique_ptr<FileStreamStore>> streams;
  std::vector<std::unique_ptr<CheckpointStore>> stores;
  auto make_storage = [&]() {
    std::vector<LedgerStorage> storage;
    streams.clear();
    stores.clear();
    for (size_t i = 0; i < kShards; ++i) {
      std::unique_ptr<FileStreamStore> jf, bf;
      EXPECT_TRUE(
          FileStreamStore::Open(&env, "j" + std::to_string(i) + ".log", &jf)
              .ok());
      EXPECT_TRUE(
          FileStreamStore::Open(&env, "b" + std::to_string(i) + ".log", &bf)
              .ok());
      stores.push_back(std::make_unique<CheckpointStore>(
          &env, "ckpt" + std::to_string(i)));
      storage.push_back(
          {jf.get(), bf.get(), stores.back().get()});
      streams.push_back(std::move(jf));
      streams.push_back(std::move(bf));
    }
    return storage;
  };

  SimulatedClock clock(1000 * kMicrosPerSecond);
  GroupCommitment before;
  {
    ShardedLedgerGroup group(kUri, kShards, options_, &clock, lsp_, &registry_,
                             make_storage());
    // Pipelined appends, then a checkpoint THROUGH the running pipeline:
    // the write rides each shard's committer lane between commit groups.
    std::vector<ClientTransaction> txs;
    for (int i = 0; i < 48; ++i) {
      ClientTransaction tx;
      tx.ledger_uri = kUri;
      tx.clues = {"acct-" + std::to_string(i % 12)};
      tx.payload = StringToBytes("sharded-" + std::to_string(i));
      tx.nonce = nonce_++;
      tx.client_ts = clock.Now();
      tx.Sign(alice_);
      txs.push_back(std::move(tx));
    }
    std::vector<ShardedLedgerGroup::Location> locations;
    ASSERT_TRUE(group.AppendBatch(txs, &locations).ok());
    // 12 clue lineages over 2 shards: both shards must have sealed at
    // least one block, or CheckpointAll would have nothing to snapshot.
    for (size_t i = 0; i < kShards; ++i) {
      ASSERT_GE(group.shard(i)->NumJournals(), options_.block_capacity);
    }
    std::vector<Status> per_shard;
    Status s = group.CheckpointAll(&per_shard);
    ASSERT_TRUE(s.ok()) << s.ToString();
    for (size_t i = 0; i < kShards; ++i) {
      EXPECT_TRUE(per_shard[i].ok()) << per_shard[i].ToString();
      EXPECT_TRUE(group.AutoCheckpointEnabled(i));
    }
    group.StopParallelAppend();
    before = group.Commitment();
  }

  ShardedLedgerGroup::RecoverOutcome outcome;
  std::unique_ptr<ShardedLedgerGroup> recovered;
  Status s = ShardedLedgerGroup::Recover(kUri, kShards, options_, &clock, lsp_,
                                         &registry_, make_storage(), &recovered,
                                         &outcome);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(outcome.recovered, kShards);
  ASSERT_EQ(outcome.shard_info.size(), kShards);
  for (size_t i = 0; i < kShards; ++i) {
    EXPECT_TRUE(outcome.shard_info[i].used_checkpoint)
        << "shard " << i << " fell back to full replay";
  }
  EXPECT_EQ(recovered->Commitment().Combined(), before.Combined());
}

TEST_F(CheckpointTest, ShardedBackgroundCheckpointLaneWrites) {
  constexpr size_t kShards = 2;
  MemEnv env;
  std::vector<std::unique_ptr<FileStreamStore>> streams;
  std::vector<std::unique_ptr<CheckpointStore>> stores;
  std::vector<LedgerStorage> storage;
  for (size_t i = 0; i < kShards; ++i) {
    std::unique_ptr<FileStreamStore> jf, bf;
    ASSERT_TRUE(
        FileStreamStore::Open(&env, "j" + std::to_string(i) + ".log", &jf).ok());
    ASSERT_TRUE(
        FileStreamStore::Open(&env, "b" + std::to_string(i) + ".log", &bf).ok());
    stores.push_back(
        std::make_unique<CheckpointStore>(&env, "ckpt" + std::to_string(i)));
    storage.push_back({jf.get(), bf.get(), stores.back().get()});
    streams.push_back(std::move(jf));
    streams.push_back(std::move(bf));
  }
  SimulatedClock clock(1000 * kMicrosPerSecond);
  ShardedLedgerGroup group(kUri, kShards, options_, &clock, lsp_, &registry_,
                           storage);
  for (int i = 0; i < 48; ++i) {
    ClientTransaction tx;
    tx.ledger_uri = kUri;
    tx.clues = {"acct-" + std::to_string(i % 12)};
    tx.payload = StringToBytes("bg-" + std::to_string(i));
    tx.nonce = nonce_++;
    tx.client_ts = clock.Now();
    tx.Sign(alice_);
    ASSERT_TRUE(group.Append(tx, nullptr).ok());
  }
  for (size_t i = 0; i < kShards; ++i) {
    ASSERT_GE(group.shard(i)->NumJournals(), options_.block_capacity);
  }
  group.StartCheckpointing(/*cadence_ms=*/1);
  // The lane needs a couple of cadence periods; poll rather than sleep a
  // fixed amount so the test stays fast on loaded machines.
  bool all_written = false;
  for (int spin = 0; spin < 2000 && !all_written; ++spin) {
    all_written = true;
    for (size_t i = 0; i < kShards; ++i) {
      std::vector<CheckpointEntry> entries;
      ASSERT_TRUE(stores[i]->List(&entries).ok());
      bool valid = false;
      for (const CheckpointEntry& e : entries) valid |= e.status.ok();
      all_written &= valid;
    }
    if (!all_written) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  group.StopCheckpointing();
  EXPECT_TRUE(all_written) << "background lane wrote no checkpoint";
}

}  // namespace
}  // namespace ledgerdb
