#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "common/random.h"
#include "storage/clue_skiplist.h"

namespace ledgerdb {
namespace {

TEST(ClueSkipListTest, EmptyList) {
  ClueSkipList csl;
  EXPECT_EQ(csl.ClueCount(), 0u);
  EXPECT_EQ(csl.Find("anything"), nullptr);
  EXPECT_TRUE(csl.Keys().empty());
  EXPECT_TRUE(csl.Scan("", "\x7f").empty());
}

TEST(ClueSkipListTest, AppendAndFind) {
  ClueSkipList csl;
  csl.Append("alpha", 1);
  csl.Append("beta", 2);
  csl.Append("alpha", 5);
  EXPECT_EQ(csl.ClueCount(), 2u);
  const auto* alpha = csl.Find("alpha");
  ASSERT_NE(alpha, nullptr);
  EXPECT_EQ(*alpha, (std::vector<uint64_t>{1, 5}));
  EXPECT_TRUE(csl.Contains("beta"));
  EXPECT_FALSE(csl.Contains("gamma"));
}

TEST(ClueSkipListTest, KeysAreSorted) {
  ClueSkipList csl;
  for (const char* k : {"pear", "apple", "zebra", "mango", "fig"}) {
    csl.Append(k, 0);
  }
  std::vector<std::string> keys = csl.Keys();
  EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
  EXPECT_EQ(keys.size(), 5u);
}

TEST(ClueSkipListTest, RangeScan) {
  ClueSkipList csl;
  for (int i = 0; i < 20; ++i) {
    csl.Append("shipment-" + std::to_string(10 + i), i);
  }
  csl.Append("invoice-1", 99);
  auto hits = csl.Scan("shipment-12", "shipment-16");
  ASSERT_EQ(hits.size(), 4u);
  EXPECT_EQ(hits.front().first, "shipment-12");
  EXPECT_EQ(hits.back().first, "shipment-15");
  // Prefix-style scan.
  auto all_shipments = csl.Scan("shipment-", "shipment-\x7f");
  EXPECT_EQ(all_shipments.size(), 20u);
}

TEST(ClueSkipListTest, MatchesReferenceMapUnderRandomLoad) {
  ClueSkipList csl;
  std::map<std::string, std::vector<uint64_t>> reference;
  Random rng(4242);
  for (uint64_t i = 0; i < 5000; ++i) {
    std::string clue = "clue-" + std::to_string(rng.Uniform(300));
    csl.Append(clue, i);
    reference[clue].push_back(i);
  }
  EXPECT_EQ(csl.ClueCount(), reference.size());
  for (const auto& [clue, jsns] : reference) {
    const auto* postings = csl.Find(clue);
    ASSERT_NE(postings, nullptr) << clue;
    EXPECT_EQ(*postings, jsns) << clue;
  }
  // Full scan equals the ordered reference.
  auto scan = csl.Scan("", "\x7f");
  ASSERT_EQ(scan.size(), reference.size());
  auto it = reference.begin();
  for (const auto& [clue, postings] : scan) {
    EXPECT_EQ(clue, it->first);
    ++it;
  }
}

TEST(ClueSkipListTest, DeterministicForSeed) {
  ClueSkipList a(7), b(7);
  for (int i = 0; i < 100; ++i) {
    a.Append("k" + std::to_string(i % 10), i);
    b.Append("k" + std::to_string(i % 10), i);
  }
  EXPECT_EQ(a.Keys(), b.Keys());
}

TEST(ClueSkipListTest, EmptyAndInvertedScanRanges) {
  ClueSkipList csl;
  for (const char* k : {"b", "d", "f"}) csl.Append(k, 1);
  EXPECT_TRUE(csl.Scan("d", "d").empty());   // empty range
  EXPECT_TRUE(csl.Scan("f", "b").empty());   // inverted range
  EXPECT_EQ(csl.Scan("a", "c").size(), 1u);  // partial overlap
  EXPECT_EQ(csl.Scan("e", "zzz").size(), 1u);
}

TEST(ClueSkipListTest, LargePostingListStaysOrdered) {
  ClueSkipList csl;
  for (uint64_t i = 0; i < 20000; ++i) csl.Append("hot", i);
  const auto* postings = csl.Find("hot");
  ASSERT_NE(postings, nullptr);
  ASSERT_EQ(postings->size(), 20000u);
  EXPECT_TRUE(std::is_sorted(postings->begin(), postings->end()));
  EXPECT_EQ(csl.ClueCount(), 1u);
}

TEST(ClueSkipListTest, PointerStability) {
  ClueSkipList csl;
  csl.Append("stable", 1);
  const auto* before = csl.Find("stable");
  for (int i = 0; i < 1000; ++i) csl.Append("other-" + std::to_string(i), i);
  csl.Append("stable", 2);
  EXPECT_EQ(csl.Find("stable"), before);
  EXPECT_EQ(before->size(), 2u);
}

}  // namespace
}  // namespace ledgerdb
